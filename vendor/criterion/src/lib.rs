//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Measures wall-clock time (median of `sample_size` samples after a short
//! warm-up) and prints one line per benchmark. Statistical analysis,
//! plotting, and baseline comparison are out of scope. The harness CLI
//! flags cargo passes (`--bench`, `--test`, filters) are accepted; in
//! `--test` mode each benchmark runs exactly one iteration so
//! `cargo test --benches` stays fast.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, reported
/// alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-iteration timing hook handed to benchmark closures.
pub struct Bencher {
    /// Iterations to run per sample.
    iters: u64,
    /// Total measured duration, accumulated by [`iter`](Self::iter).
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Run mode, decided from the harness CLI arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test --benches`).
    Test,
}

/// The benchmark manager.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut mode = Mode::Bench;
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--exact" | "--skip" => {
                    args.next();
                }
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            mode,
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (already done in `default`; kept for API
    /// compatibility).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let group_name = name.to_string();
        self.run_one(&group_name, None, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, group: &str, id: Option<&str>, mut f: F) {
        let full = match id {
            Some(id) => format!("{group}/{id}"),
            None => group.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::Test => {
                let mut b = Bencher {
                    iters: 1,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                println!("bench-test {full}: ok");
            }
            Mode::Bench => {
                let samples = self.default_sample_size;
                // Warm-up plus iteration-count calibration: aim for samples
                // that take at least ~1ms or one iteration, whichever is
                // larger.
                let mut b = Bencher {
                    iters: 1,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                let per_iter = b.elapsed.max(Duration::from_nanos(1));
                let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos())
                    .clamp(1, 1_000_000) as u64;
                let mut times: Vec<Duration> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let mut b = Bencher {
                        iters,
                        elapsed: Duration::ZERO,
                    };
                    f(&mut b);
                    times.push(b.elapsed / iters as u32);
                }
                times.sort();
                let median = times[times.len() / 2];
                let best = times[0];
                println!(
                    "bench {full}: median {median:?}, fastest {best:?} ({samples} samples x {iters} iters)"
                );
            }
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let runner = Criterion {
            mode: self.criterion.mode,
            filter: self.criterion.filter.clone(),
            default_sample_size: self
                .sample_size
                .unwrap_or(self.criterion.default_sample_size),
        };
        runner.run_one(&self.name, Some(&id.id), |b| f(b, input));
        self
    }

    /// Benchmarks a parameterless closure under `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let runner = Criterion {
            mode: self.criterion.mode,
            filter: self.criterion.filter.clone(),
            default_sample_size: self
                .sample_size
                .unwrap_or(self.criterion.default_sample_size),
        };
        runner.run_one(&self.name, Some(&id.id), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("eclat").id, "eclat");
    }
}
