//! Algorithm 2 — the top-down mining approach (§5, "The Top down
//! Approach").
//!
//! Starting from the longest vectors, the frequency of every vector is
//! propagated to all of its subset vectors, so that afterwards "the database
//! contains all the frequencies of all the subsets that may be presented in
//! the database" (the state Figure 4 depicts). The paper is explicit that
//! this approach ignores the anti-monotone property and is therefore suited
//! to *very low* minimum supports on dense data (§6).
//!
//! ## Canonical derivation discipline
//!
//! The paper's shifting scheme ("considering the last two positions … then
//! one shift to the left"; "any vector that does not have enough space for
//! shifting has already gone through the mining process") exists to ensure
//! each subset inherits each transaction's frequency **exactly once**. We
//! realise the same guarantee explicitly:
//!
//! * every subset of an itemset corresponds bijectively to a pair
//!   *(prefix length, set of merge cuts)* — drop a suffix of the vector,
//!   then replace chosen consecutive runs by their sums (Lemma 4.1.3
//!   generalised);
//! * prefix drops are applied at seeding time (the paper folds them into
//!   construction — `ConstructOptions::top_down`);
//! * merge cuts are applied in strictly **decreasing** cut order. Each
//!   in-flight vector carries the bound below which it may still merge, so
//!   every (prefix, cut-set) pair is generated along exactly one path and
//!   frequency inheritance (`V′.freq += V.freq` on partially accumulated
//!   values) is sound — this is dynamic programming over the subset
//!   lattice, which is precisely the efficiency the paper claims over
//!   re-deriving every subset from every transaction.

use crate::construct::{construct, ConstructOptions};
use crate::error::Result;
use crate::hash::FxHashMap;
use crate::item::{Item, Itemset, Support};
use crate::miner::{Miner, MiningResult};
use crate::plt::Plt;
use crate::posvec::PositionVector;
use crate::ranking::RankPolicy;

/// Complete subset-support table: the "database after the top-down
/// approach" of Figure 4.
#[derive(Debug, Clone, Default)]
pub struct AllSubsetSupports {
    supports: FxHashMap<PositionVector, Support>,
}

impl AllSubsetSupports {
    /// Wraps a precomputed vector→support map. Used by alternative
    /// propagation strategies (e.g. the parallel per-vector expansion in
    /// `plt-parallel`) that produce the same table by other means.
    pub fn from_map(supports: FxHashMap<PositionVector, Support>) -> Self {
        AllSubsetSupports { supports }
    }

    /// Support of the itemset encoded by `vector` (0 if it never occurs).
    pub fn support(&self, vector: &PositionVector) -> Support {
        self.supports.get(vector).copied().unwrap_or(0)
    }

    /// Number of distinct itemsets occurring in the database.
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// True when the database was empty.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// Iterates over every `(vector, support)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (&PositionVector, Support)> {
        self.supports.iter().map(|(k, &v)| (k, v))
    }

    /// Materialises the table as a [`Plt`] (vectors re-partitioned by
    /// length) — the exact artefact Figure 4 shows. The returned PLT reuses
    /// `plt`'s ranking and bookkeeping.
    pub fn as_plt(&self, plt: &Plt) -> Plt {
        let mut out = Plt::new(plt.ranking().clone(), plt.min_support())
            .expect("source PLT had valid min support");
        for (v, s) in self.iter() {
            out.insert_vector(v.clone(), s);
        }
        out
    }
}

/// Runs the top-down propagation over a PLT built **without** prefix
/// insertion, returning the support of every itemset present in the
/// database.
///
/// Exponential in the maximum transaction length (it enumerates the subset
/// lattice); callers are expected to bound transaction length — the
/// [`TopDownMiner`] enforces a limit.
pub fn all_subset_supports(plt: &Plt) -> AllSubsetSupports {
    all_subset_supports_of(plt.iter().map(|(v, e)| (v, e.freq)))
}

/// The same canonical propagation over any collection of
/// `(vector, frequency)` entries — the form the hybrid miner feeds
/// conditional databases through.
pub fn all_subset_supports_of<'a>(
    entries: impl Iterator<Item = (&'a PositionVector, Support)>,
) -> AllSubsetSupports {
    // levels[k − 1]: in-flight vectors of length k, keyed by
    // (vector, merge bound): value = accumulated inherited frequency.
    // A merge bound of b permits merges at 0-based indices < b.
    let mut levels: Vec<FxHashMap<(PositionVector, u32), Support>> = Vec::new();

    // Seeding: every stored vector contributes each of its prefixes with
    // full merge freedom (the paper's part A, folded into construction).
    for (v, freq) in entries {
        let ranks = v.ranks();
        if levels.len() < ranks.len() {
            levels.resize_with(ranks.len(), FxHashMap::default);
        }
        for end in 1..=ranks.len() {
            let prefix = PositionVector::from_ranks(&ranks[..end]).expect("valid prefix");
            let bound = (end - 1) as u32;
            *levels[end - 1].entry((prefix, bound)).or_insert(0) += freq;
        }
    }
    let max_len = levels.len();

    let mut supports: FxHashMap<PositionVector, Support> = FxHashMap::default();
    for k in (1..=max_len).rev() {
        let level = std::mem::take(&mut levels[k - 1]);
        for ((v, bound), freq) in level {
            *supports.entry(v.clone()).or_insert(0) += freq;
            for cut in 0..bound as usize {
                let child = v.merged_at(cut);
                *levels[k - 2].entry((child, cut as u32)).or_insert(0) += freq;
            }
        }
    }
    AllSubsetSupports { supports }
}

/// Reference implementation for the ablation in experiment X4: enumerate
/// every subset of every source vector directly (no inheritance). Same
/// output as [`all_subset_supports`], asymptotically more work per distinct
/// subset when vectors share structure.
pub fn all_subset_supports_naive(plt: &Plt) -> AllSubsetSupports {
    let mut supports: FxHashMap<PositionVector, Support> = FxHashMap::default();
    for (v, e) in plt.iter() {
        for sub in v.subset_vectors() {
            *supports.entry(sub).or_insert(0) += e.freq;
        }
    }
    AllSubsetSupports { supports }
}

/// The top-down miner: construct a PLT, propagate all subset frequencies,
/// filter by minimum support.
#[derive(Debug, Clone, Copy)]
pub struct TopDownMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
    /// Guard against the subset-lattice blow-up: transactions with more
    /// frequent items than this panic rather than silently consuming all
    /// memory. The paper positions top-down for short dense transactions.
    pub max_transaction_len: usize,
}

impl Default for TopDownMiner {
    fn default() -> Self {
        TopDownMiner {
            rank_policy: RankPolicy::Lexicographic,
            max_transaction_len: 24,
        }
    }
}

impl TopDownMiner {
    /// Miner with a specific rank policy.
    ///
    /// Prefer constructing miners through `plt-shard`'s `MinerBuilder`,
    /// which configures every engine through one path.
    pub fn with_policy(rank_policy: RankPolicy) -> Self {
        TopDownMiner {
            rank_policy,
            ..Default::default()
        }
    }

    /// Convenience: construct + mine, returning both the result and the
    /// all-subsets table (Figure 4).
    pub fn mine_with_table(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
    ) -> Result<(MiningResult, AllSubsetSupports, Plt)> {
        let plt = construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )?;
        let result = crate::miner::Mine::mine_plt(self, &plt);
        let table = all_subset_supports(&plt);
        Ok((result, table, plt))
    }
}

/// The PLT-level entry point: the propagation and the support filter are
/// reported as `mine/topdown/propagate` and `mine/topdown/filter` spans,
/// plus a gauge for the table size.
impl crate::miner::Mine for TopDownMiner {
    fn mine(&self, plt: &Plt, obs: &mut plt_obs::Obs) -> MiningResult {
        assert!(
            plt.max_len() <= self.max_transaction_len,
            "top-down mining would enumerate 2^{} subsets; raise \
             max_transaction_len explicitly if this is intended",
            plt.max_len()
        );
        let table = obs.time("mine/topdown/propagate", || all_subset_supports(plt));
        obs.gauge("topdown.table_entries", table.len() as u64);
        let t0 = obs.start();
        let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
        for (v, support) in table.iter() {
            if support >= plt.min_support() {
                let items = plt.ranking().items_for_ranks(&v.ranks());
                result.insert(Itemset::from_sorted(items), support);
            }
        }
        obs.stop("mine/topdown/filter", t0);
        result
    }
}

impl Miner for TopDownMiner {
    fn name(&self) -> &'static str {
        "plt-topdown"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        let plt = construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        crate::miner::Mine::mine_plt(self, &plt)
    }

    fn mine_with_obs(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
        obs: &mut plt_obs::Obs,
    ) -> MiningResult {
        let plt = crate::construct::construct_obs(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
            obs,
        )
        .expect("invalid transaction database");
        crate::miner::Mine::mine(self, &plt, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Rank;
    use crate::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn figure4_all_subset_supports_on_table1() {
        // Ground truth from DESIGN.md E-F4 (supports of all 15 itemsets
        // over {A,B,C,D} present in the filtered database).
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let t = all_subset_supports(&plt);
        let expect: &[(&[Rank], Support)] = &[
            (&[1], 4),          // A
            (&[2], 5),          // B
            (&[3], 5),          // C
            (&[4], 4),          // D
            (&[1, 1], 4),       // AB
            (&[1, 2], 3),       // AC
            (&[1, 3], 2),       // AD
            (&[2, 1], 4),       // BC
            (&[2, 2], 3),       // BD
            (&[3, 1], 3),       // CD
            (&[1, 1, 1], 3),    // ABC
            (&[1, 1, 2], 2),    // ABD
            (&[1, 2, 1], 1),    // ACD
            (&[2, 1, 1], 2),    // BCD
            (&[1, 1, 1, 1], 1), // ABCD
        ];
        assert_eq!(t.len(), expect.len());
        for &(positions, support) in expect {
            assert_eq!(t.support(&pv(positions)), support, "vector {positions:?}");
        }
    }

    #[test]
    fn naive_and_canonical_agree() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let a = all_subset_supports(&plt);
        let b = all_subset_supports_naive(&plt);
        assert_eq!(a.len(), b.len());
        for (v, s) in a.iter() {
            assert_eq!(b.support(v), s);
        }
    }

    #[test]
    fn miner_matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = TopDownMiner::default().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn miner_matches_brute_force_at_min_support_one() {
        // min_support 1 keeps E and F frequent too.
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = TopDownMiner::default().mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn as_plt_renders_figure4() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let table = all_subset_supports(&plt);
        let fig4 = table.as_plt(&plt);
        assert_eq!(fig4.num_vectors(), 15);
        assert_eq!(fig4.vector_frequency(&pv(&[1, 1])), 4);
        let rendered = fig4.render_matrices();
        assert!(rendered.contains("D_1:"));
        assert!(rendered.contains("[1,2,1]  sum=4  freq=1"));
    }

    #[test]
    fn rank_policy_does_not_change_the_answer() {
        for policy in [
            RankPolicy::Lexicographic,
            RankPolicy::FrequencyAscending,
            RankPolicy::FrequencyDescending,
        ] {
            let got = TopDownMiner::with_policy(policy).mine(&table1(), 2);
            let expect = BruteForceMiner.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "policy {policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "2^")]
    fn long_transactions_are_rejected() {
        let t: Vec<Item> = (0..30).collect();
        let db = vec![t.clone(), t];
        TopDownMiner::default().mine(&db, 2);
    }

    #[test]
    fn empty_database() {
        let db: Vec<Vec<Item>> = vec![];
        let r = TopDownMiner::default().mine(&db, 1);
        assert!(r.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Top-down mining agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = TopDownMiner::default().mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }

        /// The all-subsets table equals the naive enumeration on random
        /// databases (canonical-discipline uniqueness).
        #[test]
        fn prop_canonical_equals_naive(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..25,
            ),
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
            let a = all_subset_supports(&plt);
            let b = all_subset_supports_naive(&plt);
            prop_assert_eq!(a.len(), b.len());
            for (v, s) in a.iter() {
                prop_assert_eq!(b.support(v), s);
            }
        }
    }
}
