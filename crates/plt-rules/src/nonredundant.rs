//! Productive-rule filtering: removing redundant association rules.
//!
//! `generate_rules` is complete, which in practice buries the interesting
//! implications under specialisations: if `{bread} → {butter}` holds at
//! 0.8 confidence, then `{bread, onions} → {butter}` at 0.8 adds nothing —
//! its extra antecedent item does not *improve* the prediction. A rule is
//! **productive** (Webb's terminology; Bayardo's "confidence
//! improvement") when its confidence strictly exceeds the confidence of
//! every generalisation — every rule with a proper subset of its
//! antecedent and the same consequent, including the empty antecedent
//! whose confidence is the consequent's base rate.
//!
//! Filtering needs only supports that the anti-monotone closure
//! guarantees are present in the [`MiningResult`], so it runs as a pure
//! post-process.

use plt_core::item::Itemset;
use plt_core::miner::MiningResult;

use crate::Rule;

/// Keeps the rules whose confidence improvement over *every*
/// generalisation is at least `min_improvement`.
///
/// `min_improvement = 0.0` removes only rules that are no better than a
/// generalisation (ties removed: improvement must be strictly positive
/// when `min_improvement` is 0 would admit equals — we require
/// `conf − best_general_conf >= min_improvement` and `> 0`).
pub fn productive_rules(rules: &[Rule], result: &MiningResult, min_improvement: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_improvement),
        "improvement is a confidence delta"
    );
    let n = result.num_transactions() as f64;
    rules
        .iter()
        .filter(|rule| {
            let improvement = confidence_improvement(rule, result, n);
            improvement > 0.0 && improvement >= min_improvement
        })
        .cloned()
        .collect()
}

/// `conf(rule) − max over proper antecedent subsets X' of conf(X' → Y)`.
/// The empty antecedent contributes the consequent's base rate.
pub fn confidence_improvement(rule: &Rule, result: &MiningResult, n: f64) -> f64 {
    let sup_y = result
        .support(rule.consequent.items())
        .expect("mining results are subset-closed") as f64;
    let mut best = sup_y / n; // conf(∅ → Y)
    let ante = rule.antecedent.items();
    let k = ante.len();
    assert!(k < 32, "antecedent too large for subset enumeration");
    // Proper, non-empty subsets of the antecedent.
    for mask in 1u32..((1u32 << k) - 1) {
        let sub: Vec<_> = (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| ante[i])
            .collect();
        let sub = Itemset::from_sorted(sub);
        let sup_sub = result
            .support(sub.items())
            .expect("mining results are subset-closed") as f64;
        let union = sub.union(&rule.consequent);
        let sup_union = result
            .support(union.items())
            .expect("mining results are subset-closed") as f64;
        best = best.max(sup_union / sup_sub);
    }
    rule.confidence - best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_rules, RuleConfig};
    use plt_core::item::Item;
    use plt_core::miner::{BruteForceMiner, Miner};

    /// A database engineered so that {1}→{2} is strong and {1,3}→{2}
    /// adds nothing over it.
    fn redundant_db() -> Vec<Vec<Item>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 2],
            vec![1, 3], // breaks conf({1}→{2}) = 1 down to 4/5
            vec![2, 3],
            vec![3],
        ]
    }

    #[test]
    fn specialisations_without_improvement_are_dropped() {
        let result = BruteForceMiner.mine(&redundant_db(), 1);
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.1,
            },
        );
        let productive = productive_rules(&rules, &result, 0.0);

        let find = |rs: &[Rule], x: &[Item], y: &[Item]| {
            rs.iter()
                .any(|r| r.antecedent.items() == x && r.consequent.items() == y)
        };
        // conf({1}→{2}) = 4/5 = 0.8; conf({1,3}→{2}) = 2/3 < 0.8 → the
        // specialisation is dropped, the general rule survives (its base
        // rate is 5/7 < 0.8).
        assert!(find(&rules, &[1, 3], &[2]), "complete set has it");
        assert!(find(&productive, &[1], &[2]));
        assert!(!find(&productive, &[1, 3], &[2]));
    }

    #[test]
    fn rules_below_base_rate_are_dropped() {
        // conf({3}→{2}) = 3/5 = 0.6 < base rate of 2 (5/7 ≈ 0.714): item 3
        // actually *lowers* the odds of 2 → unproductive.
        let result = BruteForceMiner.mine(&redundant_db(), 1);
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.1,
            },
        );
        let productive = productive_rules(&rules, &result, 0.0);
        assert!(!productive
            .iter()
            .any(|r| r.antecedent.items() == [3] && r.consequent.items() == [2]));
    }

    #[test]
    fn min_improvement_tightens_the_filter() {
        let result = BruteForceMiner.mine(&redundant_db(), 1);
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.1,
            },
        );
        let loose = productive_rules(&rules, &result, 0.0);
        let tight = productive_rules(&rules, &result, 0.3);
        assert!(tight.len() < loose.len());
        for r in &tight {
            assert!(confidence_improvement(r, &result, result.num_transactions() as f64) >= 0.3);
        }
    }

    #[test]
    fn productive_set_is_a_subset_preserving_metrics() {
        let result = BruteForceMiner.mine(&redundant_db(), 1);
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.2,
            },
        );
        let productive = productive_rules(&rules, &result, 0.0);
        assert!(productive.len() <= rules.len());
        for p in &productive {
            assert!(rules.iter().any(|r| r == p), "filter must not mutate rules");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_improvement() {
        let result = BruteForceMiner.mine(&redundant_db(), 1);
        productive_rules(&[], &result, 2.0);
    }
}
