//! # plt-query — query language and cost-based planner over mined results
//!
//! ROADMAP open item 4: instead of hard-coded endpoints, a small text
//! query language over one mined generation:
//!
//! ```text
//! SUPPORT OF {1,2}
//! TOP 20 WHERE support >= 0.01 AND prefix LIKE {3,*}
//! RULES WHERE confidence >= 0.8 AND lift > 1.2
//! MINE COND {1} TOP 10
//! ```
//!
//! Expressions are [parsed](parse()) into an [AST](ast::Query),
//! normalized, and [planned](plan::plan) into one of four physical
//! operators — canonical-key point lookup (Lemma 4.1.2), extension-index
//! traversal (Lemma 4.1.3) with top-k early termination, ordered
//! rule-index scan, or on-demand conditional mining — plus the
//! brute-force [`FullScan`](plan::PhysOp::FullScan) that doubles as the
//! differential-testing oracle. Costs come from the source's cardinality
//! stats; normalized ASTs key a [generation-aware LRU plan
//! cache](cache::PlanCache). Every operator returns rows identical to
//! the naive scan — `tests/query_equivalence.rs` proves it plan by plan.
//!
//! ```
//! use plt_core::construct::{construct, ConstructOptions};
//! use plt_core::{ConditionalMiner, Miner};
//! use plt_query::{run, MemSource};
//! use plt_rules::RuleConfig;
//!
//! let db = vec![vec![1, 2, 3], vec![1, 2], vec![1, 2], vec![2, 3]];
//! let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
//! let result = ConditionalMiner::default().mine(&db, 2);
//! let src = MemSource::build(1, plt, &result, RuleConfig::default());
//!
//! let (rows, prov) = run("SUPPORT OF {1,2}", &src, &mut plt_obs::Obs::none()).unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(prov.plan.op.as_str(), "index_point");
//! ```

pub mod ast;
pub mod cache;
pub mod exec;
pub mod parse;
pub mod plan;
pub mod source;

pub use ast::{CmpOp, Field, Num, PatElem, Pred, Query, QueryKind, Tier};
pub use cache::{CacheCounters, PlanCache};
pub use exec::{ApproxMeta, NaiveExecutor, Rows};
pub use parse::{parse, MAX_PRED_DEPTH, MAX_QUERY_BYTES};
pub use plan::{applicable_ops, PhysOp, Plan};
pub use source::{MemSource, Source, SourceStats, SupportSketch};

use plt_core::error::Result;
use plt_obs::Obs;

/// How a query's plan was obtained — returned alongside the rows so
/// callers (the serve endpoint, `--explain`) can surface provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provenance {
    pub plan: Plan,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether the query *asked* for the approximate tier (`APPROX`),
    /// regardless of whether a sketch ended up answering it.
    pub approx_requested: bool,
    /// Whether the answer is approximate. An `APPROX`-tier query whose
    /// planner still picked an exact operator reports `false` (the
    /// answer is trivially within any bound).
    pub approx: bool,
    /// The guaranteed absolute error bound when `approx` is true.
    pub error_bound: Option<plt_core::item::Support>,
}

/// The obs counter name for a chosen operator.
fn plan_counter(op: PhysOp) -> &'static str {
    match op {
        PhysOp::IndexPoint => "query.plan.index_point",
        PhysOp::ExtTraverse => "query.plan.ext_traverse",
        PhysOp::RuleScan => "query.plan.rule_scan",
        PhysOp::CondMine => "query.plan.cond_mine",
        PhysOp::FullScan => "query.plan.full_scan",
        PhysOp::SketchProbe => "query.plan.sketch_probe",
    }
}

fn parse_normalized(expr: &str, obs: &mut Obs) -> Result<Query> {
    obs.counter("query.requests", 1);
    match parse::parse(expr) {
        Ok(q) => Ok(q.normalize()),
        Err(e) => {
            obs.counter("query.parse_errors", 1);
            Err(e)
        }
    }
}

fn execute_planned(
    q: &Query,
    src: &dyn Source,
    plan: Plan,
    cache_hit: bool,
    obs: &mut Obs,
) -> Result<(Rows, Provenance)> {
    obs.counter(plan_counter(plan.op), 1);
    if q.tier.is_approx() {
        obs.counter("approx.requests", 1);
    }
    let t = obs.start();
    let (rows, meta) = exec::execute(plan.op, q, src)?;
    obs.stop("query/execute", t);
    match meta {
        Some(_) => obs.counter("approx.sketch_answers", 1),
        // An APPROX-tier request answered by an exact operator: count
        // the honest fallback so operators can see sketch coverage.
        None if q.tier.is_approx() => obs.counter("approx.exact_fallbacks", 1),
        None => {}
    }
    Ok((
        rows,
        Provenance {
            plan,
            cache_hit,
            approx_requested: q.tier.is_approx(),
            approx: meta.is_some(),
            error_bound: meta.map(|m| m.error_bound),
        },
    ))
}

/// Parses, plans, and executes one expression. The one-stop entry point
/// when no plan cache is in play.
pub fn run(expr: &str, src: &dyn Source, obs: &mut Obs) -> Result<(Rows, Provenance)> {
    let q = parse_normalized(expr, obs)?;
    let plan = plan::plan(&q, src, None)?;
    execute_planned(&q, src, plan, false, obs)
}

/// Like [`run`], but consults `cache` (keyed by the printed normalized
/// AST, scoped to the source's current generation) before planning.
pub fn run_cached(
    expr: &str,
    src: &dyn Source,
    cache: &PlanCache,
    obs: &mut Obs,
) -> Result<(Rows, Provenance)> {
    let q = parse_normalized(expr, obs)?;
    let generation = src.stats().generation;
    let key = q.to_string(); // q is normalized: its printed form IS the key
    if let Some(plan) = cache.lookup(&key, generation) {
        obs.counter("query.plan_cache.hits", 1);
        return execute_planned(&q, src, plan, true, obs);
    }
    obs.counter("query.plan_cache.misses", 1);
    let plan = plan::plan(&q, src, None)?;
    cache.insert(key, generation, plan);
    execute_planned(&q, src, plan, false, obs)
}

/// Test-only override hook: parse and execute with a forced physical
/// operator (erroring if it does not apply). The differential suite
/// uses this to drive every operator over the same query.
pub fn run_forced(expr: &str, src: &dyn Source, op: PhysOp) -> Result<(Rows, Provenance)> {
    let mut obs = Obs::none();
    let q = parse_normalized(expr, &mut obs)?;
    let plan = plan::plan(&q, src, Some(op))?;
    execute_planned(&q, src, plan, false, &mut obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::tests::mem_source;
    use plt_obs::MetricsRecorder;

    #[test]
    fn run_answers_and_reports_provenance() {
        let src = mem_source(2);
        let mut rec = MetricsRecorder::new();
        let (rows, prov) = run("SUPPORT OF {0,1,2}", &src, &mut Obs::new(&mut rec)).unwrap();
        assert_eq!(
            rows,
            Rows::Support {
                items: vec![0, 1, 2],
                support: 3,
                frequent: true,
            }
        );
        assert_eq!(prov.plan.op, PhysOp::IndexPoint);
        assert!(!prov.cache_hit);
        assert_eq!(rec.counter_value("query.requests"), 1);
        assert_eq!(rec.counter_value("query.plan.index_point"), 1);
        assert_eq!(rec.span_count("query/execute"), 1);
    }

    #[test]
    fn parse_errors_are_counted_and_typed() {
        let src = mem_source(2);
        let mut rec = MetricsRecorder::new();
        let err = run("SUPPORT OF {}", &src, &mut Obs::new(&mut rec)).unwrap_err();
        assert!(err.to_string().starts_with("query: "));
        assert_eq!(rec.counter_value("query.parse_errors"), 1);
        assert_eq!(rec.span_count("query/execute"), 0);
    }

    #[test]
    fn cached_runs_hit_on_normalized_equivalence() {
        let src = mem_source(2);
        let cache = PlanCache::new(8);
        let mut obs = Obs::none();
        let (rows1, p1) = run_cached(
            "TOP 5 WHERE contains {1} AND support >= 2",
            &src,
            &cache,
            &mut obs,
        )
        .unwrap();
        assert!(!p1.cache_hit);
        // Different spelling, same normal form: plan-cache hit, same rows.
        let (rows2, p2) = run_cached(
            "top 5 where SUPPORT >= 2 and CONTAINS {1}",
            &src,
            &cache,
            &mut obs,
        )
        .unwrap();
        assert!(p2.cache_hit);
        assert_eq!(p1.plan, p2.plan);
        assert_eq!(rows1, rows2);
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn approx_tier_reports_provenance_and_counters() {
        use crate::source::tests::mem_source_with_sketch;
        // Sketch attached, probe forced: approximate provenance.
        let src = mem_source_with_sketch(2, 8, 0.2);
        let (rows, prov) =
            run_forced("SUPPORT OF {0,1} APPROX", &src, PhysOp::SketchProbe).unwrap();
        assert_eq!(rows.kind(), "support");
        assert!(prov.approx);
        assert!(prov.error_bound.is_some());
        // No sketch: the APPROX request falls back to an exact operator
        // and says so, both in provenance and in the counters.
        let bare = mem_source(2);
        let mut rec = MetricsRecorder::new();
        let (_, prov) = run("SUPPORT OF {0,1} APPROX", &bare, &mut Obs::new(&mut rec)).unwrap();
        assert!(!prov.approx);
        assert_eq!(prov.error_bound, None);
        assert_eq!(rec.counter_value("approx.requests"), 1);
        assert_eq!(rec.counter_value("approx.exact_fallbacks"), 1);
        assert_eq!(rec.counter_value("approx.sketch_answers"), 0);
    }

    #[test]
    fn tiers_key_the_plan_cache_separately() {
        let src = mem_source(2);
        let cache = PlanCache::new(8);
        let mut obs = Obs::none();
        let (_, p1) = run_cached("SUPPORT OF {0,1}", &src, &cache, &mut obs).unwrap();
        assert!(!p1.cache_hit);
        // Same shape under APPROX: distinct cache entry, not a hit.
        let (_, p2) = run_cached("SUPPORT OF {0,1} APPROX", &src, &cache, &mut obs).unwrap();
        assert!(!p2.cache_hit);
        // Re-running each spelling hits its own entry.
        let (_, p3) = run_cached("support of {1,0} approx", &src, &cache, &mut obs).unwrap();
        assert!(p3.cache_hit);
        let (_, p4) = run_cached("SUPPORT OF {0,1} EXACT", &src, &cache, &mut obs).unwrap();
        assert!(p4.cache_hit);
    }

    #[test]
    fn forced_runs_agree_with_the_planner() {
        let src = mem_source(2);
        let mut obs = Obs::none();
        for expr in [
            "SUPPORT OF {0,1}",
            "TOP 4 WHERE size >= 2",
            "RULES WHERE confidence >= 0.6 TOP 5",
            "MINE COND {1} TOP 8",
        ] {
            let (chosen_rows, _) = run(expr, &src, &mut obs).unwrap();
            let q = parse(expr).unwrap().normalize();
            for &op in applicable_ops(&q) {
                let (rows, prov) = run_forced(expr, &src, op).unwrap();
                assert_eq!(rows, chosen_rows, "{expr} via {}", op.as_str());
                assert_eq!(prov.plan.op, op);
            }
        }
    }
}
