//! End-to-end tests of the compiled `plt-mine` binary: real process, real
//! argv, real files — the contract a shell user sees.

use std::process::Command;

fn plt_mine() -> Command {
    Command::new(env!("CARGO_BIN_EXE_plt-mine"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("plt-mine-e2e-{}-{name}", std::process::id()))
}

#[test]
fn full_pipeline_gen_stats_index_mine_query() {
    let dat = tmp("db.dat");
    let idx = tmp("db.pltc");

    // gen
    let out = plt_mine()
        .args([
            "gen",
            "--kind",
            "basket",
            "--transactions",
            "400",
            "--output",
            dat.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    // stats
    let out = plt_mine()
        .args(["stats", "--input", dat.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("|D|=400"));

    // index
    let out = plt_mine()
        .args([
            "index",
            "--input",
            dat.to_str().unwrap(),
            "--min-sup",
            "0.05",
            "--output",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // mine from raw and from index must agree line-for-line after headers.
    let raw = plt_mine()
        .args([
            "mine",
            "--input",
            dat.to_str().unwrap(),
            "--min-sup",
            "0.05",
        ])
        .output()
        .unwrap();
    let via_idx = plt_mine()
        .args(["mine-index", "--index", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(raw.status.success() && via_idx.status.success());
    let body = |o: &std::process::Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .skip(1)
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(body(&raw), body(&via_idx));

    // query
    let out = plt_mine()
        .args(["query", "--index", idx.to_str().unwrap(), "--itemset", "0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("support="));

    std::fs::remove_file(&dat).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn mine_metrics_json_emits_schema_v1_and_creates_parent_dirs() {
    let dat = tmp("metrics-db.dat");
    let out = plt_mine()
        .args([
            "gen",
            "--kind",
            "quest",
            "--transactions",
            "200",
            "--seed",
            "11",
            "--output",
            dat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The metrics path points into a directory that does not exist yet:
    // the CLI must create it rather than fail.
    let dir = tmp("metrics-out");
    let json_path = dir.join("nested").join("metrics.json");
    let out = plt_mine()
        .args([
            "mine",
            "--input",
            dat.to_str().unwrap(),
            "--min-sup",
            "0.02",
            "--limit",
            "0",
            "--metrics-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&json_path).expect("metrics file written");
    for needle in [
        "\"schema_version\": 1",
        "\"context\"",
        "\"input\"",
        "\"algo\": \"conditional\"",
        "\"engine\": \"arena\"",
        "\"num_transactions\": 200",
        "\"wall_ns\"",
        "\"spans\"",
        "construct/rank",
        "construct/encode",
        "mine/conditional",
        "\"counters\"",
        "arena.vectors_folded",
        "\"gauges\"",
        "arena.bytes_peak",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }

    std::fs::remove_file(&dat).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_message() {
    let out = plt_mine().args(["mine"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = plt_mine().arg("definitely-not-a-command").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = plt_mine()
        .args(["mine", "--input", "/nonexistent/x.dat", "--min-sup", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
