//! Differential proof for the approximate answering tier: every
//! `APPROX` answer the sketch produces must sit within its *stated*
//! error bound of the exact support, across a ≥128-case sweep mixing
//! exhaustive sketches (small windows, bound 0) with genuinely sampled
//! ones; the `EXACT` default must stay bit-identical to the oracle; and
//! the Toivonen sampled-rebuild path must stay exact even when its
//! negative-border verification trips and forces the fallback.
//!
//! The failure probability per sketch query is δ; the suites pin
//! δ ≤ 1e-6 with fixed seeds, so the asserted outcomes are
//! deterministic and effectively certain, mirroring the εN style of
//! `plt-stream`'s lossy-counting invariants.

use std::collections::{BTreeSet, VecDeque};

use plt::approx::{IndicatorSketch, SampledRebuild, SketchConfig};
use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::BruteForceMiner;
use plt::core::{ConditionalMiner, Miner};
use plt::query::{run, run_forced, MemSource, PhysOp, Rows, SupportSketch};
use plt::rules::RuleConfig;
use proptest::prelude::*;

/// True window support by subset counting — the ground truth every
/// estimate is measured against.
fn exact_support(db: &[Vec<u32>], probe: &[u32]) -> u64 {
    db.iter()
        .filter(|t| probe.iter().all(|i| t.contains(i)))
        .count() as u64
}

/// xorshift64* so one proptest seed expands into a whole workload.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_db(rng: &mut Rng, n_tx: usize, n_items: u32) -> Vec<Vec<u32>> {
    (0..n_tx)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            let mut t = BTreeSet::new();
            for _ in 0..len {
                t.insert(rng.below(n_items as u64) as u32);
            }
            t.into_iter().collect()
        })
        .collect()
}

/// A source whose generation mined at support 1 (so the rank-limited
/// exact answer equals the true window support for every in-vocabulary
/// probe), with a sketch warmed over the same window.
fn sketch_source(db: &[Vec<u32>], epsilon: f64, seed: u64) -> MemSource {
    let plt = construct(db, 1, ConstructOptions::conditional()).unwrap();
    let result = ConditionalMiner::default().mine(db, 1);
    let mut sketch = IndicatorSketch::new(SketchConfig {
        epsilon,
        delta: 1e-9,
        capacity: db.len(),
        seed,
    });
    for t in db {
        sketch.observe(t);
    }
    MemSource::build(1, plt, &result, RuleConfig::default()).with_sketch(Box::new(sketch))
}

fn support_of(rows: &Rows) -> u64 {
    match rows {
        Rows::Support { support, .. } => *support,
        other => panic!("expected a support row, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ≥128-case differential sweep: per case, several probes run
    /// through the forced sketch operator, the planner's own APPROX
    /// choice, and the EXACT default — each checked against brute-force
    /// subset counting.
    #[test]
    fn approx_answers_stay_within_their_stated_bound(
        seed in any::<u64>(),
        n_tx in 150usize..900,
        n_items in 4u32..10,
        eps_sel in 0u8..3,
    ) {
        let epsilon = [0.1, 0.2, 0.3][eps_sel as usize];
        let mut rng = Rng::new(seed);
        let db = gen_db(&mut rng, n_tx, n_items);
        let src = sketch_source(&db, epsilon, seed ^ 0xabcd);

        let mut probes: Vec<Vec<u32>> = Vec::new();
        for _ in 0..4 {
            let mut p = BTreeSet::new();
            for _ in 0..1 + rng.below(3) {
                p.insert(rng.below(n_items as u64) as u32);
            }
            probes.push(p.into_iter().collect());
        }
        // Out-of-vocabulary probe: true support 0 on both paths.
        probes.push(vec![n_items + 5]);

        for probe in &probes {
            let exact = exact_support(&db, probe);
            let expr = probe
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", ");

            // Forced sketch probe: approximate provenance, bounded error.
            let (rows, prov) = run_forced(
                &format!("SUPPORT OF {{{expr}}} APPROX"),
                &src,
                PhysOp::SketchProbe,
            )
            .unwrap();
            prop_assert!(prov.approx, "sketch probe must report approx");
            let bound = prov.error_bound.expect("approx answers state a bound");
            let est = support_of(&rows);
            prop_assert!(
                est.abs_diff(exact) <= bound,
                "|{est} - {exact}| > {bound} for {probe:?} (n={n_tx}, eps={epsilon})"
            );

            // Planner under APPROX: bounded when a sketch answers,
            // exact when it honestly falls back.
            let (rows, prov) = run(
                &format!("SUPPORT OF {{{expr}}} APPROX"),
                &src,
                &mut plt::obs::Obs::none(),
            )
            .unwrap();
            let est = support_of(&rows);
            if prov.approx {
                let bound = prov.error_bound.unwrap();
                prop_assert!(est.abs_diff(exact) <= bound, "{probe:?}");
            } else {
                prop_assert_eq!(est, exact, "exact fallback must be exact");
            }

            // The EXACT default never goes near the sketch.
            let (rows, prov) = run(
                &format!("SUPPORT OF {{{expr}}}"),
                &src,
                &mut plt::obs::Obs::none(),
            )
            .unwrap();
            prop_assert!(!prov.approx);
            prop_assert_eq!(prov.error_bound, None);
            prop_assert_eq!(support_of(&rows), exact, "{probe:?}");
        }
    }

    /// The sketch honors its ε/δ contract under arbitrary insert/slide
    /// interleavings: a reference FIFO window is maintained alongside,
    /// and after every arrival past warm-up the estimate of each probe
    /// stays within the stated bound of the reference count.
    #[test]
    fn sketch_bound_holds_across_insert_slide_interleavings(
        arrivals in proptest::collection::vec(
            proptest::collection::btree_set(0u32..8, 1..5),
            150..400,
        ),
        capacity in 60usize..140,
        seed in any::<u64>(),
    ) {
        let mut sketch = IndicatorSketch::new(SketchConfig {
            epsilon: 0.35,
            delta: 1e-6,
            capacity,
            seed,
        });
        let mut window: VecDeque<Vec<u32>> = VecDeque::new();
        let probes: [&[u32]; 4] = [&[0], &[3], &[0, 1], &[2, 5]];
        for (i, t) in arrivals.iter().enumerate() {
            let t: Vec<u32> = t.iter().copied().collect();
            sketch.observe(&t);
            window.push_back(t);
            if window.len() > capacity {
                window.pop_front();
            }
            // Check at a stride to keep the sweep fast; always check
            // the final state.
            if i % 37 != 0 && i + 1 != arrivals.len() {
                continue;
            }
            let w: Vec<Vec<u32>> = window.iter().cloned().collect();
            prop_assert_eq!(sketch.window_len(), w.len() as u64);
            for probe in probes {
                let (est, bound) = sketch.estimate(probe);
                let exact = exact_support(&w, probe);
                prop_assert!(
                    est.abs_diff(exact) <= bound,
                    "arrival {i}: |{est} - {exact}| > {bound} for {probe:?} \
                     (capacity={capacity}, kept={})",
                    sketch.kept_len()
                );
            }
        }
    }
}

/// Starving the sampler (tiny sample, no support slack, one attempt)
/// trips the negative-border verification on real windows — and the
/// mined result must be exact anyway, because a violation forces the
/// exact fallback. This is the failure path the serving builder relies
/// on for correctness.
#[test]
fn negative_border_violations_force_the_exact_fallback() {
    // Many itemsets sit near the threshold, so a 6% sample routinely
    // misjudges one of them.
    let window: Vec<Vec<u32>> = (0..420u32)
        .map(|i| {
            let mut t = vec![i % 7, 7 + (i % 5), 12 + (i % 11)];
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();
    let min_support = 55;
    let expect = BruteForceMiner.mine(&window, min_support).sorted();

    let sampler = SampledRebuild {
        sample_fraction: 0.06,
        support_slack: 0.0,
        seed: 0x0b0b_b1e5,
        max_attempts: 1,
    };
    let mut violations = 0;
    let mut fallbacks = 0;
    for generation in 0..40 {
        let (result, outcome) = sampler.mine(&window, min_support, generation);
        assert_eq!(
            result.sorted(),
            expect,
            "generation {generation}: sampled rebuild must stay exact \
             (outcome: {outcome:?})"
        );
        violations += outcome.border_violations;
        if outcome.fell_back {
            fallbacks += 1;
        }
    }
    assert!(
        violations > 0,
        "the starved sampler never tripped the negative border — \
         the fallback path went unexercised"
    );
    assert!(fallbacks > 0, "violations must force the exact fallback");
}

/// The serving defaults keep the gamble cheap: with the default
/// `SampledRebuild` the fast path usually wins, and its answers are
/// still exact across generations.
#[test]
fn default_sampled_rebuild_is_exact_and_usually_avoids_fallback() {
    let window: Vec<Vec<u32>> = (0..600u32)
        .map(|i| {
            let mut t = vec![i % 9, 9 + (i % 4)];
            if i % 3 == 0 {
                t.push(20);
            }
            t.sort_unstable();
            t
        })
        .collect();
    let min_support = 40;
    let expect = BruteForceMiner.mine(&window, min_support).sorted();
    let sampler = SampledRebuild::default();
    let mut sampled_wins = 0;
    for generation in 0..10 {
        let (result, outcome) = sampler.mine(&window, min_support, generation);
        assert_eq!(result.sorted(), expect, "generation {generation}");
        if !outcome.fell_back {
            sampled_wins += 1;
        }
    }
    assert!(
        sampled_wins >= 5,
        "the default configuration should win the sampling gamble most \
         of the time, won {sampled_wins}/10"
    );
}
