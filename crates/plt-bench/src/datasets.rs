//! The seeded workloads behind experiments X1..X8.
//!
//! Each function is deterministic; the returned `Vec<Vec<Item>>` is the
//! concrete type the `Miner` trait consumes. Sizes are chosen so the full
//! suite completes on a laptop; the `experiments` binary's `--full` flag
//! scales them up.

use plt_data::gen::basket::{BasketConfig, BasketGenerator};
use plt_data::gen::dense::{DenseConfig, DenseGenerator};
use plt_data::gen::quest::{QuestConfig, QuestGenerator};
use plt_data::gen::zipf::{ZipfConfig, ZipfGenerator};
use plt_data::transaction::Item;

/// Sparse Quest data (`T10.I4.D{n}`) — the X1/X3/X5/X8 workload.
pub fn sparse(n: usize) -> Vec<Vec<Item>> {
    QuestGenerator::new(QuestConfig::t10i4(n))
        .generate()
        .into_transactions()
}

/// Smaller, denser Quest variant for quick runs.
pub fn sparse_small(n: usize) -> Vec<Vec<Item>> {
    QuestGenerator::new(QuestConfig::t5i2(n))
        .generate()
        .into_transactions()
}

/// Dense chess-like data — the X2/X4/X6 workload. `num_items` stays small
/// because the frequent-itemset lattice explodes with it.
pub fn dense(n: usize, num_items: u32) -> Vec<Vec<Item>> {
    DenseGenerator::new(DenseConfig {
        num_transactions: n,
        num_items,
        density_hi: 0.9,
        density_lo: 0.25,
        seed: 0x000d_ecaf,
    })
    .generate()
    .into_transactions()
}

/// Retail/click-log style data with power-law item popularity — the X10
/// workload.
pub fn zipf(n: usize, exponent: f64) -> Vec<Vec<Item>> {
    ZipfGenerator::new(ZipfConfig {
        num_transactions: n,
        exponent,
        ..Default::default()
    })
    .generate()
    .into_transactions()
}

/// Market-basket data with named products (examples + X7).
pub fn baskets(n: usize) -> Vec<Vec<Item>> {
    BasketGenerator::new(BasketConfig {
        num_baskets: n,
        ..Default::default()
    })
    .generate()
    .into_transactions()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        assert_eq!(sparse(500).len(), 500);
        assert_eq!(sparse(500), sparse(500));
        assert_eq!(dense(200, 12).len(), 200);
        assert_eq!(baskets(100).len(), 100);
        assert_eq!(sparse_small(50).len(), 50);
    }

    #[test]
    fn zipf_is_deterministic() {
        assert_eq!(zipf(100, 1.1), zipf(100, 1.1));
        assert_eq!(zipf(100, 1.1).len(), 100);
    }

    #[test]
    fn dense_universe_is_bounded() {
        let db = dense(300, 10);
        assert!(db.iter().flatten().all(|&i| i < 10));
    }
}
