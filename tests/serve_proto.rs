//! Differential property suite for the wire-protocol codecs: the
//! incremental [`FrameDecoder`] (reactor path) against the blocking
//! `read_frame_limited` (thread path), over arbitrary byte streams fed
//! at arbitrary split boundaries.
//!
//! The two codecs are independent implementations of the same grammar;
//! any divergence — a frame decoded by one and not the other, a
//! different error message, a panic, a hang — is a bug. Streams mix
//! valid frames, junk header lines, oversized declarations, truncated
//! frames, missing terminators, non-UTF-8 payloads, and partial headers
//! at EOF.
//!
//! Junk lines are kept far below the decoder's 4 KiB header cap — the
//! cap is the incremental codec's one documented divergence (the
//! blocking reader will buffer an unbounded header line; the reactor
//! refuses to).

use std::io::BufRead;

use plt::serve::FrameDecoder;
use proptest::prelude::*;

/// How a codec run ended after the decoded frames.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Terminal {
    /// Clean EOF at a frame boundary.
    Clean,
    /// EOF mid-frame (peer died); no error frame owed.
    Truncated,
    /// Protocol violation; the message is the wire-visible error text.
    Error(String),
}

/// Runs the blocking codec over the whole stream.
fn run_blocking(bytes: &[u8], max_frame: usize) -> (Vec<String>, Terminal) {
    let mut frames = Vec::new();
    let mut r = std::io::BufReader::new(std::io::Cursor::new(bytes));
    loop {
        match plt::serve::proto::read_frame_limited(&mut r, max_frame) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return (frames, Terminal::Clean),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return (frames, Terminal::Error(e.to_string()))
            }
            Err(_) => return (frames, Terminal::Truncated),
        }
    }
}

/// Runs the incremental decoder, pushing `bytes` in chunks cut at
/// pseudo-random boundaries derived from `split_seed`.
fn run_incremental(bytes: &[u8], max_frame: usize, split_seed: u64) -> (Vec<String>, Terminal) {
    let mut frames = Vec::new();
    let mut dec = FrameDecoder::new(max_frame);
    let mut state = split_seed | 1;
    let mut next_chunk = move || {
        // splitmix64 step; chunk lengths 1..=17 skew small to stress
        // resumption across every boundary class.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % 17 + 1
    };
    let mut offset = 0;
    while offset < bytes.len() {
        let end = (offset + next_chunk()).min(bytes.len());
        dec.push(&bytes[offset..end]);
        offset = end;
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return (frames, Terminal::Error(e.to_string())),
            }
        }
    }
    match dec.finish() {
        Ok(false) => (frames, Terminal::Clean),
        Ok(true) => (frames, Terminal::Truncated),
        Err(e) => (frames, Terminal::Error(e.to_string())),
    }
}

/// Builds one stream segment from a `(kind, len, fill)` triple.
fn build_segment(out: &mut Vec<u8>, kind: u8, len: u16, fill: u8, max_frame: usize) {
    match kind % 8 {
        // Well-formed frame, printable payload.
        0 | 1 => {
            let payload: Vec<u8> = (0..len % 200)
                .map(|i| b' ' + ((fill as u16 + i) % 94) as u8)
                .collect();
            out.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
            out.extend_from_slice(&payload);
            out.push(b'\n');
        }
        // Well-formed frame, arbitrary bytes (may be non-UTF-8 and may
        // embed newlines — the length prefix governs).
        2 => {
            let payload: Vec<u8> = (0..len % 200)
                .map(|i| (fill as u16 + i * 7) as u8)
                .collect();
            out.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
            out.extend_from_slice(&payload);
            out.push(b'\n');
        }
        // Junk header line (non-numeric, short of the header cap).
        3 => {
            let junk: Vec<u8> = (0..len % 40 + 1)
                .map(|i| b'a' + ((fill as u16 + i) % 26) as u8)
                .collect();
            out.extend_from_slice(&junk);
            out.push(b'\n');
        }
        // Oversized declaration.
        4 => {
            out.extend_from_slice(format!("{}\n", max_frame + 1 + len as usize).as_bytes());
        }
        // Declared frame, truncated payload (what follows — or EOF —
        // gets consumed as payload bytes).
        5 => {
            let declared = len % 100 + 10;
            let sent = declared / 2;
            out.extend_from_slice(format!("{declared}\n").as_bytes());
            out.extend((0..sent).map(|i| b'a' + (i % 26) as u8));
        }
        // Frame with the terminator replaced by a payload-like byte.
        6 => {
            let payload: Vec<u8> = (0..len % 50).map(|i| b'0' + (i % 10) as u8).collect();
            out.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
            out.extend_from_slice(&payload);
            out.push(b'X');
        }
        // Bare digits, no newline (only meaningful as the final
        // segment: a partial header at EOF).
        _ => {
            out.extend_from_slice(format!("{}", len % 1000).as_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Both codecs decode the identical frame sequence and agree on the
    /// terminal outcome — clean close, truncation, or the exact error
    /// text — for any segment mix at any chunking.
    #[test]
    fn incremental_and_blocking_codecs_agree(
        segments in proptest::collection::vec((0u8..8, 0u16..1000, 0u8..255), 1..10),
        split_seed in any::<u64>(),
        max_sel in 64u16..512,
    ) {
        let max_frame = max_sel as usize;
        let mut bytes = Vec::new();
        for (kind, len, fill) in &segments {
            build_segment(&mut bytes, *kind, *len, *fill, max_frame);
        }

        let (bf, bt) = run_blocking(&bytes, max_frame);
        let (inf, it) = run_incremental(&bytes, max_frame, split_seed);

        prop_assert_eq!(&bf, &inf, "decoded frames diverge on {:?}", &segments);
        prop_assert_eq!(&bt, &it, "terminal outcome diverges on {:?}", &segments);
    }

    /// Round-trip at every split: a stream of well-formed frames is
    /// recovered byte-identically however the reads are chunked.
    #[test]
    fn well_formed_streams_round_trip_at_any_split(
        payloads in proptest::collection::vec((0u16..300, 0u8..255), 0..12),
        split_seed in any::<u64>(),
    ) {
        let mut bytes = Vec::new();
        let mut expect = Vec::new();
        for (len, fill) in &payloads {
            let payload: String = (0..len % 300)
                .map(|i| (b' ' + ((*fill as u16 + i) % 94) as u8) as char)
                .collect();
            bytes.extend_from_slice(format!("{}\n{}\n", payload.len(), payload).as_bytes());
            expect.push(payload);
        }
        let (frames, terminal) = run_incremental(&bytes, 16 * 1024 * 1024, split_seed);
        prop_assert_eq!(frames, expect);
        prop_assert_eq!(terminal, Terminal::Clean);
    }
}

/// The incremental decoder's one intentional divergence: a header line
/// that never terminates is cut off at 4 KiB instead of buffering
/// without bound. The blocking reader would happily read it forever.
#[test]
fn runaway_headers_are_capped_not_buffered() {
    let mut dec = FrameDecoder::with_default_limit();
    dec.push(&vec![b'9'; 8192]); // digits, but no newline ever
    let err = dec
        .next_frame()
        .expect_err("runaway header must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        dec.buffered() <= 8192,
        "decoder kept buffering after rejecting the header"
    );
}

/// Deterministic cross-model differential on the wire: the same
/// malformed inputs produce byte-identical error frames from a threads
/// server and a reactor server.
#[cfg(target_os = "linux")]
#[test]
fn both_server_models_emit_identical_error_frames() {
    use std::io::Write;

    use plt::serve::{bootstrap, serve, BuilderConfig, ServerConfig, ServerModel};

    let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
    let cases: Vec<Vec<u8>> = vec![
        b"notanumber\n{}\n".to_vec(),
        format!("{}\n", 16 * 1024 * 1024 + 1).into_bytes(),
        b"2\n{}X".to_vec(),
        b"7\nnotjson\n".to_vec(),
        b"13\n{\"op\":\"warp\"}\n".to_vec(),
    ];

    let mut per_model = Vec::new();
    for model in [ServerModel::Threads, ServerModel::Reactor] {
        let config = BuilderConfig {
            window_capacity: 64,
            min_support: 2,
            ..BuilderConfig::default()
        };
        let (engine, builder) = bootstrap(&warmup, config).expect("bootstrap");
        let handle = serve(
            "127.0.0.1:0",
            engine,
            Some(builder.queue()),
            ServerConfig {
                server_model: model,
                acceptors: 1,
                reactors: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        let mut replies = Vec::new();
        for case in &cases {
            let mut s = std::net::TcpStream::connect(handle.addr()).expect("connect");
            s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
                .unwrap();
            s.write_all(case).expect("write");
            let mut r = std::io::BufReader::new(s);
            let mut line = String::new();
            let reply = if r.read_line(&mut line).unwrap_or(0) == 0 {
                String::from("<closed>")
            } else {
                let len: usize = line.trim().parse().expect("response header");
                let mut payload = vec![0u8; len + 1];
                std::io::Read::read_exact(&mut r, &mut payload).expect("response payload");
                payload.pop();
                String::from_utf8(payload).expect("utf-8 response")
            };
            replies.push(reply);
        }
        handle.shutdown();
        builder.stop();
        per_model.push(replies);
    }
    assert_eq!(
        per_model[0], per_model[1],
        "threads and reactor answered malformed input differently"
    );
}

/// The same differential, run per envelope version: a v2 connection
/// (negotiated via `hello`) gets its protocol errors wrapped in the v2
/// envelope, byte-identically across server models, while v1
/// connections keep the flat frames.
#[cfg(target_os = "linux")]
#[test]
fn error_frames_agree_across_models_for_both_envelope_versions() {
    use std::io::Write;

    use plt::serve::json::Json;
    use plt::serve::{bootstrap, serve, BuilderConfig, ServerConfig, ServerModel};

    fn write_frame(s: &mut std::net::TcpStream, payload: &str) {
        s.write_all(format!("{}\n{}\n", payload.len(), payload).as_bytes())
            .expect("write frame");
    }

    fn read_frame(r: &mut impl BufRead) -> Option<String> {
        let mut line = String::new();
        if r.read_line(&mut line).unwrap_or(0) == 0 {
            return None;
        }
        let len: usize = line.trim().parse().expect("response header");
        let mut payload = vec![0u8; len + 1];
        std::io::Read::read_exact(r, &mut payload).expect("response payload");
        payload.pop();
        Some(String::from_utf8(payload).expect("utf-8 response"))
    }

    let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
    // Malformed *requests* only (valid frames): framing violations kill
    // the connection before version negotiation can matter.
    let cases = [
        r#"{"op":"warp"}"#,
        r#"{"op":"query","expr":"TOP"}"#,
        r#"not json"#,
    ];

    for version in [1u64, 2] {
        let mut per_model = Vec::new();
        for model in [ServerModel::Threads, ServerModel::Reactor] {
            let config = BuilderConfig {
                window_capacity: 64,
                min_support: 2,
                ..BuilderConfig::default()
            };
            let (engine, builder) = bootstrap(&warmup, config).expect("bootstrap");
            let handle = serve(
                "127.0.0.1:0",
                engine,
                Some(builder.queue()),
                ServerConfig {
                    server_model: model,
                    acceptors: 1,
                    reactors: 1,
                    ..ServerConfig::default()
                },
            )
            .expect("bind");

            let mut replies = Vec::new();
            for case in &cases {
                let mut s = std::net::TcpStream::connect(handle.addr()).expect("connect");
                s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
                    .unwrap();
                if version >= 2 {
                    write_frame(&mut s, &format!(r#"{{"op":"hello","version":{version}}}"#));
                }
                write_frame(&mut s, case);
                let mut r = std::io::BufReader::new(s);
                if version >= 2 {
                    read_frame(&mut r).expect("hello ack");
                }
                let reply = read_frame(&mut r).unwrap_or_else(|| String::from("<closed>"));
                replies.push(reply);
            }
            handle.shutdown();
            builder.stop();
            per_model.push(replies);
        }
        assert_eq!(
            per_model[0], per_model[1],
            "v{version}: threads and reactor answered malformed requests differently"
        );

        // Every reply carries the shape its version promises.
        for reply in &per_model[0] {
            let v = Json::parse(reply).expect("error replies are JSON");
            if version >= 2 {
                assert_eq!(v.get("v").and_then(Json::as_u64), Some(2), "{reply}");
                assert_eq!(
                    v.get("status").and_then(Json::as_str),
                    Some("error"),
                    "{reply}"
                );
                assert!(
                    v.get("data")
                        .and_then(|d| d.get("error"))
                        .and_then(Json::as_str)
                        .is_some(),
                    "{reply}"
                );
            } else {
                assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{reply}");
                assert!(v.get("v").is_none(), "v1 frames stay flat: {reply}");
            }
        }
    }
}
