//! A fast, non-cryptographic hasher for hot hash maps.
//!
//! Position vectors are hashed on every insert of every transaction and on
//! every subset-propagation step of the top-down miner; profiling the Rust
//! compiler (and this crate) shows SipHash dominating such workloads. We
//! vendor the tiny Fx (Firefox) multiply-rotate hash rather than pulling in
//! an extra dependency: the algorithm is ~20 lines and its behaviour is
//! easily unit-tested. HashDoS resistance is irrelevant here — keys are
//! derived from the caller's own data, never from an adversarial network.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit variant); chosen by the
/// Firefox team as `π * 2^62` rounded to an odd integer.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
///
/// Writes fold each machine word into the state with
/// `state = (state rotl 5 ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(&[1u32, 2, 3]);
        let b = hash_of(&[1u32, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // A weak smoke test, not a statistical one: the vectors that arise
        // as hot keys differ in a single small delta and must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            for j in 0..64u32 {
                assert!(seen.insert(hash_of(&[i, j])), "collision at [{i},{j}]");
            }
        }
    }

    #[test]
    fn unaligned_tails_are_hashed() {
        // 5 bytes exercises the remainder path of `write`.
        assert_ne!(hash_of(&b"abcde".as_slice()), hash_of(&b"abcdf".as_slice()));
    }

    #[test]
    fn maps_and_sets_are_usable() {
        let mut m: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        m.insert(vec![1, 2], 10);
        *m.entry(vec![1, 2]).or_insert(0) += 5;
        assert_eq!(m[&vec![1, 2]], 15);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}
