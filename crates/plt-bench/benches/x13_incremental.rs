//! X13 — incremental rebuild vs full re-mine. The pipeline absorbs a 1%
//! delta of already-frequent items (localized to one rank band, or
//! spread uniformly) and re-mines only the dirtied shards; the baseline
//! re-mines the whole grown database from scratch. Each incremental
//! iteration applies the delta and then removes it again, so the
//! pipeline returns to its base state and every iteration measures the
//! same two dirty-shard rebuilds — no per-iteration reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::{ConditionalMiner, Miner};
use plt_shard::{Delta, ShardConfig, ShardedPipeline};

/// A deterministic delta transaction over the frequent-item slice.
fn delta_txn(items: &[u32], start: usize, stride: usize, width: usize, modulo: usize) -> Vec<u32> {
    let mut t: Vec<u32> = (0..width)
        .map(|k| items[(start + k * stride) % modulo])
        .collect();
    t.sort_unstable();
    t.dedup();
    t
}

fn bench(c: &mut Criterion) {
    let n = 2_000;
    let min_sup = 20;
    let shards = 16;
    let workloads: Vec<(&str, Vec<Vec<u32>>)> = vec![
        ("sparse", datasets::sparse(n)),
        ("zipf", datasets::zipf(n, 1.1)),
    ];
    let config = ShardConfig {
        shard_count: shards,
        min_support: min_sup,
        ..ShardConfig::default()
    };
    for (name, base) in &workloads {
        let probe = ShardedPipeline::new(base, config).unwrap();
        let ranking = probe.plt().ranking();
        let items: Vec<u32> = (1..=ranking.len() as u32)
            .map(|r| ranking.item(r))
            .collect();
        let delta_size = n / 100;
        let band = (items.len() / shards).max(2);
        let stride = (items.len() / 8).max(1);
        let deltas: Vec<(&str, Vec<Vec<u32>>)> = vec![
            (
                "localized",
                (0..delta_size)
                    .map(|i| delta_txn(&items, i, 1, 6, band))
                    .collect(),
            ),
            (
                "uniform",
                (0..delta_size)
                    .map(|i| delta_txn(&items, i, stride, 8, items.len()))
                    .collect(),
            ),
        ];

        let mut group = c.benchmark_group(format!("x13/{name}"));
        group.sample_size(10);
        for (mode, delta) in &deltas {
            let mut pipeline = ShardedPipeline::new(base, config).unwrap();
            group.bench_with_input(BenchmarkId::new("incremental", *mode), delta, |b, delta| {
                b.iter(|| {
                    pipeline.apply(Delta::add(delta.clone())).unwrap();
                    pipeline
                        .apply(Delta {
                            adds: Vec::new(),
                            removes: delta.clone(),
                        })
                        .unwrap();
                })
            });
            let mut all = base.clone();
            all.extend(delta.iter().cloned());
            group.bench_with_input(BenchmarkId::new("full", *mode), &all, |b, all| {
                b.iter(|| ConditionalMiner::default().mine(all, min_sup))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
