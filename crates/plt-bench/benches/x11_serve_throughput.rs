//! X11 — serving throughput: queries/sec through the plt-serve engine
//! as a function of snapshot size, cold cache vs warm cache.
//!
//! Three endpoints are measured per snapshot size: `support` point
//! lookups (canonical-vector probe), `top_k`, and `recommend`. "Cold"
//! pays the full index path on every query by using a distinct query
//! per iteration; "warm" replays one query so the sharded LRU answers
//! from cache. The gap between the two is the cache's contribution;
//! the cold number is the index's intrinsic throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::miner::Miner;
use plt_core::ConditionalMiner;
use plt_rules::RuleConfig;
use plt_serve::{Engine, Request, Snapshot};

fn build_engine(n: usize, min_sup: u64) -> Engine {
    let db = datasets::sparse_small(n);
    let plt = construct(&db, min_sup, ConstructOptions::conditional()).unwrap();
    let result = ConditionalMiner::default().mine(&db, min_sup);
    Engine::new(Snapshot::build(1, plt, &result, RuleConfig::default()))
}

/// Queries that mostly hit indexed itemsets: the frequent single items
/// and pairs from the snapshot's own top list.
fn query_mix(engine: &Engine, len: usize) -> Vec<Request> {
    let snap = engine.current();
    let mut queries: Vec<Request> = snap
        .top_k(len, 1)
        .into_iter()
        .map(|(itemset, _)| Request::Support {
            items: itemset.items().to_vec(),
        })
        .collect();
    // Pad with misses (infrequent probes) so the mix exercises the
    // oracle fallback too.
    let mut next = 10_000u32;
    while queries.len() < len {
        queries.push(Request::Support {
            items: vec![next, next + 1],
        });
        next += 2;
    }
    queries
}

fn bench(c: &mut Criterion) {
    for n in [500usize, 2_000, 8_000] {
        let engine = build_engine(n, 2);
        let snap = engine.current();
        let mut group = c.benchmark_group(format!("x11/snapshot_{}itemsets", snap.num_itemsets()));
        group.sample_size(10);

        // Cold: rotate through distinct queries; after the first lap the
        // cache holds them all, so clear it each iteration to keep the
        // measurement honest.
        let queries = query_mix(&engine, 64);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("support", "cold"),
            &queries,
            |b, queries| {
                b.iter(|| {
                    engine.clear_cache();
                    for q in queries {
                        criterion::black_box(engine.handle(q));
                    }
                })
            },
        );

        // Warm: same queries, cache kept hot.
        for q in &queries {
            engine.handle(q);
        }
        group.bench_with_input(
            BenchmarkId::new("support", "warm"),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        criterion::black_box(engine.handle(q));
                    }
                })
            },
        );

        // Aggregate endpoints, warm.
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("top_k", "warm"), |b| {
            b.iter(|| criterion::black_box(engine.handle(&Request::TopK { k: 20, min_size: 1 })))
        });
        group.bench_function(BenchmarkId::new("recommend", "warm"), |b| {
            b.iter(|| {
                criterion::black_box(engine.handle(&Request::Recommend {
                    items: vec![1, 2],
                    k: 5,
                }))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
