//! Parallel top-down propagation.
//!
//! The canonical top-down pass ([`plt_core::topdown::all_subset_supports`])
//! is a level-synchronised dynamic program — each level's inherited
//! frequencies feed the next, which serialises the levels. The parallel
//! variant trades that inheritance away: every stored vector expands its
//! own subset lattice independently (the "naive" derivation of the X4
//! ablation), which makes the work embarrassingly parallel over vectors at
//! the cost of re-deriving subsets shared between transactions. On
//! many-core hosts the trade wins whenever the PLT holds many distinct
//! vectors of moderate length.

use rayon::prelude::*;

use plt_core::hash::FxHashMap;
use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;
use plt_core::ranking::RankPolicy;
use plt_core::topdown::{AllSubsetSupports, TopDownMiner};

use crate::construct::par_construct;

/// Computes the all-subsets table by parallel per-vector expansion.
/// Output is identical to [`plt_core::topdown::all_subset_supports`].
pub fn par_all_subset_supports(plt: &Plt) -> AllSubsetSupports {
    let vectors: Vec<(&PositionVector, Support)> = plt.iter().map(|(v, e)| (v, e.freq)).collect();
    let map = vectors
        .par_iter()
        .fold(
            FxHashMap::<PositionVector, Support>::default,
            |mut acc, &(v, freq)| {
                for sub in v.subset_vectors() {
                    *acc.entry(sub).or_insert(0) += freq;
                }
                acc
            },
        )
        .reduce(FxHashMap::default, |a, b| {
            if a.len() < b.len() {
                return reduce_into(b, a);
            }
            reduce_into(a, b)
        });
    AllSubsetSupports::from_map(map)
}

fn reduce_into(
    mut big: FxHashMap<PositionVector, Support>,
    small: FxHashMap<PositionVector, Support>,
) -> FxHashMap<PositionVector, Support> {
    for (k, v) in small {
        *big.entry(k).or_insert(0) += v;
    }
    big
}

/// The parallel top-down miner.
#[derive(Debug, Clone, Copy)]
pub struct ParallelTopDownMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
    /// Same lattice-blow-up guard as [`TopDownMiner`].
    pub max_transaction_len: usize,
}

impl Default for ParallelTopDownMiner {
    fn default() -> Self {
        let inner = TopDownMiner::default();
        ParallelTopDownMiner {
            rank_policy: inner.rank_policy,
            max_transaction_len: inner.max_transaction_len,
        }
    }
}

impl Miner for ParallelTopDownMiner {
    fn name(&self) -> &'static str {
        "plt-topdown-parallel"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        let plt = par_construct(
            transactions,
            min_support,
            plt_core::construct::ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        assert!(
            plt.max_len() <= self.max_transaction_len,
            "top-down mining would enumerate 2^{} subsets",
            plt.max_len()
        );
        let table = par_all_subset_supports(&plt);
        let mut result = MiningResult::new(min_support, plt.num_transactions());
        for (v, support) in table.iter() {
            if support >= min_support {
                let items = plt.ranking().items_for_ranks(&v.ranks());
                result.insert(Itemset::from_sorted(items), support);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::topdown::all_subset_supports;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn parallel_table_equals_sequential() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let seq = all_subset_supports(&plt);
        let par = par_all_subset_supports(&plt);
        assert_eq!(seq.len(), par.len());
        for (v, s) in seq.iter() {
            assert_eq!(par.support(v), s, "{v}");
        }
    }

    #[test]
    fn miner_matches_sequential_topdown() {
        let seq = TopDownMiner::default().mine(&table1(), 2);
        let par = ParallelTopDownMiner::default().mine(&table1(), 2);
        assert_eq!(par.sorted(), seq.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Parallel and sequential top-down agree on random databases.
        #[test]
        fn prop_parallel_matches_sequential(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let seq = TopDownMiner::default().mine(&db, min_support);
            let par = ParallelTopDownMiner::default().mine(&db, min_support);
            prop_assert_eq!(par.sorted(), seq.sorted());
        }
    }
}
