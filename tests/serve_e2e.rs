//! End-to-end exercise of the serving stack: mine a dataset, stand up a
//! TCP server on an ephemeral port, and drive it through the client —
//! cross-checking every wire answer against the miner's result, and the
//! ingest path against a re-mine of the grown window.

use plt::core::miner::Miner;
use plt::data::{BasketConfig, BasketGenerator};
use plt::serve::{
    bootstrap, serve, BuilderConfig, Client, ClientConfig, RebuildMode, Request, SampledRebuild,
    ServerConfig, ServerModel, SketchConfig,
};
use plt::ConditionalMiner;

/// Both serving models where the platform has them; every test in this
/// file runs against each — the thread model is the reactor's
/// differential oracle.
fn server_models() -> Vec<ServerModel> {
    if cfg!(target_os = "linux") {
        vec![ServerModel::Threads, ServerModel::Reactor]
    } else {
        vec![ServerModel::Threads]
    }
}

/// Cross-product of serving models and response-envelope versions: the
/// whole file runs once per cell, so a v1 client and a v2 client see
/// identical answers from every model.
fn cases() -> Vec<(ServerModel, u64)> {
    let mut v = Vec::new();
    for model in server_models() {
        for version in [1u64, 2] {
            v.push((model, version));
        }
    }
    v
}

/// Connect a client speaking the requested envelope version (v2 clients
/// negotiate via `hello` before the first request).
fn connect(addr: std::net::SocketAddr, version: u64) -> Client {
    Client::with_config(
        addr,
        ClientConfig {
            protocol_version: version,
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

/// Start a server over `warmup` and return (handle, builder).
fn start(
    warmup: &[Vec<u32>],
    min_support: u64,
    model: ServerModel,
) -> (plt::serve::ServerHandle, plt::serve::BuilderHandle) {
    let config = BuilderConfig {
        window_capacity: warmup.len() * 4,
        min_support,
        ..BuilderConfig::default()
    };
    let (engine, builder) = bootstrap(warmup, config).expect("bootstrap");
    let handle = serve(
        "127.0.0.1:0",
        engine,
        Some(builder.queue()),
        ServerConfig {
            server_model: model,
            acceptors: 2,
            reactors: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    (handle, builder)
}

#[test]
fn wire_answers_match_the_miner() {
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 400,
        ..Default::default()
    })
    .generate();
    let min_support = db.absolute_support(0.05);
    let truth = ConditionalMiner::default().mine(db.transactions(), min_support);
    assert!(!truth.is_empty(), "dataset must have frequent itemsets");

    for (model, version) in cases() {
        let (handle, builder) = start(db.transactions(), min_support, model);
        let mut client = connect(handle.addr(), version);

        // Every mined itemset's support is served exactly, from the index.
        for (itemset, support) in truth.iter() {
            let reply = client.support(itemset.items()).expect("support query");
            assert_eq!(reply.support, support, "{model:?}: support({itemset})");
            assert!(reply.frequent, "{model:?}: frequent({itemset})");
            assert_eq!(reply.source, "index", "{model:?}: source({itemset})");
        }

        // Top-k agrees with the miner's ranking by support.
        let top = client.top_k(10, 1).expect("top_k");
        assert!(!top.is_empty());
        assert!(
            top.windows(2).all(|w| w[0].1 >= w[1].1),
            "sorted by support"
        );
        for (items, support) in &top {
            assert_eq!(truth.support(items), Some(*support), "top_k {items:?}");
        }

        // Recommendations name items outside the basket and carry
        // confidences achievable from mined supports.
        let basket = top[0].0.clone();
        if let Ok(recs) = client.recommend(&basket, 5) {
            for (item, confidence) in recs {
                assert!(!basket.contains(&item));
                assert!((0.0..=1.0).contains(&confidence));
            }
        }

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn cache_hits_show_up_in_stats() {
    let warmup = vec![
        vec![1, 2, 3],
        vec![1, 2, 3],
        vec![1, 2],
        vec![2, 3],
        vec![1, 3],
    ];
    for (model, version) in cases() {
        let (handle, builder) = start(&warmup, 2, model);
        let mut client = connect(handle.addr(), version);

        // Same query three times: one miss, then hits.
        for _ in 0..3 {
            client.support(&[1, 2]).expect("support");
        }
        let stats = client.stats().expect("stats");
        let endpoints = stats
            .get("endpoints")
            .and_then(|v| v.as_arr())
            .expect("endpoints array");
        let support = endpoints
            .iter()
            .find(|e| e.get("endpoint").and_then(|v| v.as_str()) == Some("support"))
            .expect("support endpoint row");
        let hits = support.get("cache_hits").and_then(|v| v.as_u64()).unwrap();
        let misses = support
            .get("cache_misses")
            .and_then(|v| v.as_u64())
            .unwrap();
        assert_eq!(misses, 1, "{model:?}: first query misses");
        assert_eq!(hits, 2, "{model:?}: repeats hit the cache");
        assert!(
            support.get("p50_us").and_then(|v| v.as_u64()).is_some(),
            "latency quantiles populated"
        );

        // The reactor model reports its own gauges in `stats`.
        if model == ServerModel::Reactor {
            let reactor = stats.get("reactor").expect("reactor stats block");
            assert!(
                reactor.get("reactors").and_then(|v| v.as_u64()).unwrap() >= 1,
                "reactor threads registered"
            );
            assert!(
                reactor.get("accepted").and_then(|v| v.as_u64()).unwrap() >= 1,
                "accepted connections counted"
            );
            let pool = stats.get("reader_pool").expect("reader_pool stats");
            assert!(pool.get("active_pins").and_then(|v| v.as_u64()).is_some());
        }

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn ingest_republishes_and_answers_reflect_the_new_window() {
    let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
    for (model, version) in cases() {
        let (handle, builder) = start(&warmup, 2, model);
        let mut client = connect(handle.addr(), version);

        let g0 = client.ping().expect("ping");
        assert_eq!(g0, 1);
        // Item 3 is infrequent in the warmup (1 < min_support), so it holds
        // no rank in generation 1 and the service reports 0 for it.
        let before = client.support(&[1, 3]).unwrap();
        assert_eq!(before.support, 0);
        assert!(!before.frequent);

        // Stream two more {1,3} transactions and wait for the publish.
        let g1 = client
            .ingest(vec![vec![1, 3], vec![1, 3]], true)
            .expect("ingest")
            .expect("generation in wait mode");
        assert!(g1 > g0, "{model:?}");

        // The served answers now reflect the grown window...
        assert_eq!(client.support(&[1, 3]).unwrap().support, 3, "{model:?}");
        // ...and match an offline re-mine of the same transactions.
        let mut grown = warmup.clone();
        grown.push(vec![1, 3]);
        grown.push(vec![1, 3]);
        let truth = ConditionalMiner::default().mine(&grown, 2);
        for (itemset, support) in truth.iter() {
            let reply = client.support(itemset.items()).expect("support");
            assert_eq!(reply.support, support, "{model:?}: {itemset}");
        }

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let warmup: Vec<Vec<u32>> = (0..50).map(|i| vec![1, 2, 3 + (i % 3) as u32]).collect();
    for (model, version) in cases() {
        let (handle, builder) = start(&warmup, 2, model);
        let addr = handle.addr();

        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = connect(addr, version);
                    for _ in 0..25 {
                        let reply = client.support(&[1, 2]).expect("support");
                        assert_eq!(reply.support, 50);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }

        let mut client = connect(addr, version);
        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn query_endpoint_answers_over_the_wire_with_provenance() {
    // Large enough that the PLT holds many distinct vectors: the cost
    // model must prefer the index operators over the full scan.
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 400,
        ..Default::default()
    })
    .generate();
    let min_support = db.absolute_support(0.05);
    for (model, version) in cases() {
        let (handle, builder) = start(db.transactions(), min_support, model);
        let mut client = connect(handle.addr(), version);
        let top = client.top_k(1, 1).expect("top_k");
        let probe = top[0].0.clone();
        let probe_expr = probe
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ");

        // Point lookup: provenance names the index operator and the
        // answer matches the dedicated support endpoint exactly.
        let v = client
            .query(&format!("SUPPORT OF {{{probe_expr}}}"))
            .expect("query");
        assert_eq!(v.get("row_kind").and_then(|x| x.as_str()), Some("support"));
        assert_eq!(
            v.get("plan").and_then(|x| x.as_str()),
            Some("index_point"),
            "{model:?}"
        );
        assert_eq!(v.get("cache_hit").and_then(|x| x.as_bool()), Some(false));
        assert_eq!(v.get("generation").and_then(|x| x.as_u64()), Some(1));
        assert!(v.get("cost").and_then(|x| x.as_f64()).unwrap() >= 0.0);
        let rows = v.get("rows").and_then(|x| x.as_arr()).expect("rows");
        assert_eq!(rows.len(), 1);
        let support = rows[0].get("support").and_then(|x| x.as_u64()).unwrap();
        assert_eq!(support, client.support(&probe).unwrap().support);

        // Top-k rides the extension index and rows come back in
        // canonical support-descending order.
        let v = client.query("TOP 3").expect("query");
        assert_eq!(
            v.get("plan").and_then(|x| x.as_str()),
            Some("ext_traverse"),
            "{model:?}"
        );
        let rows = v.get("rows").and_then(|x| x.as_arr()).expect("rows");
        assert_eq!(rows.len(), 3);
        let sups: Vec<u64> = rows
            .iter()
            .map(|r| r.get("support").and_then(|x| x.as_u64()).unwrap())
            .collect();
        assert!(sups.windows(2).all(|w| w[0] >= w[1]), "{sups:?}");

        // Rules and on-demand conditional mining answer too.
        let v = client
            .query("RULES WHERE confidence >= 0.5 TOP 4")
            .expect("query");
        assert_eq!(v.get("row_kind").and_then(|x| x.as_str()), Some("rules"));
        assert_eq!(v.get("plan").and_then(|x| x.as_str()), Some("rule_scan"));
        let v = client
            .query(&format!("MINE COND {{{}}} TOP 2", probe[0]))
            .expect("query");
        assert_eq!(v.get("row_kind").and_then(|x| x.as_str()), Some("itemsets"));

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn query_plan_cache_hits_and_publish_invalidation_over_the_wire() {
    let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3], vec![2, 3]];
    for (model, version) in cases() {
        let (handle, builder) = start(&warmup, 2, model);
        let mut client = connect(handle.addr(), version);

        // First spelling plans fresh; a *different* spelling with the
        // same normal form must hit the plan cache (distinct response
        // cache keys, so the plan layer really answers both).
        let v1 = client
            .query("TOP 3 WHERE support >= 2 AND size >= 1")
            .expect("query");
        assert_eq!(v1.get("cache_hit").and_then(|x| x.as_bool()), Some(false));
        let v2 = client
            .query("top 3 WHERE size >= 1 and SUPPORT >= 2")
            .expect("query");
        assert_eq!(
            v2.get("cache_hit").and_then(|x| x.as_bool()),
            Some(true),
            "{model:?}: normalized spellings share one plan"
        );
        assert_eq!(
            v1.get("rows").map(|r| r.to_string()),
            v2.get("rows").map(|r| r.to_string()),
            "{model:?}: cached plan returns identical rows"
        );

        // Publishing a new generation invalidates the cached plan: the
        // same normalized query re-plans against the new snapshot.
        let g = client
            .ingest(vec![vec![1, 3], vec![1, 3]], true)
            .expect("ingest")
            .expect("generation");
        let v3 = client
            .query("TOP 3 WHERE support >= 2 AND size >= 1")
            .expect("query");
        assert_eq!(v3.get("generation").and_then(|x| x.as_u64()), Some(g));
        assert_eq!(
            v3.get("cache_hit").and_then(|x| x.as_bool()),
            Some(false),
            "{model:?}: publish invalidates cached plans"
        );

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn malformed_queries_are_typed_errors_and_leave_the_connection_usable() {
    for (model, version) in cases() {
        let (handle, builder) = start(&[vec![1, 2], vec![1, 2], vec![2, 3]], 2, model);
        let mut client = connect(handle.addr(), version);

        for bad in [
            "TOP",
            "SUPPORT OF {}",
            "RULES WHERE size >= 2",
            "MINE COND {1,1}",
            "gibberish",
        ] {
            let err = client.query(bad).unwrap_err();
            assert!(
                err.to_string().contains("query:"),
                "{model:?}: `{bad}` should be a typed query error, got {err}"
            );
        }
        // The connection survives every rejected expression.
        assert_eq!(client.ping().expect("connection still usable"), 1);
        let v = client.query("TOP 1").expect("good query still answers");
        assert_eq!(v.get("row_kind").and_then(|x| x.as_str()), Some("itemsets"));

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn approx_tier_serves_bounded_answers_and_sampled_rebuilds_stay_exact() {
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 400,
        ..Default::default()
    })
    .generate();
    let min_support = db.absolute_support(0.05);
    for (model, version) in cases() {
        let config = BuilderConfig {
            window_capacity: db.transactions().len() * 4,
            min_support,
            rebuild_mode: RebuildMode::Sampled(SampledRebuild::default()),
            sketch: Some(SketchConfig {
                epsilon: 0.05,
                delta: 0.01,
                ..SketchConfig::default()
            }),
            ..BuilderConfig::default()
        };
        let (engine, builder) = bootstrap(db.transactions(), config).expect("bootstrap");
        let handle = serve(
            "127.0.0.1:0",
            engine,
            Some(builder.queue()),
            ServerConfig {
                server_model: model,
                acceptors: 2,
                reactors: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let mut client = connect(handle.addr(), version);

        // Every APPROX answer honors its stated contract: when a sketch
        // answers, the estimate is within the advertised error bound of
        // the exact support; when the planner falls back, the answer is
        // exact and flagged as such.
        let top = client.top_k(3, 1).expect("top_k");
        for (items, exact) in &top {
            let expr = items
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let v = client
                .query(&format!("SUPPORT OF {{{expr}}} APPROX"))
                .expect("approx query");
            let approx = v
                .get("approx")
                .and_then(|x| x.as_bool())
                .expect("approx flag on every query response");
            let rows = v.get("rows").and_then(|x| x.as_arr()).expect("rows");
            let est = rows[0].get("support").and_then(|x| x.as_u64()).unwrap();
            if approx {
                let bound = v
                    .get("error_bound")
                    .and_then(|x| x.as_u64())
                    .expect("approx answers state their bound");
                assert!(
                    est.abs_diff(*exact) <= bound,
                    "{model:?} v{version}: |{est} - {exact}| > {bound} for {items:?}"
                );
            } else {
                assert_eq!(est, *exact, "{model:?} v{version}: exact fallback");
            }
        }

        // The default tier stays EXACT: no approx flag, answers match
        // the dedicated support endpoint.
        let expr = top[0]
            .0
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let v = client
            .query(&format!("SUPPORT OF {{{expr}}}"))
            .expect("exact query");
        assert_eq!(v.get("approx").and_then(|x| x.as_bool()), Some(false));
        let rows = v.get("rows").and_then(|x| x.as_arr()).expect("rows");
        assert_eq!(
            rows[0].get("support").and_then(|x| x.as_u64()),
            Some(top[0].1)
        );

        // An ingest triggers a sampled (Toivonen) rebuild; the published
        // answers still match an offline exact re-mine of the window.
        let extra = vec![db.transactions()[0].clone(), db.transactions()[1].clone()];
        client
            .ingest(extra.clone(), true)
            .expect("ingest")
            .expect("generation");
        let mut grown = db.transactions().to_vec();
        grown.extend(extra);
        let truth = ConditionalMiner::default().mine(&grown, min_support);
        for (itemset, support) in truth.iter().take(20) {
            let reply = client.support(itemset.items()).expect("support");
            assert_eq!(
                reply.support, support,
                "{model:?} v{version}: sampled rebuild must stay exact for {itemset}"
            );
        }

        // Stats surface the approximate tier: sketch gauges, approx
        // counters, and the sampled-rebuild block.
        let stats = client.stats().expect("stats");
        let sketch = stats.get("sketch").expect("sketch stats block");
        assert!(sketch.get("epsilon").and_then(|x| x.as_f64()).unwrap() > 0.0);
        assert!(sketch.get("memory_bytes").and_then(|x| x.as_u64()).unwrap() > 0);
        let approx_stats = stats
            .get("query")
            .and_then(|q| q.get("approx"))
            .expect("approx counters");
        assert!(
            approx_stats
                .get("requests")
                .and_then(|x| x.as_u64())
                .unwrap()
                >= top.len() as u64,
            "{model:?} v{version}: APPROX requests counted"
        );
        let sampled = stats
            .get("rebuild")
            .and_then(|r| r.get("sampled"))
            .expect("sampled rebuild stats");
        assert!(
            sampled.get("attempts").and_then(|x| x.as_u64()).unwrap() >= 1,
            "{model:?} v{version}: ingest drove a sampled rebuild"
        );

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn malformed_requests_get_protocol_errors() {
    for (model, version) in cases() {
        let (handle, builder) = start(&[vec![1, 2], vec![1, 2]], 2, model);
        let mut client = connect(handle.addr(), version);

        // Unknown op is a server-reported error, not a dropped connection;
        // the same connection keeps working afterwards.
        let err = client.request_raw(r#"{"op":"warp"}"#).unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");
        assert_eq!(client.ping().expect("connection still usable"), 1);

        // `Request` round-trips still work via the raw path.
        let v = client
            .request_raw(&Request::Support { items: vec![1] }.to_json().to_string())
            .expect("raw support");
        assert_eq!(v.get("support").and_then(|s| s.as_u64()), Some(2));

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}
