//! Partitioned parallel mining — the paper's §6 claim that PLT "provides
//! partition criteria that makes it easy to partition the mining process
//! into several separate tasks", demonstrated with a thread sweep.
//!
//! ```text
//! cargo run --release --example parallel_mining
//! ```

use std::time::Instant;

use plt::core::miner::Miner;
use plt::data::{QuestConfig, QuestGenerator};
use plt::parallel::{run_with_threads, ParallelPltMiner};
use plt::ConditionalMiner;

fn main() {
    let n = 20_000;
    let db = QuestGenerator::new(QuestConfig::t10i4(n))
        .generate()
        .into_transactions();
    let min_support = ((0.005 * n as f64).ceil() as u64).max(1);
    println!("workload: T10.I4.D{n}, min_sup = {min_support} (0.5%)");

    // Sequential reference.
    let start = Instant::now();
    let sequential = ConditionalMiner::default().mine(&db, min_support);
    let seq_time = start.elapsed();
    println!(
        "\nsequential conditional miner: {} itemsets in {:.1?} ",
        sequential.len(),
        seq_time
    );

    let max_threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4); // sweep past 1 even on small hosts, to show the machinery
    println!("\nthread sweep (parallel PLT miner):");
    let mut threads = 1;
    let mut baseline = None;
    while threads <= max_threads {
        let start = Instant::now();
        let result = run_with_threads(threads, || {
            ParallelPltMiner::default().mine(&db, min_support)
        });
        let elapsed = start.elapsed();
        assert_eq!(result.len(), sequential.len(), "parallel run must agree");
        let base = *baseline.get_or_insert(elapsed);
        println!(
            "  {threads:>2} threads: {:>10.1?}  speedup {:.2}x",
            elapsed,
            base.as_secs_f64() / elapsed.as_secs_f64()
        );
        threads *= 2;
    }
    println!(
        "\nresults identical across all runs: {} itemsets",
        sequential.len()
    );
}
