//! # plt-cli — `plt-mine`, the command-line front end
//!
//! Frequent-itemset mining over FIMI `.dat` files with every miner in the
//! workspace:
//!
//! ```text
//! plt-mine mine  --input db.dat --min-sup 0.01 [--algo conditional]
//!                [--closed | --maximal] [--limit N]
//! plt-mine rules --input db.dat --min-sup 0.01 --min-conf 0.6 [--top N]
//! plt-mine stats --input db.dat
//! plt-mine show  --input db.dat --min-sup 0.01      # PLT matrices + tree
//! plt-mine gen   --kind quest|dense|basket --transactions N --output db.dat
//! plt-mine serve --input db.dat --min-sup 0.01 [--addr 127.0.0.1:7878]
//! plt-mine query --addr 127.0.0.1:7878 --itemset "1 2" [--top N] [--stats]
//! ```
//!
//! `--min-sup` accepts a fraction in `(0,1)` or an absolute count
//! (`>= 1`). The library half is I/O-parameterised so the test suite can
//! drive every command without touching a real terminal.

pub mod args;
pub mod commands;

pub use args::{Algo, Command, GenKind, ParseError};

use std::io::Write;

/// Parses `argv` (without the program name) and runs the command, writing
/// human-readable output to `out`. This is `main` minus process concerns.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let command = args::parse(argv).map_err(|e| e.to_string())?;
    commands::execute(command, out).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn with_tmp_db(body: impl FnOnce(&str)) {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("plt-cli-test-{}-{id}.dat", std::process::id()));
        let db = "1 2 3\n1 2 3\n1 2 3 4\n1 2 4 5\n2 3 4\n3 4 6\n";
        std::fs::write(&path, db).unwrap();
        body(path.to_str().unwrap());
        std::fs::remove_file(&path).ok();
    }

    /// `Write` sink that a serving thread and the test can share.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_and_query_round_trip() {
        let models: &[&str] = if cfg!(target_os = "linux") {
            &["threads", "reactor"]
        } else {
            &["threads"]
        };
        for model in models {
            with_tmp_db(|path| {
                // Start `serve` on an ephemeral port in a thread; it
                // blocks until a client sends shutdown.
                let argv: Vec<String> = [
                    "serve",
                    "--input",
                    path,
                    "--min-sup",
                    "2",
                    "--addr",
                    "127.0.0.1:0",
                    "--server-model",
                    model,
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                let buf = SharedBuf::default();
                let server_buf = buf.clone();
                let server = std::thread::spawn(move || {
                    let mut out = server_buf;
                    run(&argv, &mut out)
                });

                // The banner line carries the bound address:
                // "serving <path> on 127.0.0.1:<port> (<model> model): ...".
                let mut addr = None;
                for _ in 0..1000 {
                    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
                    if let Some(rest) = text.split(" on ").nth(1) {
                        addr = rest
                            .split_whitespace()
                            .next()
                            .map(|a| a.trim_end_matches(':').to_string());
                        assert!(
                            rest.contains(&format!("({model} model)")),
                            "banner names the model: {text}"
                        );
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                let addr = addr.expect("server never printed its address");

                // Query it through the client subcommand.
                let out = run_to_string(&[
                    "query",
                    "--addr",
                    &addr,
                    "--itemset",
                    "1 2 3",
                    "--top",
                    "3",
                    "--stats",
                ])
                .unwrap();
                assert!(out.contains("{1,2,3}  support=3"), "{model}: {out}");
                assert!(out.contains("top 3 itemsets:"), "{model}: {out}");
                assert!(out.contains("\"ok\":true"), "{model}: {out}");

                let out = run_to_string(&["query", "--addr", &addr, "--shutdown"]).unwrap();
                assert!(out.contains("server stopping"), "{model}: {out}");
                server.join().unwrap().unwrap();
            });
        }
    }

    #[test]
    fn mine_prints_itemsets() {
        with_tmp_db(|path| {
            let out = run_to_string(&["mine", "--input", path, "--min-sup", "2"]).unwrap();
            assert!(out.contains("13 frequent itemsets"), "{out}");
            assert!(out.contains("{1,2,3}  support=3"), "{out}");
        });
    }

    #[test]
    fn mine_with_each_algorithm_agrees() {
        with_tmp_db(|path| {
            let algos = [
                "conditional",
                "topdown",
                "hybrid",
                "parallel",
                "apriori",
                "fp-growth",
                "eclat",
                "declat",
                "h-mine",
                "ais",
                "partition",
                "dic",
                "sampling",
            ];
            let reference = run_to_string(&["mine", "--input", path, "--min-sup", "2"]).unwrap();
            let reference: Vec<&str> = reference.lines().skip(1).collect();
            for algo in algos {
                let out =
                    run_to_string(&["mine", "--input", path, "--min-sup", "2", "--algo", algo])
                        .unwrap();
                let lines: Vec<&str> = out.lines().skip(1).collect();
                assert_eq!(lines, reference, "algo {algo}");
            }
        });
    }

    #[test]
    fn relative_and_absolute_support_agree() {
        with_tmp_db(|path| {
            // 6 transactions: ceil(0.333 · 6) = 2 == the absolute run.
            let abs = run_to_string(&["mine", "--input", path, "--min-sup", "2"]).unwrap();
            let rel = run_to_string(&["mine", "--input", path, "--min-sup", "0.333"]).unwrap();
            assert_eq!(abs, rel);
        });
    }

    #[test]
    fn closed_and_maximal_filters() {
        with_tmp_db(|path| {
            let all = run_to_string(&["mine", "--input", path, "--min-sup", "2"]).unwrap();
            let closed =
                run_to_string(&["mine", "--input", path, "--min-sup", "2", "--closed"]).unwrap();
            let maximal =
                run_to_string(&["mine", "--input", path, "--min-sup", "2", "--maximal"]).unwrap();
            let count = |s: &str| s.lines().count();
            assert!(count(&maximal) <= count(&closed));
            assert!(count(&closed) <= count(&all));
            assert!(maximal.contains("maximal"));
        });
    }

    #[test]
    fn rules_meet_confidence() {
        with_tmp_db(|path| {
            let out = run_to_string(&[
                "rules",
                "--input",
                path,
                "--min-sup",
                "2",
                "--min-conf",
                "0.9",
            ])
            .unwrap();
            assert!(out.contains("=>"), "{out}");
            for line in out.lines().filter(|l| l.contains("conf=")) {
                let conf: f64 = line
                    .split("conf=")
                    .nth(1)
                    .unwrap()
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .trim_end_matches([',', ')'])
                    .parse()
                    .unwrap();
                assert!(conf >= 0.9, "{line}");
            }
        });
    }

    #[test]
    fn stats_reports_shape() {
        with_tmp_db(|path| {
            let out = run_to_string(&["stats", "--input", path]).unwrap();
            assert!(out.contains("|D|=6"), "{out}");
            assert!(out.contains("density="));
        });
    }

    #[test]
    fn show_renders_structure() {
        with_tmp_db(|path| {
            let out = run_to_string(&["show", "--input", path, "--min-sup", "2"]).unwrap();
            assert!(out.contains("D_3:"), "{out}");
            assert!(out.contains("(null)"), "{out}");
            assert!(out.contains("compressed"), "{out}");
        });
    }

    #[test]
    fn gen_writes_a_minable_file() {
        let path = std::env::temp_dir().join(format!("plt-cli-gen-{}.dat", std::process::id()));
        let p = path.to_str().unwrap();
        run_to_string(&[
            "gen",
            "--kind",
            "basket",
            "--transactions",
            "200",
            "--output",
            p,
        ])
        .unwrap();
        let mined = run_to_string(&["mine", "--input", p, "--min-sup", "0.05"]).unwrap();
        assert!(mined.contains("frequent itemsets"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run_to_string(&["mine"]).is_err()); // missing --input
        assert!(run_to_string(&["bogus"]).is_err());
        assert!(run_to_string(&["mine", "--input", "/nonexistent", "--min-sup", "2"]).is_err());
        with_tmp_db(|path| {
            assert!(run_to_string(&["mine", "--input", path, "--min-sup", "0"]).is_err());
            assert!(
                run_to_string(&["mine", "--input", path, "--min-sup", "2", "--algo", "nope"])
                    .is_err()
            );
        });
    }

    #[test]
    fn index_mine_index_and_query_pipeline() {
        with_tmp_db(|path| {
            let idx = format!("{path}.pltc");
            let msg =
                run_to_string(&["index", "--input", path, "--min-sup", "2", "--output", &idx])
                    .unwrap();
            assert!(msg.contains("wrote"), "{msg}");

            // Mining the index equals mining the raw file.
            let from_raw = run_to_string(&["mine", "--input", path, "--min-sup", "2"]).unwrap();
            let from_idx = run_to_string(&["mine-index", "--index", &idx]).unwrap();
            let tail = |s: &str| s.lines().skip(1).map(str::to_owned).collect::<Vec<_>>();
            assert_eq!(tail(&from_raw), tail(&from_idx));

            // Top-down over the index agrees too.
            let td = run_to_string(&["mine-index", "--index", &idx, "--topdown"]).unwrap();
            assert_eq!(tail(&from_raw), tail(&td));

            // Point queries.
            let q = run_to_string(&[
                "query",
                "--index",
                &idx,
                "--itemset",
                "1 2 3",
                "--itemset",
                "6",
            ])
            .unwrap();
            assert!(q.contains("{1,2,3}  support=3"), "{q}");
            assert!(q.contains("{6}  support=0"), "{q}");
            std::fs::remove_file(&idx).ok();
        });
    }

    #[test]
    fn query_rejects_empty_itemset() {
        assert!(run_to_string(&["query", "--index", "x", "--itemset", " "]).is_err());
        assert!(run_to_string(&["query", "--index", "x"]).is_err());
    }

    #[test]
    fn limit_truncates_output() {
        with_tmp_db(|path| {
            let out = run_to_string(&["mine", "--input", path, "--min-sup", "1", "--limit", "3"])
                .unwrap();
            // header + 3 itemsets + truncation notice
            assert_eq!(out.lines().count(), 5, "{out}");
            assert!(out.contains("... ("));
        });
    }
}
