//! # plt-shard — sharded, incrementally updatable mining
//!
//! The paper's sum property (Lemma 4.1.1: the sum of a position vector is
//! the rank of its **last** item) partitions the frequent-itemset family
//! cleanly: every frequent itemset has a well-defined last (highest) rank,
//! and the itemsets whose last rank is `j` are mined entirely from item
//! `j`'s conditional database — the prefixes of the vectors that contain
//! rank `j`. Group contiguous rank ranges into **shards** and the full
//! answer becomes a disjoint union of per-shard fragments.
//!
//! That decomposition makes exact incremental mining cheap: a transaction
//! with projected ranks `R` can only change the support of itemsets whose
//! last rank is in `R` (an itemset is contained in the transaction only if
//! *all* its ranks — in particular its last — are in `R`). So a batch of
//! inserts/removals dirties exactly the shards its ranks fall into, and a
//! rebuild re-mines the dirty shards only — in parallel via rayon, with a
//! per-worker [`plt_core::ArenaPool`] — then merges fragments into a
//! snapshot. Clean fragments are reused byte-for-byte.
//!
//! The one global dependency is the item ranking. [`ShardedPipeline`]
//! maintains exact item counts across deltas and detects **drift**: when
//! the set of frequent items changes, ranks (and therefore shard
//! assignments and stored vectors) are no longer comparable, so the
//! pipeline re-ranks and marks every shard dirty — incremental mining
//! degrades to a full rebuild exactly when a full re-mine from scratch
//! would change the vocabulary, and matches it bit-for-bit either way.
//!
//! The crate also hosts [`MinerBuilder`], the single configuration path
//! (strategy, engine, rank policy, minimum support, shard count) through
//! which `plt-cli` and `plt-serve` construct every PLT miner — as a
//! [`plt_core::Mine`] trait object, a transaction-level
//! [`plt_core::Miner`], or a [`ShardedPipeline`].

pub mod builder;
pub mod pipeline;
mod project;

pub use builder::{MineStrategy, MinerBuilder};
pub use pipeline::{Delta, RebuildReport, ShardConfig, ShardedPipeline, DEFAULT_SHARD_COUNT};
