//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — small, fast, and far better distributed than the
/// workloads here need. Matches the role (not the bit stream) of
/// `rand::rngs::SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias — the workspace only ever asks for a deterministic seeded
/// generator, so the "standard" generator is the same engine.
pub type StdRng = SmallRng;
