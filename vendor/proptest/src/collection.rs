//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Collection-size specification: a count or a half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` holding `size` **distinct** elements.
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned at the largest size reached (the real crate rejects instead;
/// every use in this workspace has an ample domain).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 32 * (target + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
