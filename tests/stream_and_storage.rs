//! Cross-crate streaming + storage pipelines: sliding-window maintenance
//! against batch rebuilds, sketch guarantees against exact counts, and
//! the on-disk index round trip driving the query oracle.

use plt::core::miner::Miner;
use plt::core::ranking::RankPolicy;
use plt::core::SupportOracle;
use plt::data::{QuestConfig, QuestGenerator, ZipfConfig, ZipfGenerator};
use plt::stream::{LossyCounter, SlidingWindow};
use plt::ConditionalMiner;

#[test]
fn window_over_quest_stream_matches_batch_after_rerank() {
    let stream = QuestGenerator::new(QuestConfig::t5i2(900))
        .generate()
        .into_transactions();
    let cap = 300;
    let mut w = SlidingWindow::new(cap, 6, RankPolicy::Lexicographic, &stream[..cap]).unwrap();
    for t in &stream[cap..] {
        w.push(t.clone()).unwrap();
    }
    w.rerank().unwrap();
    let tail = &stream[stream.len() - cap..];
    let expect = ConditionalMiner::default().mine(tail, 6);
    assert_eq!(w.mine().sorted(), expect.sorted());
}

#[test]
fn sketch_bounds_hold_on_zipf_traffic() {
    let stream = ZipfGenerator::new(ZipfConfig {
        num_transactions: 4_000,
        ..Default::default()
    })
    .generate();
    let mut sketch = LossyCounter::new(0.001);
    let mut exact: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for t in stream.transactions() {
        sketch.observe_transaction(t);
        for &i in t {
            *exact.entry(i).or_insert(0) += 1;
        }
    }
    let n = sketch.observed() as f64;
    let bound = (0.001 * n).ceil() as u64;
    for (&item, &truth) in &exact {
        let est = sketch.estimate(item);
        assert!(est <= truth);
        assert!(truth.saturating_sub(est) <= bound, "item {item}");
    }
    // Query at 1%: every truly-1%-frequent item is reported.
    for (item, _) in sketch.frequent(0.01) {
        assert!(exact[&item] as f64 >= (0.01 - 0.001) * n);
    }
}

#[test]
fn pltc_file_drives_the_support_oracle() {
    let db = QuestGenerator::new(QuestConfig::t5i2(600))
        .generate()
        .into_transactions();
    let plt = plt::core::construct::construct(
        &db,
        6,
        plt::core::construct::ConstructOptions::conditional(),
    )
    .unwrap();

    // PLT → compressed → disk → back → oracle.
    let path = std::env::temp_dir().join(format!("plt-oracle-{}.pltc", std::process::id()));
    plt::compress::file::save(&path, &plt::compress::CompressedPlt::from_plt(&plt)).unwrap();
    let reloaded = plt::compress::file::load(&path).unwrap().to_plt();
    std::fs::remove_file(&path).ok();

    let oracle = SupportOracle::new(&reloaded);
    // Oracle answers over the reloaded structure equal linear scans over
    // the original for a spread of queries.
    let result = ConditionalMiner::default().mine(&db, 6);
    for (itemset, support) in result.iter().take(100) {
        assert_eq!(
            oracle.support(itemset.items(), &reloaded),
            support,
            "{itemset}"
        );
    }
}
