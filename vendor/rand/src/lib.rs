//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`Rng`], [`RngCore`], [`SeedableRng`] and
//! [`rngs::SmallRng`] (xoshiro256++ seeded through splitmix64). The
//! generated stream is deterministic per seed but **not** bit-compatible
//! with the real crate.

pub mod rngs;

pub use rngs::SmallRng;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from a process-unique (not cryptographic) value.
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a sub-range.
pub trait SampleUniform: Sized {
    /// A uniform draw from `[low, high)`. `low < high` is the caller's
    /// responsibility (checked by [`SampleRange`]).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as u128).wrapping_sub(low as u128);
                debug_assert!(span > 0);
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the synthetic generators can observe.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0);
                let r = rng.next_u64() as u128;
                (low as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}
uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + (high - low) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        low + (high - low) * f32::sample(rng)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! inclusive_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_half_open(rng, low, high + 1)
            }
        }
    )*};
}
inclusive_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s full domain (`f64`/`f32`: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0u32..5);
            assert!(v < 5);
            let w = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&w));
            let x = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        rng.gen_range(5usize..5);
    }
}
