//! # plt-simd — data-parallel kernels for the mining hot paths
//!
//! The arena engine (`plt-core::arena`) and the vertical baselines
//! (`plt-baselines::eclat`) spend their time in a handful of loop shapes:
//! the Lemma 4.1.1 prefix-sum scan that recovers ranks from position
//! deltas, gathered support accumulation over packed entry tables, and
//! TID-set intersection. This crate packages those shapes as kernels with
//! two interchangeable backends:
//!
//! * **scalar** — portable `u64`-word code, always compiled, written so
//!   the auto-vectorizer has straight-line loops to chew on. This path is
//!   the *differential oracle*: every SIMD result is property-tested
//!   against it (`tests/kernel_equivalence.rs` at the workspace root).
//! * **simd** — explicit AVX2 lanes behind the `simd` cargo feature,
//!   selected at runtime only when the CPU reports `avx2` support. The
//!   portable `std::simd` API is still nightly-only, so the stable
//!   `core::arch::x86_64` intrinsics render the same dispatch seam; when
//!   `std::simd` stabilises only the backend module changes.
//!
//! ## Backend selection
//!
//! Resolution order for every kernel call:
//!
//! 1. the **thread** override ([`set_thread_backend`]) — the parallel
//!    miner pins one choice per rayon worker;
//! 2. the **process** override ([`set_global_backend`]) — what
//!    `plt-mine --kernel simd|scalar` sets;
//! 3. **auto**: SIMD if compiled in *and* detected at runtime, scalar
//!    otherwise.
//!
//! Forcing [`Backend::Simd`] on a build or CPU without it silently falls
//! back to scalar — the force is a preference, never an unsound promise.
//!
//! ## Dispatch counters
//!
//! Every kernel call bumps a thread-local counter for the backend that
//! actually ran, and the bitset kernels additionally count intersections.
//! [`KernelStats::snapshot_thread`] + [`KernelStats::since`] bracket a
//! mining call so engines (`plt-core::MineStats`) can report
//! `simd_calls` / `scalar_calls` / `bitmap_intersections` through
//! plt-obs without any atomics on the hot path.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable word-at-a-time code; always available.
    Scalar,
    /// Explicit vector lanes; requires the `simd` feature and a CPU with
    /// AVX2. Falls back to scalar when either is missing.
    Simd,
}

impl Backend {
    /// Canonical name, as accepted by `--kernel` and emitted in metrics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }

    /// Parses a `--kernel` value; `None` for unknown names.
    pub fn from_name(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }
}

/// True when the vector backend is compiled into this build (the `simd`
/// feature on an x86_64 target).
pub const fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// True when the vector backend is compiled in *and* the running CPU
/// supports it. Detection runs once and is cached.
pub fn simd_available() -> bool {
    // 0 = unknown, 1 = no, 2 = yes.
    static DETECTED: AtomicU8 = AtomicU8::new(0);
    match DETECTED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let yes = detect_simd();
            DETECTED.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn detect_simd() -> bool {
    false
}

/// Process-wide backend override: 0 = auto, 1 = scalar, 2 = simd.
static GLOBAL_FORCE: AtomicU8 = AtomicU8::new(0);

/// Forces every thread without its own override onto `backend`
/// (`None` restores auto-detection). This is what `--kernel` sets.
pub fn set_global_backend(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Simd) => 2,
    };
    GLOBAL_FORCE.store(v, Ordering::Relaxed);
}

/// The current process-wide override, if any.
pub fn global_backend() -> Option<Backend> {
    match GLOBAL_FORCE.load(Ordering::Relaxed) {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Simd),
        _ => None,
    }
}

thread_local! {
    /// Per-thread override (parallel workers pin their choice here) and
    /// the per-thread dispatch counters.
    static THREAD_FORCE: Cell<u8> = const { Cell::new(0) };
    static SIMD_CALLS: Cell<u64> = const { Cell::new(0) };
    static SCALAR_CALLS: Cell<u64> = const { Cell::new(0) };
    static BITMAP_INTERSECTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Overrides the backend for the *calling thread* only (`None` clears the
/// override). The parallel miner calls this once per worker.
pub fn set_thread_backend(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Simd) => 2,
    };
    THREAD_FORCE.with(|c| c.set(v));
}

/// The backend the next kernel call on this thread will run: thread
/// override, then process override, then auto-detection — always
/// degraded to [`Backend::Scalar`] when SIMD is not actually runnable.
pub fn active_backend() -> Backend {
    let forced = THREAD_FORCE.with(Cell::get);
    let choice = match forced {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Simd),
        _ => global_backend(),
    };
    match choice {
        Some(Backend::Scalar) => Backend::Scalar,
        Some(Backend::Simd) | None => {
            if simd_available() {
                Backend::Simd
            } else {
                Backend::Scalar
            }
        }
    }
}

/// Thread-local dispatch counters: how many kernel calls ran on each
/// backend, and how many of them were bitset intersections. Snapshot
/// before and after a mining call and diff with [`KernelStats::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel calls that ran on the vector backend.
    pub simd_calls: u64,
    /// Kernel calls that ran on the scalar backend.
    pub scalar_calls: u64,
    /// Bitset AND/ANDNOT intersections (counted whichever backend ran).
    pub bitmap_intersections: u64,
}

impl KernelStats {
    /// The calling thread's cumulative counters.
    pub fn snapshot_thread() -> KernelStats {
        KernelStats {
            simd_calls: SIMD_CALLS.with(Cell::get),
            scalar_calls: SCALAR_CALLS.with(Cell::get),
            bitmap_intersections: BITMAP_INTERSECTIONS.with(Cell::get),
        }
    }

    /// Counter deltas since an earlier snapshot on the same thread.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            simd_calls: self.simd_calls - earlier.simd_calls,
            scalar_calls: self.scalar_calls - earlier.scalar_calls,
            bitmap_intersections: self.bitmap_intersections - earlier.bitmap_intersections,
        }
    }
}

#[inline]
fn note(backend: Backend) {
    match backend {
        Backend::Simd => SIMD_CALLS.with(|c| c.set(c.get() + 1)),
        Backend::Scalar => SCALAR_CALLS.with(|c| c.set(c.get() + 1)),
    }
}

#[inline]
fn note_intersection() {
    BITMAP_INTERSECTIONS.with(|c| c.set(c.get() + 1));
}

// ---------------------------------------------------------------------------
// Dispatch layer: one public function per kernel, routing to the active
// backend and bumping the dispatch counters.
// ---------------------------------------------------------------------------

/// Inclusive prefix sums of `deltas` into `out` (cleared first) — the
/// Lemma 4.1.1 rank recovery: `out[i] = deltas[0] + … + deltas[i]`.
#[inline]
pub fn prefix_sum_into(deltas: &[u32], out: &mut Vec<u32>) {
    let backend = active_backend();
    note(backend);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: `active_backend` only returns Simd when AVX2 was detected.
        Backend::Simd => unsafe { avx2::prefix_sum_into(deltas, out) },
        _ => scalar::prefix_sum_into(deltas, out),
    }
}

/// Position deltas of the strictly increasing `ranks` into `out`
/// (cleared first) — the Definition 4.1.2 encode, inverse of
/// [`prefix_sum_into`]: `out[0] = ranks[0]`, `out[i] = ranks[i] − ranks[i−1]`.
#[inline]
pub fn delta_encode_into(ranks: &[u32], out: &mut Vec<u32>) {
    let backend = active_backend();
    note(backend);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: gated on runtime AVX2 detection.
        Backend::Simd => unsafe { avx2::delta_encode_into(ranks, out) },
        _ => scalar::delta_encode_into(ranks, out),
    }
}

/// Gathered sum `Σ values[ids[k]]` — the branchless support accumulation
/// over a sum bucket's packed entry ids.
///
/// # Panics
/// When any id is out of bounds for `values`.
#[inline]
pub fn sum_gather(values: &[u64], ids: &[u32]) -> u64 {
    let backend = active_backend();
    note(backend);
    check_ids(values.len(), ids);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; ids bounds-checked above.
        Backend::Simd => unsafe { avx2::sum_gather(values, ids) },
        _ => scalar::sum_gather(values, ids),
    }
}

/// How many of the gathered `values[ids[k]]` are `>= min` — the
/// all-locally-frequent test of `Conditional_Construct` scan 2
/// (`count_ge(counts, touched, min) == touched.len()`).
///
/// # Panics
/// When any id is out of bounds for `values`.
#[inline]
pub fn count_ge(values: &[u64], ids: &[u32], min: u64) -> usize {
    let backend = active_backend();
    note(backend);
    check_ids(values.len(), ids);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; ids bounds-checked above.
        Backend::Simd => unsafe { avx2::count_ge(values, ids, min) },
        _ => scalar::count_ge(values, ids, min),
    }
}

/// Appends to `out` (cleared first) every `r` in `ranks` with
/// `values[r] >= min`, preserving order — the locally-frequent filter of
/// scan 2.
///
/// # Panics
/// When any rank is out of bounds for `values`.
#[inline]
pub fn filter_ge_into(values: &[u64], ranks: &[u32], min: u64, out: &mut Vec<u32>) {
    let backend = active_backend();
    note(backend);
    check_ids(values.len(), ranks);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; ranks bounds-checked above.
        Backend::Simd => unsafe { avx2::filter_ge_into(values, ranks, min, out) },
        _ => scalar::filter_ge_into(values, ranks, min, out),
    }
}

/// Total set bits across `words`.
#[inline]
pub fn popcount(words: &[u64]) -> u64 {
    let backend = active_backend();
    note(backend);
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected.
        Backend::Simd => unsafe { avx2::popcount(words) },
        _ => scalar::popcount(words),
    }
}

/// Popcount of `a AND b` without materialising the intersection — the
/// support-only bitset probe.
///
/// # Panics
/// When the word slices differ in length.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "bitset word counts must match");
    let backend = active_backend();
    note(backend);
    note_intersection();
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; lengths checked above.
        Backend::Simd => unsafe { avx2::and_popcount(a, b) },
        _ => scalar::and_popcount(a, b),
    }
}

/// Writes `a AND b` into `out` (cleared first) and returns its popcount —
/// the Eclat bitset intersection.
///
/// # Panics
/// When the word slices differ in length.
#[inline]
pub fn and_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    assert_eq!(a.len(), b.len(), "bitset word counts must match");
    let backend = active_backend();
    note(backend);
    note_intersection();
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; lengths checked above.
        Backend::Simd => unsafe { avx2::and_into(a, b, out) },
        _ => scalar::and_into(a, b, out),
    }
}

/// Folds `b` into `acc` in place (`acc &= b`) and returns the resulting
/// popcount — the multi-way intersection step where the accumulator row
/// is reused across items.
///
/// # Panics
/// When the word slices differ in length.
#[inline]
pub fn and_assign_popcount(acc: &mut [u64], b: &[u64]) -> u64 {
    assert_eq!(acc.len(), b.len(), "bitset word counts must match");
    let backend = active_backend();
    note(backend);
    note_intersection();
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; lengths checked above.
        Backend::Simd => unsafe { avx2::and_assign_popcount(acc, b) },
        _ => scalar::and_assign_popcount(acc, b),
    }
}

/// Writes `a AND NOT b` into `out` (cleared first) and returns its
/// popcount — the dEclat diffset primitive on bitsets.
///
/// # Panics
/// When the word slices differ in length.
#[inline]
pub fn andnot_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
    assert_eq!(a.len(), b.len(), "bitset word counts must match");
    let backend = active_backend();
    note(backend);
    note_intersection();
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // Safety: AVX2 detected; lengths checked above.
        Backend::Simd => unsafe { avx2::andnot_into(a, b, out) },
        _ => scalar::andnot_into(a, b, out),
    }
}

/// Bounds check shared by the gather kernels: one branch-free max scan,
/// far cheaper than per-lane checked indexing and sound for the SIMD
/// gathers.
#[inline]
fn check_ids(len: usize, ids: &[u32]) {
    let max = ids.iter().copied().max();
    if let Some(max) = max {
        assert!(
            (max as usize) < len,
            "kernel id {max} out of bounds for table of {len}"
        );
    }
}

// ---------------------------------------------------------------------------
// Scalar backend — the differential oracle. Plain loops over words,
// shaped so LLVM's auto-vectorizer can widen the ones that are widenable
// (everything except the inherently serial prefix sum).
// ---------------------------------------------------------------------------

/// The always-compiled portable backend. Public so the differential
/// suites can call it directly, bypassing dispatch.
pub mod scalar {
    /// Inclusive prefix sums (serial dependency chain; kept simple).
    pub fn prefix_sum_into(deltas: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(deltas.len());
        let mut acc = 0u32;
        for &d in deltas {
            acc = acc.wrapping_add(d);
            out.push(acc);
        }
    }

    /// Position deltas of a rank sequence (`out[i] = ranks[i] − ranks[i−1]`).
    pub fn delta_encode_into(ranks: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(ranks.len());
        let mut prev = 0u32;
        for &r in ranks {
            out.push(r.wrapping_sub(prev));
            prev = r;
        }
    }

    /// Gathered sum over `ids`.
    pub fn sum_gather(values: &[u64], ids: &[u32]) -> u64 {
        let mut acc = 0u64;
        for &id in ids {
            acc = acc.wrapping_add(values[id as usize]);
        }
        acc
    }

    /// Gathered count of entries `>= min` (branchless accumulate).
    pub fn count_ge(values: &[u64], ids: &[u32], min: u64) -> usize {
        let mut n = 0usize;
        for &id in ids {
            n += usize::from(values[id as usize] >= min);
        }
        n
    }

    /// Order-preserving filter of ranks whose gathered value is `>= min`.
    pub fn filter_ge_into(values: &[u64], ranks: &[u32], min: u64, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(ranks.len());
        for &r in ranks {
            if values[r as usize] >= min {
                out.push(r);
            }
        }
    }

    /// Total set bits.
    pub fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Popcount of the intersection, no materialisation.
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum()
    }

    /// Materialised intersection + popcount.
    pub fn and_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
        out.clear();
        out.reserve(a.len());
        let mut ones = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            let w = x & y;
            ones += w.count_ones() as u64;
            out.push(w);
        }
        ones
    }

    /// In-place intersection (`acc &= b`) + popcount.
    pub fn and_assign_popcount(acc: &mut [u64], b: &[u64]) -> u64 {
        let mut ones = 0u64;
        for (x, &y) in acc.iter_mut().zip(b) {
            *x &= y;
            ones += x.count_ones() as u64;
        }
        ones
    }

    /// Materialised difference (`a AND NOT b`) + popcount.
    pub fn andnot_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
        out.clear();
        out.reserve(a.len());
        let mut ones = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            let w = x & !y;
            ones += w.count_ones() as u64;
            out.push(w);
        }
        ones
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend. Every function is `#[target_feature(enable = "avx2,popcnt")]`
// and must only be reached through dispatch after runtime detection.
// ---------------------------------------------------------------------------

/// Explicit-lane backend: AVX2 + POPCNT. Only compiled under the `simd`
/// feature on x86_64; only *called* after [`simd_available`] says yes.
/// Public so the differential suites can pit it against [`scalar`]
/// directly.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod avx2 {
    use core::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2 at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn prefix_sum_into(deltas: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(deltas.len());
        let dst = out.as_mut_ptr();
        let mut written = 0usize;
        // 4-lane inclusive scan with a carried broadcast: two shift-adds
        // build the scan inside the register, the carry folds the running
        // total in, and lane 3 becomes the next carry.
        let mut carry = _mm_setzero_si128();
        let chunks = deltas.chunks_exact(4);
        let rem = chunks.remainder();
        for chunk in chunks {
            let mut x = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
            x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
            x = _mm_add_epi32(x, carry);
            _mm_storeu_si128(dst.add(written) as *mut __m128i, x);
            carry = _mm_shuffle_epi32(x, 0b11_11_11_11);
            written += 4;
        }
        let mut acc = _mm_cvtsi128_si32(carry) as u32;
        for &d in rem {
            acc = acc.wrapping_add(d);
            *dst.add(written) = acc;
            written += 1;
        }
        out.set_len(written);
    }

    /// # Safety
    /// Requires AVX2 at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn delta_encode_into(ranks: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(ranks.len());
        if ranks.is_empty() {
            return;
        }
        let dst = out.as_mut_ptr();
        *dst = ranks[0];
        // out[i] = ranks[i] − ranks[i−1]: two unaligned loads one lane
        // apart, full-width subtract.
        let mut i = 1usize;
        while i + 8 <= ranks.len() {
            let cur = _mm256_loadu_si256(ranks.as_ptr().add(i) as *const __m256i);
            let prev = _mm256_loadu_si256(ranks.as_ptr().add(i - 1) as *const __m256i);
            let d = _mm256_sub_epi32(cur, prev);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, d);
            i += 8;
        }
        while i < ranks.len() {
            *dst.add(i) = ranks[i].wrapping_sub(ranks[i - 1]);
            i += 1;
        }
        out.set_len(ranks.len());
    }

    /// # Safety
    /// Requires AVX2 at runtime; every id must be in bounds for `values`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn sum_gather(values: &[u64], ids: &[u32]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = ids.chunks_exact(4);
        let rem = chunks.remainder();
        for chunk in chunks {
            let idx = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            let v = _mm256_i32gather_epi64(values.as_ptr() as *const i64, idx, 8);
            acc = _mm256_add_epi64(acc, v);
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total = lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3]);
        for &id in rem {
            total = total.wrapping_add(*values.get_unchecked(id as usize));
        }
        total
    }

    /// Unsigned 64-bit `x >= min` mask per lane (bias to signed compare).
    #[inline]
    unsafe fn ge_mask(x: __m256i, biased_min: __m256i, bias: __m256i) -> __m256i {
        // unsigned x >= min  ⇔  ¬(biased_min > biased_x), computed as
        // (biased_x > biased_min) OR (x == min-as-loaded handled by eq).
        let bx = _mm256_xor_si256(x, bias);
        let gt = _mm256_cmpgt_epi64(bx, biased_min);
        let eq = _mm256_cmpeq_epi64(bx, biased_min);
        _mm256_or_si256(gt, eq)
    }

    /// # Safety
    /// Requires AVX2 at runtime; every id must be in bounds for `values`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn count_ge(values: &[u64], ids: &[u32], min: u64) -> usize {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let biased_min = _mm256_xor_si256(_mm256_set1_epi64x(min as i64), bias);
        let mut n = 0usize;
        let chunks = ids.chunks_exact(4);
        let rem = chunks.remainder();
        for chunk in chunks {
            let idx = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            let v = _mm256_i32gather_epi64(values.as_ptr() as *const i64, idx, 8);
            let m = ge_mask(v, biased_min, bias);
            n += (_mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32).count_ones() as usize;
        }
        for &id in rem {
            n += usize::from(*values.get_unchecked(id as usize) >= min);
        }
        n
    }

    /// # Safety
    /// Requires AVX2 at runtime; every rank must be in bounds for `values`.
    ///
    /// Deliberately gather-free: the compress step is serial either way,
    /// and X14 measured the `_mm256_i32gather_epi64` variant at 0.7–1.0×
    /// of scalar on AVX2 Xeons — the gather never paid for itself. The
    /// vector backend keeps only what vectorization can't lose: unchecked
    /// indexing and a branchless push inside the `target_feature` scope.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn filter_ge_into(values: &[u64], ranks: &[u32], min: u64, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(ranks.len());
        let base = out.as_mut_ptr();
        let mut n = 0usize;
        for &r in ranks {
            *base.add(n) = r;
            n += usize::from(*values.get_unchecked(r as usize) >= min);
        }
        out.set_len(n);
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn popcount(words: &[u64]) -> u64 {
        // `count_ones` lowers to the POPCNT instruction inside this
        // target_feature scope; four-word strides keep the loads wide.
        let mut total = 0u64;
        let chunks = words.chunks_exact(4);
        let rem = chunks.remainder();
        for c in chunks {
            total += c[0].count_ones() as u64
                + c[1].count_ones() as u64
                + c[2].count_ones() as u64
                + c[3].count_ones() as u64;
        }
        for &w in rem {
            total += w.count_ones() as u64;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime; `a.len() == b.len()`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len();
        let mut total = 0u64;
        let mut i = 0usize;
        let mut lanes = [0u64; 4];
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let w = _mm256_and_si256(x, y);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, w);
            total += lanes[0].count_ones() as u64
                + lanes[1].count_ones() as u64
                + lanes[2].count_ones() as u64
                + lanes[3].count_ones() as u64;
            i += 4;
        }
        while i < n {
            total += (a[i] & b[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime; `a.len() == b.len()`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
        let n = a.len();
        out.clear();
        out.reserve(n);
        let dst = out.as_mut_ptr();
        let mut total = 0u64;
        let mut i = 0usize;
        let mut lanes = [0u64; 4];
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let w = _mm256_and_si256(x, y);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, w);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, w);
            total += lanes[0].count_ones() as u64
                + lanes[1].count_ones() as u64
                + lanes[2].count_ones() as u64
                + lanes[3].count_ones() as u64;
            i += 4;
        }
        while i < n {
            let w = a[i] & b[i];
            total += w.count_ones() as u64;
            *dst.add(i) = w;
            i += 1;
        }
        out.set_len(n);
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime; `acc.len() == b.len()`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_assign_popcount(acc: &mut [u64], b: &[u64]) -> u64 {
        let n = acc.len();
        let mut total = 0u64;
        let mut i = 0usize;
        let mut lanes = [0u64; 4];
        while i + 4 <= n {
            let x = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let w = _mm256_and_si256(x, y);
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, w);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, w);
            total += lanes[0].count_ones() as u64
                + lanes[1].count_ones() as u64
                + lanes[2].count_ones() as u64
                + lanes[3].count_ones() as u64;
            i += 4;
        }
        while i < n {
            acc[i] &= b[i];
            total += acc[i].count_ones() as u64;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime; `a.len() == b.len()`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn andnot_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u64 {
        let n = a.len();
        out.clear();
        out.reserve(n);
        let dst = out.as_mut_ptr();
        let mut total = 0u64;
        let mut i = 0usize;
        let mut lanes = [0u64; 4];
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            // `_mm256_andnot_si256(y, x)` computes `(NOT y) AND x`.
            let w = _mm256_andnot_si256(y, x);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, w);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, w);
            total += lanes[0].count_ones() as u64
                + lanes[1].count_ones() as u64
                + lanes[2].count_ones() as u64
                + lanes[3].count_ones() as u64;
            i += 4;
        }
        while i < n {
            let w = a[i] & !b[i];
            total += w.count_ones() as u64;
            *dst.add(i) = w;
            i += 1;
        }
        out.set_len(n);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn backend_resolution_order() {
        set_global_backend(None);
        set_thread_backend(None);
        let auto = active_backend();
        assert_eq!(
            auto,
            if simd_available() {
                Backend::Simd
            } else {
                Backend::Scalar
            }
        );
        set_global_backend(Some(Backend::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        // The thread override wins over the process override.
        set_thread_backend(Some(Backend::Simd));
        assert_eq!(
            active_backend(),
            if simd_available() {
                Backend::Simd
            } else {
                Backend::Scalar
            }
        );
        set_thread_backend(None);
        set_global_backend(None);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Simd] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("turbo"), None);
    }

    #[test]
    fn stats_bracket_kernel_calls() {
        set_thread_backend(Some(Backend::Scalar));
        let before = KernelStats::snapshot_thread();
        let mut out = Vec::new();
        prefix_sum_into(&[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 3, 6]);
        let _ = and_popcount(&[u64::MAX], &[0b1011]);
        let delta = KernelStats::snapshot_thread().since(&before);
        assert_eq!(delta.scalar_calls, 2);
        assert_eq!(delta.simd_calls, 0);
        assert_eq!(delta.bitmap_intersections, 1);
        set_thread_backend(None);
    }

    #[test]
    fn scalar_kernels_basic() {
        let mut out = Vec::new();
        scalar::prefix_sum_into(&[], &mut out);
        assert!(out.is_empty());
        scalar::prefix_sum_into(&[5], &mut out);
        assert_eq!(out, vec![5]);
        scalar::delta_encode_into(&[1, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(scalar::sum_gather(&[10, 20, 30], &[2, 0, 2]), 70);
        assert_eq!(scalar::count_ge(&[1, 5, 3], &[0, 1, 2], 3), 2);
        let mut kept = Vec::new();
        scalar::filter_ge_into(&[1, 5, 3], &[0, 1, 2], 3, &mut kept);
        assert_eq!(kept, vec![1, 2]);
        assert_eq!(scalar::popcount(&[0b101, 0]), 2);
        assert_eq!(scalar::and_popcount(&[0b110], &[0b011]), 1);
        let mut w = Vec::new();
        assert_eq!(scalar::and_into(&[0b110], &[0b011], &mut w), 1);
        assert_eq!(w, vec![0b010]);
        assert_eq!(scalar::andnot_into(&[0b110], &[0b011], &mut w), 1);
        assert_eq!(w, vec![0b100]);
    }

    #[test]
    fn dispatch_matches_scalar_whatever_backend() {
        let values: Vec<u64> = (0..100).map(|i| (i * 7) % 13).collect();
        let ids: Vec<u32> = (0..100).rev().collect();
        assert_eq!(sum_gather(&values, &ids), scalar::sum_gather(&values, &ids));
        assert_eq!(
            count_ge(&values, &ids, 6),
            scalar::count_ge(&values, &ids, 6)
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_out_of_bounds_ids() {
        let _ = sum_gather(&[1, 2], &[5]);
    }

    #[test]
    #[should_panic(expected = "word counts")]
    fn and_rejects_mismatched_lengths() {
        let _ = and_popcount(&[1, 2], &[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Dispatch output equals the scalar oracle for every kernel, on
        /// whatever backend this build and CPU resolve to.
        #[test]
        fn prop_dispatch_equals_scalar(
            deltas in proptest::collection::vec(1u32..1000, 0..64),
            words_a in proptest::collection::vec(proptest::any::<u64>(), 0..40),
            min in 0u64..2000,
        ) {
            let mut got = Vec::new();
            let mut want = Vec::new();
            prefix_sum_into(&deltas, &mut got);
            scalar::prefix_sum_into(&deltas, &mut want);
            prop_assert_eq!(&got, &want);

            // The prefix sums are strictly increasing, so they round-trip
            // through the encoder.
            delta_encode_into(&want.clone(), &mut got);
            prop_assert_eq!(&got, &deltas);

            let values: Vec<u64> = deltas.iter().map(|&d| d as u64).collect();
            let ids: Vec<u32> = (0..values.len() as u32).collect();
            prop_assert_eq!(sum_gather(&values, &ids), scalar::sum_gather(&values, &ids));
            prop_assert_eq!(
                count_ge(&values, &ids, min),
                scalar::count_ge(&values, &ids, min)
            );
            let mut kept_d = Vec::new();
            let mut kept_s = Vec::new();
            filter_ge_into(&values, &ids, min, &mut kept_d);
            scalar::filter_ge_into(&values, &ids, min, &mut kept_s);
            prop_assert_eq!(kept_d, kept_s);

            let words_b: Vec<u64> = words_a.iter().map(|w| w.rotate_left(17)).collect();
            prop_assert_eq!(popcount(&words_a), scalar::popcount(&words_a));
            prop_assert_eq!(
                and_popcount(&words_a, &words_b),
                scalar::and_popcount(&words_a, &words_b)
            );
            let mut out_d = Vec::new();
            let mut out_s = Vec::new();
            let pd = and_into(&words_a, &words_b, &mut out_d);
            let ps = scalar::and_into(&words_a, &words_b, &mut out_s);
            prop_assert_eq!(pd, ps);
            prop_assert_eq!(&out_d, &out_s);
            let pd = andnot_into(&words_a, &words_b, &mut out_d);
            let ps = scalar::andnot_into(&words_a, &words_b, &mut out_s);
            prop_assert_eq!(pd, ps);
            prop_assert_eq!(&out_d, &out_s);
            let mut acc_d = words_a.clone();
            let mut acc_s = words_a.clone();
            let pd = and_assign_popcount(&mut acc_d, &words_b);
            let ps = scalar::and_assign_popcount(&mut acc_s, &words_b);
            prop_assert_eq!(pd, ps);
            prop_assert_eq!(acc_d, acc_s);
        }
    }
}
