//! FP-growth (Han, Pei & Yin, SIGMOD'00) — "Mining Frequent Patterns
//! without Candidate Generation", the paper's reference \[3\] and the
//! algorithm whose conditional-structure idea Algorithm 3 adapts to
//! position vectors.
//!
//! Two scans build the [`FpTree`]; mining then proceeds per item from the
//! least frequent up: gather the item's **conditional pattern base** by
//! walking its node links and prefix paths, build the conditional FP-tree
//! from the base (re-filtered against the minimum support), and recurse.
//! A conditional tree that is a single path short-circuits into direct
//! enumeration of its item combinations.

mod tree;

pub use tree::{FpTree, Header, NIL, NIL_ITEM};

use plt_core::hash::FxHashMap;
use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};

/// The FP-growth miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpGrowthMiner;

/// Builds the (initial) FP-tree for a database at a minimum support,
/// returning the tree and the frequency-ordered item table. Exposed for
/// the construction-cost and structure-size experiments (X6/X8).
pub fn build_fp_tree(transactions: &[Vec<Item>], min_support: Support) -> (FpTree, Vec<Item>) {
    let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
    for t in transactions {
        for &item in t {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<(Item, Support)> = counts
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .collect();
    frequent.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let order_to_item: Vec<Item> = frequent.iter().map(|&(i, _)| i).collect();
    let item_to_order: FxHashMap<Item, u32> = order_to_item
        .iter()
        .enumerate()
        .map(|(o, &i)| (i, o as u32))
        .collect();
    let mut fp = FpTree::new(order_to_item.len());
    let mut path: Vec<u32> = Vec::new();
    for t in transactions {
        path.clear();
        path.extend(t.iter().filter_map(|i| item_to_order.get(i).copied()));
        path.sort_unstable();
        if !path.is_empty() {
            fp.insert(&path, 1);
        }
    }
    (fp, order_to_item)
}

impl Miner for FpGrowthMiner {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        // Scan 1 (frequency order) + scan 2 (tree build).
        let (fp, order_to_item) = build_fp_tree(transactions, min_support);
        if order_to_item.is_empty() {
            return result;
        }
        let mut suffix: Vec<u32> = Vec::new();
        fp_growth(&fp, min_support, &order_to_item, &mut suffix, &mut result);
        result
    }
}

/// Emits `suffix ∪ extra` (order indices) with `support`.
fn emit(
    order_to_item: &[Item],
    suffix: &[u32],
    extra: &[u32],
    support: Support,
    result: &mut MiningResult,
) {
    let items: Vec<Item> = suffix
        .iter()
        .chain(extra)
        .map(|&o| order_to_item[o as usize])
        .collect();
    result.insert(Itemset::new(items), support);
}

/// The recursive FP-growth procedure.
fn fp_growth(
    tree: &FpTree,
    min_support: Support,
    order_to_item: &[Item],
    suffix: &mut Vec<u32>,
    result: &mut MiningResult,
) {
    // Single-path shortcut: every combination of the path's nodes is
    // frequent with the count of its deepest node.
    if let Some(path) = tree.single_path() {
        if path.is_empty() {
            return;
        }
        enumerate_path_combinations(&path, min_support, order_to_item, suffix, result);
        return;
    }

    // General case: process items from least frequent (highest order
    // index) upward.
    for item in (0..tree.num_items() as u32).rev() {
        let header = tree.header(item);
        if header.count < min_support {
            continue;
        }
        suffix.push(item);
        emit(order_to_item, suffix, &[], header.count, result);

        // Conditional pattern base: prefix path of every node in the
        // item's chain, weighted by the node's count.
        let mut base: Vec<(Vec<u32>, Support)> = Vec::new();
        let mut local: FxHashMap<u32, Support> = FxHashMap::default();
        for (node, count) in tree.chain(item) {
            let mut p = tree.prefix_path(node);
            p.pop(); // drop `item` itself
            if !p.is_empty() {
                for &x in &p {
                    *local.entry(x).or_insert(0) += count;
                }
                base.push((p, count));
            }
        }

        // Conditional FP-tree: keep locally frequent items only. Order
        // indices are global, so paths stay strictly increasing after
        // filtering.
        if !base.is_empty() {
            let mut cond = FpTree::new(tree.num_items());
            let mut any = false;
            let mut filtered: Vec<u32> = Vec::new();
            for (p, count) in &base {
                filtered.clear();
                filtered.extend(p.iter().copied().filter(|x| local[x] >= min_support));
                if !filtered.is_empty() {
                    cond.insert(&filtered, *count);
                    any = true;
                }
            }
            if any {
                fp_growth(&cond, min_support, order_to_item, suffix, result);
            }
        }
        suffix.pop();
    }
}

/// Single-path enumeration: all non-empty combinations of `path` items,
/// each supported by the count of its deepest (last) selected node.
fn enumerate_path_combinations(
    path: &[(u32, Support)],
    min_support: Support,
    order_to_item: &[Item],
    suffix: &[u32],
    result: &mut MiningResult,
) {
    // Counts along a single path are non-increasing, so the deepest node
    // determines the combination's support. Path lengths are bounded by
    // transaction length; enumeration size is the output size.
    assert!(path.len() < 64);
    let mut combo: Vec<u32> = Vec::with_capacity(path.len());
    for mask in 1u64..(1u64 << path.len()) {
        combo.clear();
        let mut support = Support::MAX;
        for (i, &(item, count)) in path.iter().enumerate() {
            if mask & (1 << i) != 0 {
                combo.push(item);
                support = count; // deepest selected so far
            }
        }
        if support >= min_support {
            emit(order_to_item, suffix, &combo, support, result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = FpGrowthMiner.mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn single_path_database() {
        // All transactions identical → the tree is one path and the
        // shortcut fires; every subset has support 4.
        let db = vec![vec![1, 2, 3]; 4];
        let r = FpGrowthMiner.mine(&db, 2);
        assert_eq!(r.len(), 7);
        assert_eq!(r.support(&[1, 2, 3]), Some(4));
        assert_eq!(r.support(&[2]), Some(4));
    }

    #[test]
    fn nested_single_path_with_decreasing_counts() {
        let db = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2], vec![1]];
        let r = FpGrowthMiner.mine(&db, 2);
        assert_eq!(r.support(&[1]), Some(4));
        assert_eq!(r.support(&[1, 2]), Some(3));
        assert_eq!(r.support(&[1, 2, 3]), Some(2));
        assert_eq!(r.support(&[2, 3]), Some(2));
        let expect = BruteForceMiner.mine(&db, 2);
        assert_eq!(r.sorted(), expect.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(FpGrowthMiner.mine(&[], 1).is_empty());
        assert!(FpGrowthMiner.mine(&table1(), 10).is_empty());
    }

    #[test]
    fn min_support_one() {
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = FpGrowthMiner.mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// FP-growth agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = FpGrowthMiner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
