//! Algorithm 1 — PLT construction (§4.2).
//!
//! Two database scans, exactly as in FP-growth-family construction:
//!
//! 1. count item supports, keep the items meeting `min_support`, and assign
//!    ranks (the `Rank` function);
//! 2. project every transaction onto its frequent items, encode the rank
//!    sequence as a position vector, and insert it into the
//!    length-partitioned table, incrementing the frequency when the vector
//!    already exists.
//!
//! The paper additionally suggests (§5, "for reasons of efficiency and
//! correctness, we may include the first step above in the positional tree
//! construction process") inserting all proper **prefixes** of each vector
//! during construction when the top-down miner will be used: vector
//! `[1,1,1,1]` is then also added as `[1,1,1]`, `[1,1]` and `[1]`. The
//! [`ConstructOptions::with_prefixes`] flag enables this.

use crate::error::Result;
use crate::item::{Item, Support};
use crate::plt::Plt;
use crate::posvec::PositionVector;
use crate::ranking::{ItemRanking, RankPolicy};

/// Knobs for [`construct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstructOptions {
    /// Item-order policy for the `Rank` function.
    pub rank_policy: RankPolicy,
    /// Insert every proper prefix of each transaction vector alongside the
    /// vector itself (the paper's part-A-at-construction optimisation for
    /// the top-down approach). Leave off for the conditional miner.
    pub with_prefixes: bool,
}

impl ConstructOptions {
    /// Options for feeding the conditional miner (no prefixes).
    pub fn conditional() -> Self {
        ConstructOptions::default()
    }

    /// Options for feeding the top-down miner (prefixes inserted during the
    /// second scan, as the paper recommends).
    pub fn top_down() -> Self {
        ConstructOptions {
            with_prefixes: true,
            ..Default::default()
        }
    }
}

/// Runs Algorithm 1 over a transaction database.
///
/// `transactions` may be any slice of item-slice-likes; items within a
/// transaction may appear in any order but must be distinct.
pub fn construct<T: AsRef<[Item]>>(
    transactions: &[T],
    min_support: Support,
    options: ConstructOptions,
) -> Result<Plt> {
    construct_obs(
        transactions,
        min_support,
        options,
        &mut plt_obs::Obs::none(),
    )
}

/// [`construct`] with observability: the two scans are reported as
/// `construct/rank` and `construct/encode` spans, plus gauges for the
/// sizes that determine downstream mining cost.
pub fn construct_obs<T: AsRef<[Item]>>(
    transactions: &[T],
    min_support: Support,
    options: ConstructOptions,
    obs: &mut plt_obs::Obs,
) -> Result<Plt> {
    // Scan 1: frequent items and ranks.
    let ranking = obs.time("construct/rank", || {
        ItemRanking::scan(transactions, min_support, options.rank_policy)
    });
    let mut plt = Plt::new(ranking, min_support)?;

    // Scan 2: encode and insert.
    let t0 = obs.start();
    for t in transactions {
        insert_one(&mut plt, t.as_ref(), options.with_prefixes)?;
    }
    obs.stop("construct/encode", t0);
    obs.gauge("construct.frequent_items", plt.ranking().len() as u64);
    obs.gauge("construct.vectors", plt.num_vectors() as u64);
    obs.gauge("construct.transactions", plt.num_transactions());
    Ok(plt)
}

/// Second-scan body for a single transaction, shared with incremental use.
fn insert_one(plt: &mut Plt, transaction: &[Item], with_prefixes: bool) -> Result<()> {
    if !with_prefixes {
        plt.insert_transaction(transaction)?;
        return Ok(());
    }
    // Prefix mode: validate/project once, then insert every prefix.
    plt.note_transaction();
    let ranks = plt.ranking().project(transaction);
    if let Some(w) = ranks.windows(2).find(|w| w[0] == w[1]) {
        return Err(crate::error::PltError::DuplicateItem {
            item: plt.ranking().item(w[0]),
        });
    }
    for end in 1..=ranks.len() {
        let v = PositionVector::from_ranks(&ranks[..end]).expect("valid projection");
        plt.insert_vector(v, 1);
    }
    Ok(())
}

/// Incremental construction: a builder that accepts transactions one at a
/// time (e.g. when streaming from disk) against a ranking obtained from a
/// prior scan or from domain knowledge.
#[derive(Debug)]
pub struct PltBuilder {
    plt: Plt,
    with_prefixes: bool,
}

impl PltBuilder {
    /// Starts a builder over a fixed ranking.
    pub fn new(
        ranking: ItemRanking,
        min_support: Support,
        options: ConstructOptions,
    ) -> Result<Self> {
        Ok(PltBuilder {
            plt: Plt::new(ranking, min_support)?,
            with_prefixes: options.with_prefixes,
        })
    }

    /// Inserts one transaction.
    pub fn insert(&mut self, transaction: &[Item]) -> Result<&mut Self> {
        insert_one(&mut self.plt, transaction, self.with_prefixes)?;
        Ok(self)
    }

    /// Finishes construction.
    pub fn finish(self) -> Plt {
        self.plt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Rank;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn construct_without_prefixes_matches_figure3() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        assert_eq!(plt.num_vectors(), 5);
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 2);
    }

    #[test]
    fn construct_with_prefixes_adds_prefix_vectors() {
        let plt = construct(&table1(), 2, ConstructOptions::top_down()).unwrap();
        // [1,1,1,1] contributes prefixes [1],[1,1],[1,1,1]; ABD adds
        // [1],[1,1]; etc. Check a few hand-computed frequencies:
        // [1] (= {A}) as a prefix appears for every transaction starting at
        // rank 1: t1,t2,t3,t4 → freq 4.
        assert_eq!(plt.vector_frequency(&pv(&[1])), 4);
        // [1,1] (= {A,B}) prefix of t1..t4 → 4.
        assert_eq!(plt.vector_frequency(&pv(&[1, 1])), 4);
        // [1,1,1] (= {A,B,C}): t1,t2 full vectors + prefix of t3 → 3.
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 3);
        // [2] (= {B}) prefix of t5 only → 1 (B's true support is counted by
        // the miners, not by prefix frequency).
        assert_eq!(plt.vector_frequency(&pv(&[2])), 1);
        // [3] (= {C}) prefix of t6 → 1.
        assert_eq!(plt.vector_frequency(&pv(&[3])), 1);
    }

    #[test]
    fn builder_equals_batch_construction() {
        let db = table1();
        let batch = construct(&db, 2, ConstructOptions::conditional()).unwrap();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let mut b = PltBuilder::new(ranking, 2, ConstructOptions::conditional()).unwrap();
        for t in &db {
            b.insert(t).unwrap();
        }
        let inc = b.finish();
        assert_eq!(inc.num_vectors(), batch.num_vectors());
        assert_eq!(inc.num_transactions(), batch.num_transactions());
        for (v, e) in batch.iter() {
            assert_eq!(inc.vector_frequency(v), e.freq);
        }
    }

    #[test]
    fn prefix_mode_rejects_duplicates_too() {
        let db = table1();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let mut b = PltBuilder::new(ranking, 2, ConstructOptions::top_down()).unwrap();
        assert!(b.insert(&[1, 1]).is_err());
    }

    #[test]
    fn empty_database_constructs_empty_plt() {
        let db: Vec<Vec<Item>> = vec![];
        let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
        assert_eq!(plt.num_vectors(), 0);
        assert_eq!(plt.max_len(), 0);
        assert!(plt.ranking().is_empty());
    }

    #[test]
    fn rank_policy_flows_through() {
        let plt = construct(
            &table1(),
            2,
            ConstructOptions {
                rank_policy: RankPolicy::FrequencyDescending,
                with_prefixes: false,
            },
        )
        .unwrap();
        // Under frequency-descending, B (support 5) holds rank 1.
        assert_eq!(plt.ranking().item(1), 1);
    }
}
