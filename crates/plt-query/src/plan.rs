//! The cost-based planner: logical query → physical operator.
//!
//! Each query shape admits several physical operators (see the table in
//! `DESIGN.md` §13); the planner estimates each candidate's cost from
//! the source's cardinality stats and picks the cheapest, breaking ties
//! toward the earlier (more specialized) candidate. All candidates
//! return identical rows — the choice affects time, never results —
//! which is what lets `tests/query_equivalence.rs` force each operator
//! in turn and compare.

use plt_core::error::{PltError, Result};

use crate::ast::{Query, QueryKind, Tier};
use crate::source::Source;

/// A physical operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysOp {
    /// Canonical-key point lookup on the snapshot index (Lemma 4.1.2),
    /// oracle fallback for infrequent sets. `SUPPORT OF` only.
    IndexPoint,
    /// Best-first traversal of the extension index (Lemma 4.1.3) with
    /// top-k early termination. `TOP` and `MINE COND`.
    ExtTraverse,
    /// Ordered scan of the precomputed rule index with confidence-bound
    /// early termination. `RULES` only.
    RuleScan,
    /// On-demand conditional mining of the sub-PLT rooted at the
    /// condition. `MINE COND` only.
    CondMine,
    /// Brute-force scan — the universal fallback and the differential
    /// oracle.
    FullScan,
    /// Bounded-error probe of the source's attached indicator sketch.
    /// `SUPPORT OF` under the `APPROX` tier only — never a candidate
    /// for exact-tier queries, so the all-operators-agree invariant is
    /// untouched.
    SketchProbe,
}

impl PhysOp {
    pub fn as_str(self) -> &'static str {
        match self {
            PhysOp::IndexPoint => "index_point",
            PhysOp::ExtTraverse => "ext_traverse",
            PhysOp::RuleScan => "rule_scan",
            PhysOp::CondMine => "cond_mine",
            PhysOp::FullScan => "full_scan",
            PhysOp::SketchProbe => "sketch_probe",
        }
    }
}

/// A compiled plan: the chosen operator and its estimated cost (in
/// abstract "row touches", comparable only within one planning call).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    pub op: PhysOp,
    pub cost: f64,
}

/// The physical operators applicable to a query, most specialized
/// first. `FullScan` applies to everything and is always last.
/// `SketchProbe` joins the candidate set only for `SUPPORT OF` under
/// the `APPROX` tier; every other shape answers exactly even when the
/// tier permits approximation (the response then honestly reports
/// `approx: false`).
pub fn applicable_ops(q: &Query) -> &'static [PhysOp] {
    match (&q.kind, q.tier.is_approx()) {
        (QueryKind::Support { .. }, true) => {
            &[PhysOp::SketchProbe, PhysOp::IndexPoint, PhysOp::FullScan]
        }
        (QueryKind::Support { .. }, false) => &[PhysOp::IndexPoint, PhysOp::FullScan],
        (QueryKind::Top { .. }, _) => &[PhysOp::ExtTraverse, PhysOp::FullScan],
        (QueryKind::Rules { .. }, _) => &[PhysOp::RuleScan, PhysOp::FullScan],
        (QueryKind::MineCond { .. }, _) => {
            &[PhysOp::ExtTraverse, PhysOp::CondMine, PhysOp::FullScan]
        }
    }
}

/// Estimated cost of running `op` on `q` against a source with the
/// given stats. See `DESIGN.md` §13 for the model's derivation.
fn cost_of(op: PhysOp, q: &Query, src: &dyn Source) -> f64 {
    let stats = src.stats();
    let n_sets = stats.num_itemsets as f64;
    let n_rules = stats.num_rules as f64;
    let n_vectors = stats.num_vectors as f64;
    // Average children per traversal node; floor 2 keeps sparse indexes
    // from looking free.
    let fanout = (n_sets / (stats.num_roots.max(1) as f64)).max(2.0);
    match (op, &q.kind) {
        (PhysOp::SketchProbe, QueryKind::Support { .. }) => match src.sketch() {
            // The probe scans the retained sample once. Unusable when no
            // sketch is attached, or when the query demands a tighter
            // bound than the sketch guarantees.
            Some(sketch) => match q.tier {
                Tier::Approx { eps: Some(e) } if sketch.epsilon() > e => f64::INFINITY,
                _ => sketch.cost() as f64,
            },
            None => f64::INFINITY,
        },
        (PhysOp::IndexPoint, QueryKind::Support { items }) => {
            if q.tier.is_approx() {
                // Under APPROX the point lookup competes with the sketch.
                // Its hash probe is near-free on index hits, but misses
                // fall back to a full oracle scan of the PLT vectors;
                // without membership knowledge, charge the expectation at
                // even odds so large snapshots prefer the sketch.
                items.len() as f64 + 0.5 * n_vectors
            } else {
                items.len() as f64
            }
        }
        (PhysOp::FullScan, QueryKind::Support { .. }) => n_vectors,
        (PhysOp::ExtTraverse, QueryKind::Top { k, filter }) => {
            // Filtered traversals expand past non-passing nodes, so a
            // filter inflates the frontier estimate.
            let selectivity = if filter.is_some() { 4.0 } else { 1.0 };
            ((*k as f64) + 1.0) * fanout * selectivity
        }
        (PhysOp::FullScan, QueryKind::Top { .. }) => n_sets,
        (PhysOp::RuleScan, QueryKind::Rules { filter, .. }) => {
            // A top-level confidence bound c lets the scan stop after
            // roughly the (1 - c) fraction of the confidence-sorted
            // index (clamped: even c = 1.0 reads some prefix).
            match filter.as_ref().and_then(crate::exec::confidence_bound) {
                Some((c, _)) => n_rules * (1.0 - c).clamp(0.02, 1.0),
                None => n_rules,
            }
        }
        (PhysOp::FullScan, QueryKind::Rules { .. }) => n_rules,
        (PhysOp::ExtTraverse, QueryKind::MineCond { k, .. }) => {
            let k_eff = k.map(|k| k as f64).unwrap_or(n_sets);
            (k_eff + 1.0) * fanout
        }
        (PhysOp::CondMine, QueryKind::MineCond { cond, .. }) => {
            // Rebuild cost scales with the conditional database size
            // (= support of the condition), plus a fixed mining setup.
            let (s_cond, _) = src.support_of(cond);
            s_cond as f64 * 4.0 + 16.0
        }
        (PhysOp::FullScan, QueryKind::MineCond { .. }) => n_sets,
        // Planner never pairs other combinations; make them unattractive
        // rather than unrepresentable so the force hook stays simple.
        _ => f64::INFINITY,
    }
}

/// Validates `q` against the source at plan time, so every operator
/// fails identically on invalid input. Only `MINE COND` conditions are
/// checked: naming an item the ranking has never seen is a user error
/// (`SUPPORT OF` an unknown item legitimately answers 0, and filter
/// items that never match simply select nothing).
fn validate(q: &Query, src: &dyn Source) -> Result<()> {
    if let QueryKind::MineCond { cond, .. } = &q.kind {
        let plt = src.plt();
        for &item in cond {
            if plt.ranking().rank(item).is_none() {
                return Err(PltError::Query {
                    message: format!("unknown item {item} in MINE COND (infrequent or never seen)"),
                });
            }
        }
    }
    Ok(())
}

/// Plans `q` (already normalized) against `src`. With `force`, the
/// given operator is used if applicable (the test-only override hook);
/// otherwise the cheapest candidate wins, ties going to the earlier
/// (more specialized) one.
pub fn plan(q: &Query, src: &dyn Source, force: Option<PhysOp>) -> Result<Plan> {
    validate(q, src)?;
    let candidates = applicable_ops(q);
    if let Some(op) = force {
        if !candidates.contains(&op) {
            return Err(PltError::Query {
                message: format!("operator {} does not apply to `{q}`", op.as_str()),
            });
        }
        return Ok(Plan {
            op,
            cost: cost_of(op, q, src),
        });
    }
    let mut best: Option<Plan> = None;
    for &op in candidates {
        let cost = cost_of(op, q, src);
        // Strict `<`: ties go to the earlier (more specialized) candidate.
        let improves = match best {
            Some(b) => cost < b.cost,
            None => true,
        };
        if improves {
            best = Some(Plan { op, cost });
        }
    }
    Ok(best.expect("every query shape has at least FullScan"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Field, Num, Pred};
    use crate::source::tests::mem_source;

    #[test]
    fn planner_prefers_the_specialized_operator() {
        let src = mem_source(2);
        let p = plan(
            &Query::exact(QueryKind::Support { items: vec![0, 1] }),
            &src,
            None,
        )
        .unwrap();
        assert_eq!(p.op, PhysOp::IndexPoint);
        let top = Query::exact(QueryKind::Top { k: 3, filter: None });
        let p = plan(&top, &src, None).unwrap();
        // Tiny source: either way is fine, but the cost must be finite
        // and the op applicable.
        assert!(p.cost.is_finite());
        assert!(applicable_ops(&top).contains(&p.op));
        let p = plan(
            &Query::exact(QueryKind::Rules {
                filter: Some(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.9),
                }),
                k: None,
            }),
            &src,
            None,
        )
        .unwrap();
        assert_eq!(p.op, PhysOp::RuleScan);
    }

    #[test]
    fn confidence_bound_discounts_rule_scan() {
        let src = mem_source(2);
        let bounded = plan(
            &Query::exact(QueryKind::Rules {
                filter: Some(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.9),
                }),
                k: None,
            }),
            &src,
            None,
        )
        .unwrap();
        let unbounded = plan(
            &Query::exact(QueryKind::Rules {
                filter: None,
                k: None,
            }),
            &src,
            None,
        )
        .unwrap();
        assert!(bounded.cost < unbounded.cost);
    }

    #[test]
    fn force_hook_respects_applicability() {
        let src = mem_source(2);
        let q = Query::exact(QueryKind::MineCond {
            cond: vec![0],
            k: Some(5),
        });
        for op in [PhysOp::ExtTraverse, PhysOp::CondMine, PhysOp::FullScan] {
            assert_eq!(plan(&q, &src, Some(op)).unwrap().op, op);
        }
        let err = plan(&q, &src, Some(PhysOp::RuleScan)).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }

    #[test]
    fn unknown_cond_item_is_rejected_at_plan_time() {
        let src = mem_source(2);
        let q = Query::exact(QueryKind::MineCond {
            cond: vec![99],
            k: None,
        });
        for force in [None, Some(PhysOp::ExtTraverse), Some(PhysOp::CondMine)] {
            let err = plan(&q, &src, force).unwrap_err();
            assert!(err.to_string().contains("unknown item 99"), "{err}");
        }
    }

    #[test]
    fn sketch_probe_is_approx_tier_only() {
        let src = mem_source(2);
        let kind = QueryKind::Support { items: vec![0, 1] };
        let exact = Query::exact(kind.clone());
        assert!(!applicable_ops(&exact).contains(&PhysOp::SketchProbe));
        let approx = Query::approx(kind.clone(), None);
        assert!(applicable_ops(&approx).contains(&PhysOp::SketchProbe));
        // Forcing the probe on an exact-tier query is a typed error.
        let err = plan(&exact, &src, Some(PhysOp::SketchProbe)).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
        // Without an attached sketch the probe costs infinity, so the
        // planner falls back to an exact operator even under APPROX.
        let p = plan(&approx, &src, None).unwrap();
        assert_ne!(p.op, PhysOp::SketchProbe);
        assert!(p.cost.is_finite());
    }

    #[test]
    fn sketch_probe_wins_on_large_sources_and_respects_eps() {
        use crate::source::tests::mem_source_with_sketch;
        // Sketch of 8 rows, epsilon 0.1, against a source whose oracle
        // fallback dwarfs it.
        let src = mem_source_with_sketch(2, 8, 0.1);
        let kind = QueryKind::Support { items: vec![0, 1] };
        let p = plan(&Query::approx(kind.clone(), None), &src, None).unwrap();
        // Tiny table: index_point may still win on cost; the probe must
        // at least be plannable via force.
        assert!(applicable_ops(&Query::approx(kind.clone(), None)).contains(&PhysOp::SketchProbe));
        assert!(p.cost.is_finite());
        let forced = plan(
            &Query::approx(kind.clone(), None),
            &src,
            Some(PhysOp::SketchProbe),
        )
        .unwrap();
        assert_eq!(forced.op, PhysOp::SketchProbe);
        // A bound tighter than the sketch guarantees prices it out.
        let tight = Query::approx(kind, Some(0.01));
        let p = plan(&tight, &src, None).unwrap();
        assert_ne!(p.op, PhysOp::SketchProbe);
    }
}
