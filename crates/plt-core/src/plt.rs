//! The Positional Lexicographic Tree structure (§4.2, Figure 3a).
//!
//! Following the paper, the PLT is realised as "a table-like data structure"
//! rather than a pointer tree: the database is partitioned into
//! `D_1, D_2, …, D_k` where partition `D_k` stores the distinct position
//! vectors of length `k`, each with its frequency and the cached sum of its
//! positions ("we store the summation of the position values presented in
//! the vector with each vector. This value will be used during the mining
//! procedure using the conditional approach").
//!
//! A pointer-tree rendering of the same data (Figure 3b) lives in
//! [`crate::tree`].

use std::collections::BTreeMap;

use crate::error::{PltError, Result};
use crate::hash::FxHashMap;
use crate::item::{Item, Rank, Support};
use crate::posvec::PositionVector;
use crate::ranking::ItemRanking;

/// Per-vector payload: frequency and cached position sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PltEntry {
    /// Number of transactions whose projection is exactly this vector
    /// (plus, after top-down propagation, inherited subset frequency).
    pub freq: Support,
    /// `Σ positions` — the rank of the vector's last item (Lemma 4.1.1).
    pub sum: Rank,
}

/// The PLT: length-partitioned map from position vectors to frequencies.
///
/// # Examples
///
/// ```
/// use plt_core::construct::{construct, ConstructOptions};
///
/// // Two transactions over items {1,2,3}; with min support 1, the items
/// // rank 1..=3 and both transactions encode as delta vectors.
/// let db = vec![vec![1, 2, 3], vec![1, 3]];
/// let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
/// assert_eq!(plt.num_vectors(), 2);
/// // {1,3} has ranks [1,3] → positions [1,2], and its sum (3) is the
/// // rank of its last item.
/// let v = plt_core::PositionVector::from_positions(vec![1, 2]).unwrap();
/// assert_eq!(plt.vector_frequency(&v), 1);
/// assert_eq!(plt.get(&v).unwrap().sum, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Plt {
    /// `partitions[k − 1]` is the paper's `D_k`.
    partitions: Vec<FxHashMap<PositionVector, PltEntry>>,
    ranking: ItemRanking,
    min_support: Support,
    /// Transactions scanned during construction (including those that
    /// projected to nothing).
    num_transactions: u64,
}

impl Plt {
    /// Creates an empty PLT over a fixed ranking.
    pub fn new(ranking: ItemRanking, min_support: Support) -> Result<Plt> {
        if min_support == 0 {
            return Err(PltError::ZeroMinSupport);
        }
        Ok(Plt {
            partitions: Vec::new(),
            ranking,
            min_support,
            num_transactions: 0,
        })
    }

    /// The ranking (`Rank` function) the vectors are encoded under.
    #[inline]
    pub fn ranking(&self) -> &ItemRanking {
        &self.ranking
    }

    /// The absolute minimum support the PLT was built for.
    #[inline]
    pub fn min_support(&self) -> Support {
        self.min_support
    }

    /// Number of transactions scanned into the structure.
    #[inline]
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Records that one more transaction was scanned without going through
    /// [`insert_transaction`](Self::insert_transaction) — construction
    /// paths that project and insert vectors manually (e.g. prefix-mode
    /// insertion) call this to keep [`num_transactions`](Self::num_transactions)
    /// honest.
    pub fn note_transaction(&mut self) {
        self.num_transactions += 1;
    }

    /// Length of the longest stored vector (0 when empty).
    pub fn max_len(&self) -> usize {
        self.partitions
            .iter()
            .rposition(|p| !p.is_empty())
            .map_or(0, |i| i + 1)
    }

    /// Partition `D_k`: the distinct vectors of length `k` (empty slice
    /// semantics for `k` beyond the longest vector).
    pub fn partition(&self, k: usize) -> impl Iterator<Item = (&PositionVector, &PltEntry)> {
        self.partitions
            .get(k.wrapping_sub(1))
            .into_iter()
            .flat_map(|m| m.iter())
    }

    /// Number of distinct vectors in partition `D_k`.
    pub fn partition_len(&self, k: usize) -> usize {
        self.partitions
            .get(k.wrapping_sub(1))
            .map_or(0, |m| m.len())
    }

    /// Total number of distinct vectors across all partitions.
    pub fn num_vectors(&self) -> usize {
        self.partitions.iter().map(|m| m.len()).sum()
    }

    /// Sum of frequencies across all vectors (= number of transactions that
    /// projected onto at least one frequent item, when the PLT was built
    /// without prefix insertion).
    pub fn total_frequency(&self) -> Support {
        self.partitions
            .iter()
            .flat_map(|m| m.values())
            .map(|e| e.freq)
            .sum()
    }

    /// Inserts (or increments) a vector with the given frequency —
    /// Algorithm 1's "If V(t′) ∈ D_k increment … else add with freq".
    pub fn insert_vector(&mut self, vector: PositionVector, freq: Support) {
        let k = vector.len();
        if self.partitions.len() < k {
            self.partitions.resize_with(k, FxHashMap::default);
        }
        let sum = vector.sum();
        let entry = self.partitions[k - 1]
            .entry(vector)
            .or_insert(PltEntry { freq: 0, sum });
        entry.freq += freq;
    }

    /// Projects a raw transaction through the ranking and inserts its
    /// vector. Returns `Ok(false)` when the transaction has no frequent
    /// items (nothing inserted). Rejects duplicate items.
    pub fn insert_transaction(&mut self, transaction: &[Item]) -> Result<bool> {
        self.num_transactions += 1;
        let ranks = self.ranking.project(transaction);
        if ranks.windows(2).any(|w| w[0] == w[1]) {
            let dup_rank = ranks.windows(2).find(|w| w[0] == w[1]).unwrap()[0];
            return Err(PltError::DuplicateItem {
                item: self.ranking.item(dup_rank),
            });
        }
        if ranks.is_empty() {
            return Ok(false);
        }
        let vector = PositionVector::from_ranks(&ranks).expect("projection yields valid ranks");
        self.insert_vector(vector, 1);
        Ok(true)
    }

    /// Removes one occurrence of a previously inserted transaction —
    /// incremental maintenance for the paper's "supporting large
    /// databases" story (a PLT can track a sliding window without
    /// rebuilding, as long as the ranking stays fixed).
    ///
    /// Returns `Ok(true)` when a vector was decremented (and dropped at
    /// frequency zero), `Ok(false)` when the transaction projects to
    /// nothing under the ranking. Removing a transaction that was never
    /// inserted is an error.
    ///
    /// Note the ranking is *not* re-derived: items that fell below the
    /// original support threshold keep their ranks. Callers that need
    /// exact re-ranking after heavy churn should reconstruct.
    pub fn remove_transaction(&mut self, transaction: &[Item]) -> Result<bool> {
        let ranks = self.ranking.project(transaction);
        if let Some(w) = ranks.windows(2).find(|w| w[0] == w[1]) {
            return Err(PltError::DuplicateItem {
                item: self.ranking.item(w[0]),
            });
        }
        if ranks.is_empty() {
            self.num_transactions = self.num_transactions.saturating_sub(1);
            return Ok(false);
        }
        let vector = PositionVector::from_ranks(&ranks).expect("projection yields valid ranks");
        let k = vector.len();
        let partition = self.partitions.get_mut(k - 1).ok_or(PltError::NotPresent)?;
        match partition.get_mut(&vector) {
            Some(entry) if entry.freq > 1 => {
                entry.freq -= 1;
            }
            Some(_) => {
                partition.remove(&vector);
            }
            None => return Err(PltError::NotPresent),
        }
        self.num_transactions = self.num_transactions.saturating_sub(1);
        Ok(true)
    }

    /// Absorbs another PLT built over the same ranking, summing vector
    /// frequencies and transaction counts. Fuel for parallel construction:
    /// chunks of the database build local PLTs that are merged at the end.
    ///
    /// # Panics
    /// Debug-asserts the rankings agree; merging PLTs with different rank
    /// functions would concatenate incomparable encodings.
    pub fn absorb(&mut self, other: Plt) {
        debug_assert_eq!(self.ranking, other.ranking, "rankings must match");
        self.num_transactions += other.num_transactions;
        for partition in other.partitions {
            for (v, e) in partition {
                self.insert_vector(v, e.freq);
            }
        }
    }

    /// Frequency of `vector` *as a stored vector* (not itemset support).
    pub fn vector_frequency(&self, vector: &PositionVector) -> Support {
        self.partitions
            .get(vector.len() - 1)
            .and_then(|m| m.get(vector))
            .map_or(0, |e| e.freq)
    }

    /// Looks up a full entry.
    pub fn get(&self, vector: &PositionVector) -> Option<&PltEntry> {
        self.partitions.get(vector.len() - 1)?.get(vector)
    }

    /// Iterates over every `(vector, entry)` pair, shortest vectors first.
    pub fn iter(&self) -> impl Iterator<Item = (&PositionVector, &PltEntry)> {
        self.partitions.iter().flat_map(|m| m.iter())
    }

    /// Groups the stored vectors by their sum (= rank of their last item),
    /// the access pattern of the conditional miner. The map is ordered so
    /// that callers can peel ranks off from the highest down.
    pub fn group_by_sum(&self) -> BTreeMap<Rank, Vec<(PositionVector, Support)>> {
        let mut groups: BTreeMap<Rank, Vec<(PositionVector, Support)>> = BTreeMap::new();
        for (v, e) in self.iter() {
            groups.entry(e.sum).or_default().push((v.clone(), e.freq));
        }
        groups
    }

    /// Computes the support of an arbitrary itemset by scanning the stored
    /// vectors with the position-vector containment test. `O(#vectors)` —
    /// exact but unindexed; the miners are the fast path, this is the
    /// ad-hoc query path.
    pub fn itemset_support(&self, items: &[Item]) -> Support {
        let mut ranks = Vec::with_capacity(items.len());
        for &item in items {
            match self.ranking.rank(item) {
                Some(r) => ranks.push(r),
                None => return 0, // contains an infrequent item
            }
        }
        ranks.sort_unstable();
        ranks.dedup();
        let needle = match PositionVector::from_ranks(&ranks) {
            Ok(v) => v,
            Err(_) => return self.total_frequency(), // empty itemset
        };
        let mut support = 0;
        for k in needle.len()..=self.max_len() {
            for (v, e) in self.partition(k) {
                if v.contains(&needle) {
                    support += e.freq;
                }
            }
        }
        support
    }

    /// Checks every structural invariant of the PLT, returning a
    /// description of the first violation. Meant for tests, debugging and
    /// post-deserialisation sanity checks; `O(total positions)`.
    ///
    /// Invariants: every vector sits in the partition of its length, all
    /// positions are `>= 1`, the cached sum equals the position sum, the
    /// last rank does not exceed the ranking size, and frequencies are
    /// non-zero.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (k0, partition) in self.partitions.iter().enumerate() {
            for (v, e) in partition {
                if v.len() != k0 + 1 {
                    return Err(format!("vector {v} stored in partition D_{}", k0 + 1));
                }
                if v.positions().contains(&0) {
                    return Err(format!("vector {v} holds a zero position"));
                }
                if e.sum != v.sum() {
                    return Err(format!(
                        "vector {v} caches sum {} but positions sum to {}",
                        e.sum,
                        v.sum()
                    ));
                }
                if e.sum as usize > self.ranking.len() {
                    return Err(format!(
                        "vector {v} ends at rank {} beyond the {} ranked items",
                        e.sum,
                        self.ranking.len()
                    ));
                }
                if e.freq == 0 {
                    return Err(format!("vector {v} stored with zero frequency"));
                }
            }
        }
        Ok(())
    }

    /// A compact human-readable dump mirroring Figure 3a's matrices: one
    /// block per partition, vectors sorted, `vector  sum=s  freq=f` rows.
    pub fn render_matrices(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for k in 1..=self.max_len() {
            if self.partition_len(k) == 0 {
                continue;
            }
            writeln!(out, "D_{k}:").unwrap();
            let mut rows: Vec<(&PositionVector, &PltEntry)> = self.partition(k).collect();
            rows.sort_by(|a, b| a.0.cmp(b.0));
            for (v, e) in rows {
                writeln!(out, "  {v}  sum={}  freq={}", e.sum, e.freq).unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::RankPolicy;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn build_table1() -> Plt {
        let db = table1();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let mut plt = Plt::new(ranking, 2).unwrap();
        for t in &db {
            plt.insert_transaction(t).unwrap();
        }
        plt
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn zero_min_support_is_rejected() {
        let ranking = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        assert_eq!(Plt::new(ranking, 0).unwrap_err(), PltError::ZeroMinSupport);
    }

    #[test]
    fn figure3_partitions_match_paper() {
        // Derived by hand from Table 1 (see DESIGN.md E-F3):
        //   D_2: [3,1]×1      (CD)
        //   D_3: [1,1,1]×2 (ABC), [1,1,2]×1 (ABD), [2,1,1]×1 (BCD)
        //   D_4: [1,1,1,1]×1  (ABCD)
        let plt = build_table1();
        assert_eq!(plt.max_len(), 4);
        assert_eq!(plt.partition_len(1), 0);
        assert_eq!(plt.partition_len(2), 1);
        assert_eq!(plt.partition_len(3), 3);
        assert_eq!(plt.partition_len(4), 1);

        assert_eq!(plt.vector_frequency(&pv(&[3, 1])), 1);
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 2);
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 2])), 1);
        assert_eq!(plt.vector_frequency(&pv(&[2, 1, 1])), 1);
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1, 1])), 1);
        assert_eq!(plt.vector_frequency(&pv(&[9])), 0);

        assert_eq!(plt.num_transactions(), 6);
        assert_eq!(plt.total_frequency(), 6);
        assert_eq!(plt.num_vectors(), 5);
    }

    #[test]
    fn entry_sums_are_last_ranks() {
        let plt = build_table1();
        for (v, e) in plt.iter() {
            assert_eq!(e.sum, v.sum());
            assert_eq!(e.sum, *v.ranks().last().unwrap());
        }
    }

    #[test]
    fn group_by_sum_partitions_by_last_item() {
        let plt = build_table1();
        let groups = plt.group_by_sum();
        // sum=3: ABC×2. sum=4: ABCD, ABD, BCD, CD.
        assert_eq!(groups[&3].len(), 1);
        assert_eq!(groups[&3][0].1, 2);
        assert_eq!(groups[&4].len(), 4);
        let total4: Support = groups[&4].iter().map(|(_, f)| f).sum();
        assert_eq!(total4, 4); // support of D
    }

    #[test]
    fn duplicate_items_are_rejected() {
        let db = table1();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let mut plt = Plt::new(ranking, 2).unwrap();
        let err = plt.insert_transaction(&[0, 1, 0]).unwrap_err();
        assert_eq!(err, PltError::DuplicateItem { item: 0 });
    }

    #[test]
    fn transaction_of_only_infrequent_items_inserts_nothing() {
        let db = table1();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let mut plt = Plt::new(ranking, 2).unwrap();
        assert!(!plt.insert_transaction(&[4, 5]).unwrap());
        assert_eq!(plt.num_vectors(), 0);
        assert_eq!(plt.num_transactions(), 1);
    }

    #[test]
    fn itemset_support_by_scan() {
        let plt = build_table1();
        assert_eq!(plt.itemset_support(&[0]), 4); // A
        assert_eq!(plt.itemset_support(&[1]), 5); // B
        assert_eq!(plt.itemset_support(&[0, 1]), 4); // AB
        assert_eq!(plt.itemset_support(&[0, 2, 3]), 1); // ACD
        assert_eq!(plt.itemset_support(&[0, 1, 2, 3]), 1); // ABCD
        assert_eq!(plt.itemset_support(&[4]), 0); // E infrequent
        assert_eq!(plt.itemset_support(&[0, 4]), 0);
        assert_eq!(plt.itemset_support(&[]), 6); // empty set: every vector
    }

    #[test]
    fn render_matrices_is_stable_and_complete() {
        let plt = build_table1();
        let s = plt.render_matrices();
        assert!(s.contains("D_2:"));
        assert!(s.contains("[3,1]  sum=4  freq=1"));
        assert!(s.contains("[1,1,1]  sum=3  freq=2"));
        assert!(s.contains("[1,1,1,1]  sum=4  freq=1"));
    }

    #[test]
    fn remove_transaction_reverses_insert() {
        let mut plt = build_table1();
        // Remove one ABC occurrence: freq 2 → 1.
        assert!(plt.remove_transaction(&[0, 1, 2]).unwrap());
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 1);
        // Remove the other: vector disappears entirely.
        assert!(plt.remove_transaction(&[0, 1, 2]).unwrap());
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 0);
        assert_eq!(plt.num_vectors(), 4);
        // A third removal errors.
        assert_eq!(
            plt.remove_transaction(&[0, 1, 2]).unwrap_err(),
            PltError::NotPresent
        );
        assert_eq!(plt.num_transactions(), 4);
    }

    #[test]
    fn remove_transaction_projects_like_insert() {
        let mut plt = build_table1();
        // ABDE projects to ABD (E unranked); removing either spelling
        // removes the [1,1,2] vector.
        assert!(plt.remove_transaction(&[0, 1, 3, 4]).unwrap());
        assert_eq!(plt.vector_frequency(&pv(&[1, 1, 2])), 0);
        // A transaction of only unranked items removes nothing.
        assert!(!plt.remove_transaction(&[4, 5]).unwrap());
        // Mining after churn still agrees with a fresh build.
        let remaining: Vec<Vec<Item>> = vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ];
        let fresh = {
            let ranking = plt.ranking().clone();
            let mut p = Plt::new(ranking, 2).unwrap();
            for t in &remaining {
                p.insert_transaction(t).unwrap();
            }
            p
        };
        assert_eq!(plt.num_vectors(), fresh.num_vectors());
        for (v, e) in fresh.iter() {
            assert_eq!(plt.vector_frequency(v), e.freq);
        }
    }

    #[test]
    fn absorb_merges_chunked_construction() {
        let db = table1();
        let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
        let whole = {
            let mut p = Plt::new(ranking.clone(), 2).unwrap();
            for t in &db {
                p.insert_transaction(t).unwrap();
            }
            p
        };
        let mut left = Plt::new(ranking.clone(), 2).unwrap();
        for t in &db[..3] {
            left.insert_transaction(t).unwrap();
        }
        let mut right = Plt::new(ranking, 2).unwrap();
        for t in &db[3..] {
            right.insert_transaction(t).unwrap();
        }
        left.absorb(right);
        assert_eq!(left.num_transactions(), whole.num_transactions());
        assert_eq!(left.num_vectors(), whole.num_vectors());
        for (v, e) in whole.iter() {
            assert_eq!(left.vector_frequency(v), e.freq);
        }
    }

    #[test]
    fn validate_accepts_real_structures_and_rejects_corruption() {
        let plt = build_table1();
        plt.validate().unwrap();

        // Corrupt: insert a vector whose last rank exceeds the ranking.
        let mut bad = build_table1();
        bad.insert_vector(pv(&[9]), 1);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("beyond"), "{err}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Construction and churn preserve all structural invariants.
            #[test]
            fn prop_validate_after_churn(
                db in proptest::collection::vec(
                    proptest::collection::btree_set(0u32..12, 1..6),
                    1..30,
                ),
            ) {
                let db: Vec<Vec<Item>> = db.into_iter()
                    .map(|t| t.into_iter().collect())
                    .collect();
                let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
                let mut plt = Plt::new(ranking, 2).unwrap();
                for t in &db {
                    plt.insert_transaction(t).unwrap();
                }
                prop_assert!(plt.validate().is_ok());
                for t in db.iter().step_by(2) {
                    plt.remove_transaction(t).unwrap();
                }
                prop_assert!(plt.validate().is_ok());
            }

            /// Inserting a batch then removing a random subset leaves the
            /// PLT identical to building from the remainder.
            #[test]
            fn prop_remove_is_inverse_of_insert(
                db in proptest::collection::vec(
                    proptest::collection::btree_set(0u32..12, 1..6),
                    2..30,
                ),
                removal_mask in proptest::collection::vec(any::<bool>(), 2..30),
            ) {
                let db: Vec<Vec<Item>> = db.into_iter()
                    .map(|t| t.into_iter().collect())
                    .collect();
                let ranking = ItemRanking::scan(&db, 2, RankPolicy::Lexicographic);
                let mut plt = Plt::new(ranking.clone(), 2).unwrap();
                for t in &db {
                    plt.insert_transaction(t).unwrap();
                }
                let mut kept: Vec<&Vec<Item>> = Vec::new();
                for (i, t) in db.iter().enumerate() {
                    if removal_mask.get(i).copied().unwrap_or(false) {
                        plt.remove_transaction(t).unwrap();
                    } else {
                        kept.push(t);
                    }
                }
                let mut fresh = Plt::new(ranking, 2).unwrap();
                for t in kept {
                    fresh.insert_transaction(t).unwrap();
                }
                prop_assert_eq!(plt.num_vectors(), fresh.num_vectors());
                prop_assert_eq!(plt.num_transactions(), fresh.num_transactions());
                for (v, e) in fresh.iter() {
                    prop_assert_eq!(plt.vector_frequency(v), e.freq);
                }
            }
        }
    }

    #[test]
    fn insert_vector_accumulates() {
        let ranking = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        let mut plt = Plt::new(ranking, 1).unwrap();
        plt.insert_vector(pv(&[1, 2]), 3);
        plt.insert_vector(pv(&[1, 2]), 2);
        assert_eq!(plt.vector_frequency(&pv(&[1, 2])), 5);
        assert_eq!(plt.get(&pv(&[1, 2])).unwrap().sum, 3);
    }
}
