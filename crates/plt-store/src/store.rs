//! The storage engine: one data directory holding a WAL, segment files,
//! window snapshots and the `MANIFEST` that ties them together.
//!
//! Crash-consistency protocol (all ordering, no magic):
//!
//! 1. every mutation is WAL-appended before it is applied in memory;
//! 2. segment / window files are written and fsynced *before* the
//!    manifest that references them is published;
//! 3. the manifest is replaced atomically (tmp + rename + dir fsync);
//! 4. files superseded by a manifest are deleted only *after* the rename
//!    — a crash anywhere leaves either the old or the new file set fully
//!    intact, plus possibly some orphans;
//! 5. recovery trusts only `MANIFEST` + the WAL it names: everything
//!    else in the directory that the manifest does not reference is an
//!    orphan from a crashed checkpoint and is deleted at open.
//!
//! Compaction is size-tiered: live segments are grouped by the binary
//! order of magnitude of their byte size, and any tier holding
//! `compact_threshold`+ segments is merged into one segment (shards in
//! sum-key order, since shard ids *are* rank ranges ordered by the
//! vector-sum key). Merging happens inside the checkpoint, so the old
//! files stay referenced by the old manifest until the new one lands.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use plt_core::item::{Item, Rank, Support};
use plt_core::ranking::RankPolicy;
use plt_shard::Delta;

use crate::manifest::{
    read_window, segment_name, sync_dir, wal_name, window_name, write_window, Manifest,
    MANIFEST_NAME,
};
use crate::segment::{write_segment, SegmentReader, ShardEntries};
use crate::wal::{SeqRecord, Wal, WalRecord};

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Fsync the WAL every this many appends (fsync batching). 1 = every
    /// record.
    pub sync_every: usize,
    /// Merge a size tier once it holds this many live segments.
    pub compact_threshold: usize,
    /// Deterministic fault injection for crash tests: panic right after
    /// the Nth successful WAL delta append (the record is durable, the
    /// in-memory apply never happens — a crash mid-batch).
    pub fault_after_appends: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            sync_every: 32,
            compact_threshold: 4,
            fault_after_appends: None,
        }
    }
}

/// Counters the observability layer and `stats` endpoint expose.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Bytes in the live WAL.
    pub wal_bytes: u64,
    /// Records in the live WAL.
    pub wal_records: u64,
    /// Live segment files.
    pub segments: u64,
    /// Bytes across live segment files.
    pub segment_bytes: u64,
    /// Size-tiered merges performed.
    pub compactions: u64,
    /// Checkpoints published.
    pub checkpoints: u64,
    /// Shard fragments spilled to segments.
    pub spills: u64,
    /// Point lookups served from mmap segments.
    pub segment_lookups: u64,
    /// Wall-clock milliseconds of the last recovery (0 on a fresh dir).
    pub recovery_ms: u64,
    /// Delta records replayed by the last recovery.
    pub replayed_records: u64,
}

/// State recovered from a data directory at open.
pub struct Recovered {
    /// The checkpoint manifest (`None` when the directory had never been
    /// checkpointed but a WAL with records existed).
    pub manifest: Option<Manifest>,
    /// The checkpointed window (empty without a manifest).
    pub window: Vec<Vec<Item>>,
    /// WAL records past the checkpoint, to replay in order.
    pub tail: Vec<SeqRecord>,
}

struct LiveSegment {
    name: String,
    reader: SegmentReader,
}

/// Everything a checkpoint captures, handed over by the pipeline.
pub struct CheckpointInput<'a> {
    /// The live window, oldest first.
    pub window: Vec<&'a [Item]>,
    /// Exact ranking entries in rank order: `(item, support-at-rank)`.
    pub ranking_items: Vec<(Item, Support)>,
    /// Ranking policy.
    pub policy: RankPolicy,
    /// Pipeline minimum support.
    pub min_support: Support,
    /// Current shard count.
    pub shard_count: usize,
    /// Per-shard dirty flags (normally all false between applies).
    pub dirty: Vec<bool>,
    /// Fragments that must be persisted now: every shard that changed
    /// since the last checkpoint or has never been written.
    pub persist: Vec<ShardEntries>,
}

/// A data directory: WAL, segments, manifest. File-level only — the
/// pipeline-level composition lives in
/// [`DurablePipeline`](crate::DurablePipeline).
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
    wal: Wal,
    /// Epoch of the last published checkpoint (0 before the first).
    epoch: u64,
    seg_counter: u64,
    segments: Vec<LiveSegment>,
    /// shard → index into `segments` (grows on demand).
    shard_map: Vec<Option<usize>>,
    /// Names of the window file the current manifest references.
    window_file: Option<String>,
    delta_appends: u64,
    compactions: u64,
    checkpoints: u64,
    spills: u64,
    segment_lookups: AtomicU64,
    recovery_ms: u64,
    replayed_records: u64,
}

impl Store {
    /// Opens (or initialises) a data directory, performing recovery:
    /// load the manifest, map its segments, read the window snapshot,
    /// truncate the WAL's torn tail, collect the replayable records, and
    /// delete orphans from crashed checkpoints.
    pub fn open(dir: &Path, options: StoreOptions) -> io::Result<(Store, Recovered)> {
        std::fs::create_dir_all(dir)?;
        let manifest = Manifest::read(dir)?;

        let mut segments = Vec::new();
        let mut shard_map = Vec::new();
        let mut window = Vec::new();
        let mut window_file = None;
        let mut epoch = 0;
        let (wal, tail) = match &manifest {
            Some(m) => {
                epoch = m.epoch;
                for name in &m.segments {
                    segments.push(LiveSegment {
                        reader: SegmentReader::open(&dir.join(name))?,
                        name: name.clone(),
                    });
                }
                shard_map = m.shard_map.clone();
                window = read_window(&dir.join(&m.window))?;
                window_file = Some(m.window.clone());
                let (wal, records) = Wal::open(&dir.join(&m.wal), options.sync_every)?;
                // Everything in this WAL postdates the checkpoint; keep
                // the seq filter anyway as a belt-and-braces invariant.
                let tail: Vec<SeqRecord> = records
                    .into_iter()
                    .filter(|r| r.seq >= m.last_seq)
                    .collect();
                (wal, tail)
            }
            None => {
                // Never checkpointed: epoch-0 WAL is the whole history.
                let path = dir.join(wal_name(0));
                if path.exists() {
                    Wal::open(&path, options.sync_every)?
                } else {
                    (Wal::create(&path, 0, options.sync_every)?, Vec::new())
                }
            }
        };

        let store = Store {
            dir: dir.to_path_buf(),
            options,
            wal,
            epoch,
            seg_counter: 0,
            segments,
            shard_map,
            window_file,
            delta_appends: 0,
            compactions: 0,
            checkpoints: 0,
            spills: 0,
            segment_lookups: AtomicU64::new(0),
            recovery_ms: 0,
            replayed_records: tail
                .iter()
                .filter(|r| matches!(r.record, WalRecord::Delta { .. }))
                .count() as u64,
        };
        store.remove_orphans()?;
        Ok((
            store,
            Recovered {
                manifest,
                window,
                tail,
            },
        ))
    }

    /// Deletes every store-owned file the manifest does not reference.
    fn remove_orphans(&self) -> io::Result<()> {
        let mut referenced: Vec<String> = vec![
            MANIFEST_NAME.to_string(),
            self.wal
                .path()
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        ];
        if let Some(w) = &self.window_file {
            referenced.push(w.clone());
        }
        referenced.extend(self.segments.iter().map(|s| s.name.clone()));
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let ours = name.starts_with("wal-")
                || name.starts_with("seg-")
                || name.starts_with("window-")
                || name == "MANIFEST.tmp";
            if ours && !referenced.contains(&name) {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn ensure_shards(&mut self, n: usize) {
        if self.shard_map.len() < n {
            self.shard_map.resize(n, None);
        }
    }

    /// Journals a delta. Returns its WAL sequence number. This is where
    /// the deterministic crash fault fires (after the append — the
    /// record is durable, the apply is not).
    pub fn append_delta(&mut self, delta: &Delta) -> io::Result<u64> {
        let seq = self.wal.append(&WalRecord::from(delta))?;
        self.delta_appends += 1;
        if let Some(n) = self.options.fault_after_appends {
            if self.delta_appends >= n {
                self.wal.sync()?;
                panic!("plt-store fault injection: crash after {n} WAL delta appends");
            }
        }
        Ok(seq)
    }

    /// Journals a re-rank (informational).
    pub fn note_rerank(&mut self, ranked_items: u64) -> io::Result<()> {
        self.wal.append(&WalRecord::Rerank { ranked_items })?;
        Ok(())
    }

    /// Invalidates every segment mapping: stored position vectors were
    /// canonical under the old ranking and key nothing under the new
    /// one. The dead files are garbage-collected at the next checkpoint.
    pub fn invalidate_segments(&mut self) {
        for entry in &mut self.shard_map {
            *entry = None;
        }
    }

    /// Forces the WAL batch to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// True when `shard` has a current on-disk copy.
    pub fn has_persisted(&self, shard: usize) -> bool {
        self.shard_map.get(shard).copied().flatten().is_some()
    }

    /// Point lookup of a canonical position vector in `shard`'s segment.
    pub fn lookup(&self, shard: usize, positions: &[Rank]) -> Option<Support> {
        let seg = self.shard_map.get(shard).copied().flatten()?;
        self.segment_lookups.fetch_add(1, Ordering::Relaxed);
        self.segments[seg].reader.lookup(shard as u32, positions)
    }

    /// Full decode of `shard`'s persisted entries.
    pub fn load_shard(&self, shard: usize) -> Option<Vec<(Vec<Rank>, Support)>> {
        let seg = self.shard_map.get(shard).copied().flatten()?;
        self.segments[seg].reader.iter_shard(shard as u32)
    }

    /// Writes `shards` into a fresh spill segment, remaps them to it and
    /// journals the evictions. The segment joins the manifest at the
    /// next checkpoint; if the process dies first, recovery re-derives
    /// the fragments from the WAL tail (a changed shard's deltas are by
    /// definition in the tail).
    pub fn spill(&mut self, num_transactions: u64, shards: &[ShardEntries]) -> io::Result<()> {
        if shards.is_empty() {
            return Ok(());
        }
        let name = segment_name(self.epoch + 1, self.seg_counter);
        self.seg_counter += 1;
        write_segment(&self.dir.join(&name), num_transactions, shards)?;
        let reader = SegmentReader::open(&self.dir.join(&name))?;
        let idx = self.segments.len();
        self.segments.push(LiveSegment { name, reader });
        for sh in shards {
            self.ensure_shards(sh.shard as usize + 1);
            self.shard_map[sh.shard as usize] = Some(idx);
            self.wal.append(&WalRecord::Evict { shard: sh.shard })?;
            self.spills += 1;
        }
        Ok(())
    }

    /// Publishes a checkpoint: persist outstanding fragments, compact,
    /// snapshot the window, rotate the WAL, write the manifest
    /// atomically, then delete superseded files.
    pub fn checkpoint(&mut self, input: CheckpointInput<'_>) -> io::Result<()> {
        let new_epoch = self.epoch + 1;
        let num_transactions = input.window.len() as u64;
        self.ensure_shards(input.shard_count);

        // Files live under the *current* manifest; deletable afterwards.
        let mut old_files: Vec<String> = Vec::new();
        if let Some(w) = &self.window_file {
            old_files.push(w.clone());
        }
        old_files.push(
            self.wal
                .path()
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        old_files.extend(self.segments.iter().map(|s| s.name.clone()));

        // 1. Persist outstanding fragments into one checkpoint segment.
        if !input.persist.is_empty() {
            let name = segment_name(new_epoch, self.seg_counter);
            self.seg_counter += 1;
            write_segment(&self.dir.join(&name), num_transactions, &input.persist)?;
            let reader = SegmentReader::open(&self.dir.join(&name))?;
            let idx = self.segments.len();
            self.segments.push(LiveSegment { name, reader });
            for sh in &input.persist {
                self.ensure_shards(sh.shard as usize + 1);
                self.shard_map[sh.shard as usize] = Some(idx);
            }
        }

        // 2. Size-tiered compaction over the live segment set.
        self.compact(new_epoch, num_transactions)?;

        // 3. Window snapshot.
        let window = window_name(new_epoch);
        write_window(&self.dir.join(&window), input.window.iter().copied())?;

        // 4. Rotate the WAL: new epoch file continues the sequence.
        self.wal.sync()?;
        let last_seq = self.wal.next_seq();
        let new_wal_name = wal_name(new_epoch);
        let mut new_wal = Wal::create(
            &self.dir.join(&new_wal_name),
            last_seq,
            self.options.sync_every,
        )?;
        new_wal.append(&WalRecord::Checkpoint { epoch: new_epoch })?;
        new_wal.sync()?;

        // 5. Compacted live set, reindexed densely for the manifest.
        let live: Vec<usize> = (0..self.segments.len())
            .filter(|&i| self.shard_map.contains(&Some(i)))
            .collect();
        let mut dense = vec![None; self.segments.len()];
        let mut kept = Vec::with_capacity(live.len());
        for (new_idx, &old_idx) in live.iter().enumerate() {
            dense[old_idx] = Some(new_idx);
            kept.push(old_idx);
        }
        let segment_names: Vec<String> = kept
            .iter()
            .map(|&i| self.segments[i].name.clone())
            .collect();
        let shard_map: Vec<Option<usize>> = (0..input.shard_count)
            .map(|s| self.shard_map[s].and_then(|old| dense[old]))
            .collect();

        // 6. Publish.
        let manifest = Manifest {
            epoch: new_epoch,
            last_seq,
            min_support: input.min_support,
            shard_count: input.shard_count,
            policy: input.policy,
            items: input.ranking_items,
            wal: new_wal_name.clone(),
            window: window.clone(),
            segments: segment_names.clone(),
            shard_map: shard_map.clone(),
            dirty: input.dirty,
        };
        manifest.write_atomic(&self.dir)?;

        // 7. Swap in the new state and delete what the old manifest
        // referenced but the new one does not.
        let mut new_segments = Vec::with_capacity(kept.len());
        let mut remaining: Vec<Option<LiveSegment>> = self.segments.drain(..).map(Some).collect();
        for &old_idx in &kept {
            new_segments.push(remaining[old_idx].take().expect("kept segment present"));
        }
        self.segments = new_segments;
        self.shard_map = shard_map;
        self.wal = new_wal;
        self.window_file = Some(window);
        self.epoch = new_epoch;
        self.checkpoints += 1;
        for name in old_files {
            if !segment_names.contains(&name) {
                std::fs::remove_file(self.dir.join(&name)).ok();
            }
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Size-tiered merge: group live segments by the binary order of
    /// magnitude of their size; any tier with `compact_threshold`+
    /// members is merged into one segment carrying the union of the
    /// shards currently mapped to its members, ordered by shard id
    /// (= sum-key order). Repeats until stable.
    fn compact(&mut self, epoch: u64, num_transactions: u64) -> io::Result<()> {
        loop {
            let mut tiers: std::collections::BTreeMap<u32, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, seg) in self.segments.iter().enumerate() {
                if self.shard_map.contains(&Some(i)) {
                    let class = 64 - seg.reader.bytes().max(1).leading_zeros();
                    tiers.entry(class).or_default().push(i);
                }
            }
            let Some((_, members)) = tiers
                .into_iter()
                .find(|(_, m)| m.len() >= self.options.compact_threshold)
            else {
                return Ok(());
            };

            let mut merged: Vec<ShardEntries> = Vec::new();
            for s in 0..self.shard_map.len() {
                if let Some(seg) = self.shard_map[s] {
                    if members.contains(&seg) {
                        let entries = self.segments[seg]
                            .reader
                            .iter_shard(s as u32)
                            .expect("mapped shard present in segment");
                        merged.push(ShardEntries {
                            shard: s as u32,
                            entries,
                        });
                    }
                }
            }
            let name = segment_name(epoch, self.seg_counter);
            self.seg_counter += 1;
            write_segment(&self.dir.join(&name), num_transactions, &merged)?;
            let reader = SegmentReader::open(&self.dir.join(&name))?;
            let idx = self.segments.len();
            self.segments.push(LiveSegment { name, reader });
            for sh in &merged {
                self.shard_map[sh.shard as usize] = Some(idx);
            }
            self.compactions += 1;
            // Old members are now unreferenced; the next loop iteration
            // recomputes tiers without them. Their files die after the
            // manifest rename.
        }
    }

    /// Records how long recovery took (set by the pipeline layer, which
    /// owns the replay).
    pub fn set_recovery(&mut self, ms: u64, replayed: u64) {
        self.recovery_ms = ms;
        self.replayed_records = replayed;
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let live: Vec<usize> = (0..self.segments.len())
            .filter(|&i| self.shard_map.contains(&Some(i)))
            .collect();
        StoreStats {
            wal_bytes: self.wal.bytes(),
            wal_records: self.wal.records(),
            segments: live.len() as u64,
            segment_bytes: live.iter().map(|&i| self.segments[i].reader.bytes()).sum(),
            compactions: self.compactions,
            checkpoints: self.checkpoints,
            spills: self.spills,
            segment_lookups: self.segment_lookups.load(Ordering::Relaxed),
            recovery_ms: self.recovery_ms,
            replayed_records: self.replayed_records,
        }
    }
}

/// Read-only introspection of a data directory for `store inspect`:
/// manifest summary, WAL record counts by type, and per-segment
/// block-index statistics, rendered as JSON.
pub fn inspect_json(dir: &Path) -> io::Result<String> {
    let manifest = Manifest::read(dir)?;
    let mut out = String::from("{\n");
    match &manifest {
        Some(m) => {
            out.push_str(&format!(
                "  \"manifest\": {{\"epoch\": {}, \"last_seq\": {}, \"min_support\": {}, \
                 \"shard_count\": {}, \"ranked_items\": {}, \"wal\": \"{}\", \"window\": \"{}\", \
                 \"segments\": {}, \"spilled_shards\": {}}},\n",
                m.epoch,
                m.last_seq,
                m.min_support,
                m.shard_count,
                m.items.len(),
                m.wal,
                m.window,
                m.segments.len(),
                m.shard_map.iter().filter(|e| e.is_some()).count(),
            ));
        }
        None => out.push_str("  \"manifest\": null,\n"),
    }

    let wal_path = match &manifest {
        Some(m) => dir.join(&m.wal),
        None => dir.join(wal_name(0)),
    };
    if wal_path.exists() {
        let records = crate::wal::read_records(&wal_path)?;
        let count = |f: fn(&WalRecord) -> bool| records.iter().filter(|r| f(&r.record)).count();
        out.push_str(&format!(
            "  \"wal\": {{\"file\": \"{}\", \"bytes\": {}, \"records\": {}, \"deltas\": {}, \
             \"reranks\": {}, \"checkpoints\": {}, \"evictions\": {}}},\n",
            wal_path.file_name().unwrap_or_default().to_string_lossy(),
            std::fs::metadata(&wal_path)?.len(),
            records.len(),
            count(|r| matches!(r, WalRecord::Delta { .. })),
            count(|r| matches!(r, WalRecord::Rerank { .. })),
            count(|r| matches!(r, WalRecord::Checkpoint { .. })),
            count(|r| matches!(r, WalRecord::Evict { .. })),
        ));
    } else {
        out.push_str("  \"wal\": null,\n");
    }

    out.push_str("  \"segments\": [");
    let names: Vec<String> = manifest.map(|m| m.segments).unwrap_or_default();
    for (i, name) in names.iter().enumerate() {
        let reader = SegmentReader::open(&dir.join(name))?;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"bytes\": {}, \"num_transactions\": {}, \"shards\": [",
            name,
            reader.bytes(),
            reader.num_transactions(),
        ));
        for (j, st) in reader.stats().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {}, \"entries\": {}, \"blocks\": {}, \"payload_bytes\": {}}}",
                st.shard, st.entries, st.blocks, st.payload_bytes
            ));
        }
        out.push_str("]}");
    }
    if names.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push('}');
    Ok(out)
}
