//! Differential suite for the arena conditional engine: on random and
//! generated databases, the arena path must produce the *exact* frequent
//! family (itemsets and supports) of the legacy map engine, the top-down
//! miner, and the FP-growth baseline — sequentially, in parallel, and
//! under pool reuse.

use plt::baselines::FpGrowthMiner;
use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::Miner;
use plt::data::{DenseConfig, DenseGenerator, QuestConfig, QuestGenerator};
use plt::parallel::ParallelPltMiner;
use plt::{ArenaPool, CondEngine, ConditionalMiner, RankPolicy, TopDownMiner};
use proptest::prelude::*;

/// Everything that must agree with the arena engine.
fn references() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(ConditionalMiner::with_engine(CondEngine::Map)),
        Box::new(TopDownMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(ParallelPltMiner::with_engine(CondEngine::Map)),
    ]
}

fn assert_arena_agrees(db: &[Vec<u32>], min_support: u64, label: &str) {
    let arena = ConditionalMiner::default().mine(db, min_support);
    arena
        .check_anti_monotone()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let expect = arena.sorted();
    for miner in references() {
        assert_eq!(
            miner.mine(db, min_support).sorted(),
            expect,
            "{label}: arena disagrees with {}",
            miner.name()
        );
    }
    let par = ParallelPltMiner::default().mine(db, min_support);
    assert_eq!(par.sorted(), expect, "{label}: parallel arena disagrees");
}

#[test]
fn arena_agrees_on_sparse_quest_data() {
    let db = QuestGenerator::new(QuestConfig::t5i2(700))
        .generate()
        .into_transactions();
    assert_arena_agrees(&db, 7, "quest 1%");
    assert_arena_agrees(&db, 35, "quest 5%");
}

#[test]
fn arena_agrees_on_dense_data() {
    let db = DenseGenerator::new(DenseConfig {
        num_transactions: 350,
        num_items: 12,
        density_hi: 0.85,
        density_lo: 0.2,
        seed: 0xa12e,
    })
    .generate()
    .into_transactions();
    assert_arena_agrees(&db, 175, "dense 50%");
    assert_arena_agrees(&db, 70, "dense 20%");
    assert_arena_agrees(&db, 35, "dense 10%");
}

#[test]
fn arena_agrees_under_every_rank_policy() {
    let db = QuestGenerator::new(QuestConfig::t5i2(400))
        .generate()
        .into_transactions();
    for policy in [
        RankPolicy::Lexicographic,
        RankPolicy::FrequencyAscending,
        RankPolicy::FrequencyDescending,
    ] {
        let arena = ConditionalMiner {
            rank_policy: policy,
            engine: CondEngine::Arena,
        };
        let map = ConditionalMiner {
            rank_policy: policy,
            engine: CondEngine::Map,
        };
        assert_eq!(
            arena.mine(&db, 8).sorted(),
            map.mine(&db, 8).sorted(),
            "{policy:?}"
        );
    }
}

#[test]
fn one_pool_across_heterogeneous_databases() {
    // The parallel workers reuse one pool across many conditional
    // databases; mimic that lifecycle across whole PLTs of very different
    // shapes and make sure no state leaks between runs.
    let mut pool = ArenaPool::new();
    let sparse = QuestGenerator::new(QuestConfig::t5i2(300))
        .generate()
        .into_transactions();
    let dense = DenseGenerator::new(DenseConfig {
        num_transactions: 200,
        num_items: 10,
        density_hi: 0.9,
        density_lo: 0.3,
        seed: 7,
    })
    .generate()
    .into_transactions();
    for db in [&sparse, &dense, &sparse, &dense] {
        for min_support in [3u64, 20, 60] {
            let plt = construct(db, min_support, ConstructOptions::conditional()).unwrap();
            let reused = pool.mine_plt(&plt);
            let fresh = ConditionalMiner::with_engine(CondEngine::Map).mine_plt(&plt);
            assert_eq!(reused.sorted(), fresh.sorted(), "min_support {min_support}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sparse-ish databases: wide universe, short transactions.
    #[test]
    fn prop_arena_matches_references_sparse(
        db in proptest::collection::vec(
            proptest::collection::btree_set(0u32..40, 1..8),
            1..50,
        ),
        min_support in 1u64..5,
    ) {
        let db: Vec<Vec<u32>> = db.into_iter().map(|t| t.into_iter().collect()).collect();
        assert_arena_agrees(&db, min_support, "prop sparse");
    }

    /// Random dense databases: narrow universe, long transactions.
    #[test]
    fn prop_arena_matches_references_dense(
        db in proptest::collection::vec(
            proptest::collection::btree_set(0u32..9, 2..9),
            1..40,
        ),
        min_support in 1u64..6,
    ) {
        let db: Vec<Vec<u32>> = db.into_iter().map(|t| t.into_iter().collect()).collect();
        assert_arena_agrees(&db, min_support, "prop dense");
    }
}
