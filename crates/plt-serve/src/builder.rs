//! Background snapshot builder: ingests transactions, republishes.
//!
//! The builder owns a [`ShardedPipeline`] (plt-shard) on its own thread.
//! `INGEST` batches arrive over a channel; after each batch the builder
//! applies the delta **incrementally** — only the rank-range shards the
//! batch touches are re-mined, clean fragments are reused, and a
//! vocabulary drift falls back to a full re-rank on its own — assembles
//! a fresh [`Snapshot`], and publishes it to the [`Engine`] — a pointer
//! swap, so in-flight readers keep their generation and new readers see
//! the new one. Queries never wait on mining, and rebuild cost scales
//! with the dirty shards, not the window.
//!
//! A rebuild that panics does **not** kill the service: the unwind is
//! caught, the failure is counted ([`Metrics::builder_failures`]
//! (crate::metrics::Metrics::builder_failures)), the engine is marked
//! [`Stale`](crate::engine::ServingState::Stale), and the last good
//! snapshot keeps answering — with `stale: true` on every response —
//! until a later rebuild succeeds. `flush` acks the *old* generation on
//! failure, so waiting ingesters never hang on a dead rebuild.

use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use plt_approx::{IndicatorSketch, SampledRebuild, SketchConfig};
use plt_core::item::{Item, Support};
use plt_core::{Plt, RankPolicy};
use plt_rules::RuleConfig;
use plt_shard::{Delta, RebuildReport, ShardConfig, ShardedPipeline, DEFAULT_SHARD_COUNT};
use plt_store::{DurableOptions, DurablePipeline, StoreError};

use crate::engine::Engine;
use crate::fault::FaultPlan;
use crate::snapshot::Snapshot;

/// How each publish turns the applied window into a snapshot index.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum RebuildMode {
    /// Incremental shard re-mine (the default): only dirty rank-range
    /// shards are re-mined and clean fragments reused.
    #[default]
    Incremental,
    /// Toivonen-style sampled re-mine of the whole window: mine a
    /// sample at a slacked threshold, verify the negative border against
    /// the full window, and fall back to an exact re-mine on a border
    /// violation — so the published snapshot is exact either way. The
    /// attempt/violation/fallback tally lands in
    /// [`Metrics::sampled_report`](crate::metrics::Metrics::sampled_report).
    Sampled(SampledRebuild),
}

impl std::str::FromStr for RebuildMode {
    type Err = String;

    fn from_str(s: &str) -> Result<RebuildMode, String> {
        match s {
            "incremental" => Ok(RebuildMode::Incremental),
            "sampled" => Ok(RebuildMode::Sampled(SampledRebuild::default())),
            other => Err(format!(
                "unknown rebuild mode {other:?} (expected \"incremental\" or \"sampled\")"
            )),
        }
    }
}

/// Builder configuration.
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Sliding-window capacity in transactions.
    pub window_capacity: usize,
    /// Mining threshold (absolute support).
    pub min_support: Support,
    /// Item-ranking policy for the window's PLT.
    pub rank_policy: RankPolicy,
    /// Number of rank-range shards the incremental pipeline partitions
    /// the tree into (see [`plt_shard`]).
    pub shard_count: usize,
    /// Confidence threshold for precomputed recommendation rules.
    pub rule_config: RuleConfig,
    /// Deterministic fault injection for rebuilds (the warmup build is
    /// never faulted — a service that cannot bootstrap should fail
    /// loudly). `None` in production.
    pub fault: Option<Arc<FaultPlan>>,
    /// Data directory for the durable store (WAL + segments + manifest,
    /// see [`plt_store`]). `None` runs fully in memory. When set,
    /// [`bootstrap`] recovers any existing state first and the `warmup`
    /// transactions are applied only on a fresh (empty) directory, so a
    /// restarted service does not double-count its seed data.
    pub data_dir: Option<PathBuf>,
    /// Durable-store policy (fsync batching, resident-shard budget,
    /// checkpoint cadence). Ignored unless `data_dir` is set.
    pub durable: DurableOptions,
    /// How publishes re-mine the window (incremental shard re-mine, or
    /// Toivonen-style sampled re-mine with exact fallback).
    pub rebuild_mode: RebuildMode,
    /// When set, the builder maintains an [`IndicatorSketch`] alongside
    /// the window and attaches it to every published snapshot, giving
    /// the query planner an `APPROX`-tier support path that never
    /// touches the index. The sketch's `capacity` is overridden with
    /// [`window_capacity`](BuilderConfig::window_capacity) so its FIFO
    /// eviction mirrors the pipeline's sliding window.
    pub sketch: Option<SketchConfig>,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        BuilderConfig {
            window_capacity: 100_000,
            min_support: 2,
            rank_policy: RankPolicy::default(),
            shard_count: DEFAULT_SHARD_COUNT,
            rule_config: RuleConfig::default(),
            fault: None,
            data_dir: None,
            durable: DurableOptions::default(),
            rebuild_mode: RebuildMode::default(),
            sketch: None,
        }
    }
}

/// The builder's mining state: plain in-memory pipeline, or the same
/// pipeline wrapped in the durable store (WAL-before-apply, cold-shard
/// spilling, checkpoints).
enum Pipe {
    Memory(Box<ShardedPipeline>),
    Durable(Box<DurablePipeline>),
}

impl Pipe {
    fn apply(&mut self, delta: Delta) -> Result<RebuildReport, StoreError> {
        match self {
            Pipe::Memory(p) => p.apply(delta).map_err(StoreError::from),
            Pipe::Durable(p) => p.apply(delta),
        }
    }

    fn snapshot(&self, generation: u64, rule_config: RuleConfig) -> Snapshot {
        match self {
            Pipe::Memory(p) => {
                Snapshot::build(generation, p.plt().clone(), p.result(), rule_config)
            }
            // The durable pipeline owns the merged result (its inner
            // pipeline runs with deferred merging).
            Pipe::Durable(p) => Snapshot::build(
                generation,
                p.pipeline().plt().clone(),
                p.result(),
                rule_config,
            ),
        }
    }

    /// The sliding window as owned transactions — the sampled rebuild
    /// and sketch warmup both need to walk it.
    fn window_vec(&self) -> Vec<Vec<Item>> {
        match self {
            Pipe::Memory(p) => p.window().map(<[Item]>::to_vec).collect(),
            Pipe::Durable(p) => p.pipeline().window().map(<[Item]>::to_vec).collect(),
        }
    }

    fn plt_clone(&self) -> Plt {
        match self {
            Pipe::Memory(p) => p.plt().clone(),
            Pipe::Durable(p) => p.pipeline().plt().clone(),
        }
    }

    /// Mirrors store gauges into the metrics registry (no-op in memory).
    fn record_storage(&self, engine: &Engine) {
        if let Pipe::Durable(p) = self {
            engine.metrics().storage.record(&p.store_stats());
        }
    }

    /// Final durability point on clean shutdown: checkpoint + fsync, so
    /// the next open replays an empty WAL tail.
    fn shutdown(&mut self) {
        if let Pipe::Durable(p) = self {
            let _ = p.checkpoint();
            let _ = p.sync();
        }
    }
}

enum Msg {
    Ingest(Vec<Vec<Item>>),
    /// Rebuild + publish even without new data, then ack.
    Flush(Sender<u64>),
    Stop,
}

/// Handle to the builder thread. Dropping it without [`stop`] detaches
/// the thread (it exits when the channel closes).
pub struct BuilderHandle {
    tx: Sender<Msg>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for BuilderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuilderHandle").finish_non_exhaustive()
    }
}

impl BuilderHandle {
    /// Queues a batch of transactions. Returns `false` if the builder
    /// thread has exited.
    pub fn ingest(&self, transactions: Vec<Vec<Item>>) -> bool {
        self.tx.send(Msg::Ingest(transactions)).is_ok()
    }

    /// Forces a rebuild/publish and waits for it; returns the published
    /// generation, or `None` if the builder has exited.
    pub fn flush(&self) -> Option<u64> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Msg::Flush(ack_tx)).ok()?;
        ack_rx.recv().ok()
    }

    /// A cloneable submission handle for connection threads (`Sender`
    /// is `Send + Clone`, so each thread carries its own).
    pub fn queue(&self) -> IngestQueue {
        IngestQueue {
            tx: self.tx.clone(),
        }
    }

    /// Stops the builder thread and joins it.
    pub fn stop(mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Per-thread handle for submitting work to the builder.
#[derive(Clone)]
pub struct IngestQueue {
    tx: Sender<Msg>,
}

impl std::fmt::Debug for IngestQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestQueue").finish_non_exhaustive()
    }
}

impl IngestQueue {
    /// Queues a batch; `false` if the builder has exited.
    pub fn ingest(&self, transactions: Vec<Vec<Item>>) -> bool {
        self.tx.send(Msg::Ingest(transactions)).is_ok()
    }

    /// Rebuild + publish, waiting for the new generation.
    pub fn flush(&self) -> Option<u64> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Msg::Flush(ack_tx)).ok()?;
        ack_rx.recv().ok()
    }
}

/// Builds the initial snapshot from `warmup`, wraps it in an engine, and
/// spawns the background builder.
///
/// With [`BuilderConfig::data_dir`] set, the service opens the durable
/// store first: an existing directory is recovered (manifest + WAL-tail
/// replay) and becomes the authoritative state — `warmup` is applied
/// only when the recovered window is empty, so restarting with the same
/// seed file does not double-count it.
///
/// Returns the shared engine (for servers / direct callers) and the
/// builder handle (for the ingest path).
pub fn bootstrap(
    warmup: &[Vec<Item>],
    config: BuilderConfig,
) -> Result<(Arc<Engine>, BuilderHandle), StoreError> {
    let shard_config = ShardConfig {
        shard_count: config.shard_count,
        min_support: config.min_support,
        rank_policy: config.rank_policy,
        capacity: Some(config.window_capacity),
        ..ShardConfig::default()
    };
    let mut pipeline = match &config.data_dir {
        Some(dir) => {
            // The snapshot index is built from the merged result, so the
            // builder always materializes it regardless of the caller's
            // durable options.
            let mut durable_options = config.durable;
            durable_options.materialize_merged = true;
            let mut durable = DurablePipeline::open(dir, shard_config, durable_options)?;
            if durable.is_empty() && !warmup.is_empty() {
                durable.apply(Delta::add(warmup.to_vec()))?;
            }
            Pipe::Durable(Box::new(durable))
        }
        None => Pipe::Memory(Box::new(ShardedPipeline::new(warmup, shard_config)?)),
    };
    // Warm the sketch from the pipeline's own window, not from `warmup`:
    // on a durable restart the recovered window is the authoritative
    // state, and the sketch must mirror it transaction for transaction.
    let mut sketch = config.sketch.map(|mut sketch_config| {
        sketch_config.capacity = config.window_capacity;
        let mut sk = IndicatorSketch::new(sketch_config);
        for t in pipeline.window_vec() {
            sk.observe(&t);
        }
        sk
    });
    let mut snapshot = pipeline.snapshot(1, config.rule_config);
    if let Some(sk) = &sketch {
        snapshot = snapshot.with_sketch(Box::new(sk.clone()));
    }
    let engine = Arc::new(Engine::new(snapshot));
    pipeline.record_storage(&engine);
    if let Pipe::Durable(p) = &pipeline {
        let r = p.recovery();
        engine
            .metrics()
            .storage
            .recovery_ms
            .store(r.recovery_ms, std::sync::atomic::Ordering::Relaxed);
        engine
            .metrics()
            .storage
            .replayed_records
            .store(r.replayed_deltas, std::sync::atomic::Ordering::Relaxed);
    }

    let (tx, rx) = mpsc::channel::<Msg>();
    let engine_for_thread = engine.clone();
    let rule_config = config.rule_config;
    let rebuild_mode = config.rebuild_mode;
    let min_support = config.min_support;
    let fault = config.fault.clone();
    let thread = std::thread::Builder::new()
        .name("plt-snapshot-builder".into())
        .spawn(move || {
            let mut generation = 1u64;
            'serve: while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Ingest(mut batch) => {
                        // Drain any queued batches so one rebuild covers
                        // them all — rebuilds are the expensive part.
                        loop {
                            match rx.try_recv() {
                                Ok(Msg::Ingest(more)) => batch.extend(more),
                                Ok(Msg::Flush(ack)) => {
                                    generation = ingest_and_publish(
                                        &mut pipeline,
                                        &engine_for_thread,
                                        std::mem::take(&mut batch),
                                        generation,
                                        rule_config,
                                        rebuild_mode,
                                        min_support,
                                        &mut sketch,
                                        fault.as_deref(),
                                    );
                                    let _ = ack.send(generation);
                                }
                                Ok(Msg::Stop) | Err(mpsc::TryRecvError::Disconnected) => {
                                    break 'serve;
                                }
                                Err(mpsc::TryRecvError::Empty) => break,
                            }
                        }
                        if !batch.is_empty() {
                            generation = ingest_and_publish(
                                &mut pipeline,
                                &engine_for_thread,
                                batch,
                                generation,
                                rule_config,
                                rebuild_mode,
                                min_support,
                                &mut sketch,
                                fault.as_deref(),
                            );
                        }
                    }
                    Msg::Flush(ack) => {
                        generation = ingest_and_publish(
                            &mut pipeline,
                            &engine_for_thread,
                            Vec::new(),
                            generation,
                            rule_config,
                            rebuild_mode,
                            min_support,
                            &mut sketch,
                            fault.as_deref(),
                        );
                        let _ = ack.send(generation);
                    }
                    Msg::Stop => break 'serve,
                }
            }
            // Clean shutdown: checkpoint + fsync the durable store so
            // the next open has no WAL tail to replay.
            pipeline.shutdown();
        })
        .expect("spawn builder thread");

    Ok((
        engine,
        BuilderHandle {
            tx,
            thread: Some(thread),
        },
    ))
}

/// One rebuild: apply the batch as an incremental delta, re-mine the
/// dirty shards, publish. Returns the new generation — or the *old* one
/// if the rebuild panicked, in which case the engine is marked stale and
/// keeps serving the last good snapshot. The pipeline retains the applied
/// batch either way, so a later successful rebuild still covers it.
#[allow(clippy::too_many_arguments)]
fn ingest_and_publish(
    pipeline: &mut Pipe,
    engine: &Engine,
    batch: Vec<Vec<Item>>,
    generation: u64,
    rule_config: RuleConfig,
    rebuild_mode: RebuildMode,
    min_support: Support,
    sketch: &mut Option<IndicatorSketch>,
    fault: Option<&FaultPlan>,
) -> u64 {
    let started = std::time::Instant::now();
    engine.mark_rebuilding();
    // The sketch consumes the batch before the pipeline does, so its
    // FIFO window slides in lockstep with the pipeline's.
    if let Some(sk) = sketch.as_mut() {
        for t in &batch {
            sk.observe(t);
        }
    }
    // Incremental update: the delta dirties only the shards whose rank
    // ranges it touches; clean fragments are reused, and a vocabulary
    // drift falls back to a full re-rank + re-mine inside `apply`. On the
    // durable path the delta hits the WAL before the in-memory apply.
    let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pipeline.apply(Delta::add(batch))
    }));
    let report = match applied {
        Ok(Ok(report)) => report,
        // An apply error or panic is absorbed like a failed rebuild: the
        // last good snapshot keeps answering. The pipeline documents that
        // it stays internally consistent, so later batches can still land.
        Ok(Err(_)) | Err(_) => {
            engine.mark_stale();
            return generation;
        }
    };
    engine
        .metrics()
        .record_shards(report.dirty_shards as u64, report.total_shards as u64);
    pipeline.record_storage(engine);
    let applied_at = started.elapsed();
    let next = generation + 1;
    // The pipeline is consistent past this point; snapshot assembly reads
    // it immutably, so catching its unwind is sound.
    let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plan) = fault {
            plan.maybe_builder_panic();
        }
        match rebuild_mode {
            RebuildMode::Incremental => pipeline.snapshot(next, rule_config),
            // Sampled fast path: re-mine the whole window from a sample,
            // verifying the negative border (exact fallback on a
            // violation), so the snapshot's contents match what the
            // incremental path would publish.
            RebuildMode::Sampled(sampler) => {
                let window = pipeline.window_vec();
                let (result, outcome) = sampler.mine(&window, min_support, next);
                engine.metrics().record_sampled(&outcome);
                Snapshot::build(next, pipeline.plt_clone(), &result, rule_config)
            }
        }
    }));
    let total = started.elapsed();
    // Phase durations feed the metrics registry whether the rebuild
    // landed or was absorbed — failed passes cost real time too. Phase
    // mapping: push = structural update, rerank = dirty-shard re-mine +
    // fragment merge, snapshot = snapshot assembly.
    engine.metrics().record_rebuild(
        report.update,
        report.remine + report.merge,
        total - applied_at,
        total,
    );
    match rebuilt {
        Ok(mut snapshot) => {
            if let Some(sk) = sketch.as_ref() {
                snapshot = snapshot.with_sketch(Box::new(sk.clone()));
            }
            engine.publish(Arc::new(snapshot));
            next
        }
        Err(_) => {
            engine.mark_stale();
            generation
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::json::Json;
    use crate::proto::Request;
    use std::sync::atomic::Ordering;

    fn warmup() -> Vec<Vec<Item>> {
        vec![vec![0, 1], vec![0, 1], vec![0, 2]]
    }

    fn config() -> BuilderConfig {
        BuilderConfig {
            window_capacity: 1000,
            min_support: 2,
            ..BuilderConfig::default()
        }
    }

    #[test]
    fn bootstrap_serves_the_warmup_generation() {
        let (engine, builder) = bootstrap(&warmup(), config()).unwrap();
        let snap = engine.current();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.support(&[0, 1]).support, 2);
        builder.stop();
    }

    #[test]
    fn ingest_publishes_new_generations() {
        let (engine, builder) = bootstrap(&warmup(), config()).unwrap();
        assert!(builder.ingest(vec![vec![0, 2], vec![0, 2]]));
        let generation = builder.flush().expect("builder alive");
        assert!(generation >= 2);
        let snap = engine.current();
        assert_eq!(snap.generation(), generation);
        // {0,2} appeared once in warmup + twice ingested = 3.
        assert_eq!(snap.support(&[0, 2]).support, 3);
        builder.stop();
    }

    #[test]
    fn flush_without_data_still_bumps_generation() {
        let (engine, builder) = bootstrap(&warmup(), config()).unwrap();
        let g1 = builder.flush().unwrap();
        let g2 = builder.flush().unwrap();
        assert!(g2 > g1);
        assert_eq!(engine.current().generation(), g2);
        builder.stop();
    }

    #[test]
    fn panicking_rebuilds_degrade_to_the_last_good_snapshot() {
        // Every rebuild panics: the warmup snapshot must keep serving,
        // flush must ack (with the old generation) instead of hanging,
        // and the failures must be counted and surfaced as staleness.
        let fault = FaultPlan::shared(FaultConfig {
            builder_panic: 1.0,
            ..FaultConfig::disabled(11)
        });
        let cfg = BuilderConfig {
            fault: Some(fault),
            ..config()
        };
        let (engine, builder) = bootstrap(&warmup(), cfg).unwrap();
        assert_eq!(engine.current().generation(), 1);

        assert!(builder.ingest(vec![vec![0, 1], vec![0, 1]]));
        let acked = builder.flush().expect("flush must ack, not hang");
        assert_eq!(acked, 1, "failed rebuild acks the old generation");
        assert!(engine.is_stale());
        assert_eq!(engine.current().generation(), 1);
        assert!(engine.metrics().builder_failures.load(Ordering::Relaxed) >= 1);

        // Queries still answer, flagged stale, from the warmup window.
        let v = Json::parse(&engine.handle(&Request::Support { items: vec![0, 1] })).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("support").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("stale").unwrap().as_bool(), Some(true));
        builder.stop();
    }

    #[test]
    fn rebuild_phases_are_recorded_and_served() {
        let (engine, builder) = bootstrap(&warmup(), config()).unwrap();
        builder.ingest(vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        builder.flush().expect("builder alive");
        let (rebuilds, _push, _rerank, _snap, total) = engine.metrics().rebuild_report();
        assert!(rebuilds >= 1, "flush must record a rebuild pass");
        assert!(total >= 1, "a real rebuild takes at least a microsecond");
        // And the stats endpoint exposes the same accumulators.
        let v = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        let rebuild = v.get("rebuild").expect("stats carries a rebuild block");
        assert_eq!(rebuild.get("rebuilds").unwrap().as_u64(), Some(rebuilds));
        assert_eq!(rebuild.get("total_us").unwrap().as_u64(), Some(total));
        builder.stop();
    }

    #[test]
    fn durable_bootstrap_recovers_across_restart() {
        let dir = std::env::temp_dir().join(format!(
            "plt-serve-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = BuilderConfig {
            data_dir: Some(dir.clone()),
            ..config()
        };
        let (engine, builder) = bootstrap(&warmup(), cfg.clone()).unwrap();
        assert!(builder.ingest(vec![vec![0, 2], vec![0, 2]]));
        builder.flush().expect("builder alive");
        assert_eq!(engine.current().support(&[0, 2]).support, 3);
        builder.stop(); // checkpoints + fsyncs on the way out
        drop(engine);

        // Restart with the same warmup: the recovered state is
        // authoritative, so the warmup must not be double-counted.
        let (engine, builder) = bootstrap(&warmup(), cfg).unwrap();
        assert_eq!(engine.current().support(&[0, 2]).support, 3);
        assert_eq!(engine.current().support(&[0, 1]).support, 2);
        // The stats endpoint now carries the storage block.
        let v = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        let storage = v.get("storage").expect("storage block present");
        assert!(storage.get("segments").unwrap().as_u64().unwrap() >= 1);
        builder.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queries_keep_working_across_publishes() {
        let (engine, builder) = bootstrap(&warmup(), config()).unwrap();
        for round in 0..5 {
            builder.ingest(vec![vec![0, 1], vec![1, 2]]);
            builder.flush();
            let response = engine.handle(&Request::Support { items: vec![0] });
            let v = Json::parse(&response).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "round {round}");
        }
        builder.stop();
    }
}
