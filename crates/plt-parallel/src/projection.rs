//! Per-item projections of a PLT — the parallel work units.
//!
//! The sequential conditional miner (Algorithm 3) peels items off one at a
//! time, folding prefixes back as it goes; that fold creates a sequential
//! dependency between items. For parallel mining we instead compute every
//! item's conditional database directly from the *original* PLT in one
//! pass: vector `V` with ranks `r_1 < … < r_k` contributes its prefix
//! before `r_i` to item `r_i`'s database, for every `i`. The two
//! formulations count identically (each transaction containing item `j`
//! contributes its sub-`j` prefix exactly once either way), but the direct
//! one makes the per-item units independent.

use plt_core::item::{Rank, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;

/// All per-item projections of a PLT.
#[derive(Debug, Clone)]
pub struct Projections {
    /// Indexed by `rank − 1`: the item's support and conditional database
    /// (prefix vectors with frequencies; duplicates unmerged — the
    /// conditional construction merges them).
    by_rank: Vec<(Support, Vec<(PositionVector, Support)>)>,
}

impl Projections {
    /// Number of ranked items covered.
    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    /// True when the PLT had no ranked items.
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// Support of the item holding `rank`, as observed in the vectors.
    pub fn support(&self, rank: Rank) -> Support {
        self.by_rank[(rank - 1) as usize].0
    }

    /// Conditional database of the item holding `rank`.
    pub fn conditional(&self, rank: Rank) -> &[(PositionVector, Support)] {
        &self.by_rank[(rank - 1) as usize].1
    }
}

/// Builds every item's projection in a single pass over the PLT.
pub fn project_all(plt: &Plt) -> Projections {
    let n = plt.ranking().len();
    let mut by_rank: Vec<(Support, Vec<(PositionVector, Support)>)> = vec![(0, Vec::new()); n];
    for (v, e) in plt.iter() {
        let ranks = v.ranks();
        for (i, &r) in ranks.iter().enumerate() {
            let slot = &mut by_rank[(r - 1) as usize];
            slot.0 += e.freq;
            if i > 0 {
                let prefix = PositionVector::from_ranks(&ranks[..i]).expect("non-empty prefix");
                slot.1.push((prefix, e.freq));
            }
        }
    }
    Projections { by_rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::item::Item;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn supports_match_item_scan() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        assert_eq!(proj.len(), 4);
        assert_eq!(proj.support(1), 4); // A
        assert_eq!(proj.support(2), 5); // B
        assert_eq!(proj.support(3), 5); // C
        assert_eq!(proj.support(4), 4); // D
    }

    #[test]
    fn conditional_of_top_rank_matches_figure5() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        let mut cd: Vec<(PositionVector, Support)> = proj.conditional(4).to_vec();
        cd.sort();
        assert_eq!(
            cd,
            vec![
                (pv(&[1, 1]), 1),
                (pv(&[1, 1, 1]), 1),
                (pv(&[2, 1]), 1),
                (pv(&[3]), 1),
            ]
        );
    }

    #[test]
    fn conditional_of_lowest_rank_is_empty() {
        // Rank 1 is the smallest item; nothing precedes it.
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        assert!(proj.conditional(1).is_empty());
    }

    #[test]
    fn intermediate_rank_projects_prefixes_only() {
        // Item C (rank 3): contained in ABC×2, ABCD, BCD, CD. Prefixes:
        // AB×3 (from ABC×2 + ABCD), B×1 (BCD), none for CD (C is first).
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        let mut total: Support = 0;
        for (v, f) in proj.conditional(3) {
            assert!(v.sum() < 3);
            total += f;
        }
        // 4 prefix-contributing occurrences (ABC×2, ABCD, BCD).
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_plt_projects_nothing() {
        let db: Vec<Vec<Item>> = vec![];
        let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
        assert!(project_all(&plt).is_empty());
    }
}
