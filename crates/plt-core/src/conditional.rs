//! Algorithm 3 — the conditional mining approach (§5.1).
//!
//! A pattern-growth miner in the FP-growth family, driven entirely by the
//! position-vector encoding:
//!
//! * the conditional database of the highest-ranked unprocessed item `j` is
//!   *exactly* the set of vectors whose cached **sum** equals `j`
//!   (Lemma 4.1.1: the sum is the rank of the last item) — no node links or
//!   header chains as in the FP-tree;
//! * the support of `suffix ∪ {item(j)}` is the total frequency of those
//!   vectors;
//! * each such vector is folded back into the working structure with its
//!   last position removed ("for each vector support D a new vector is
//!   constructed by removing the last position value and inserting this
//!   vector into the proper partition in the original database") so that
//!   the transaction keeps supporting its remaining items;
//! * if the extension is frequent, a **conditional PLT** is built from the
//!   removed-last-position vectors — re-filtered against the minimum
//!   support so the anti-monotone property prunes the recursion — and the
//!   process recurses ("a new conditional database is constructed as long
//!   as the produced itemset is frequent").
//!
//! Items are processed "in reverse lexicographic order", i.e. by descending
//! rank, both at the top level and inside every conditional structure.

use std::collections::BTreeMap;

use crate::construct::{construct, ConstructOptions};
use crate::hash::FxHashMap;
use crate::item::{Item, Itemset, Rank, Support};
use crate::miner::{Miner, MiningResult};
use crate::plt::Plt;
use crate::posvec::PositionVector;
use crate::ranking::RankPolicy;

/// Working representation of a (conditional) PLT during mining: vectors
/// grouped by their sum. `BTreeMap` gives us "maximum rank present" and
/// descending iteration for free; the inner map deduplicates identical
/// vectors exactly as PLT partitions do.
pub(crate) type SumGroups = BTreeMap<Rank, FxHashMap<PositionVector, Support>>;

/// Which conditional-mining engine to run.
///
/// Both engines implement the same Algorithm 3 and produce identical
/// results (itemsets and supports); they differ only in working-set
/// layout and therefore speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CondEngine {
    /// Flat arena layout ([`crate::arena`]): contiguous position buffer,
    /// dense sum buckets, O(1) prefix fold-back, zero steady-state
    /// allocations. The default.
    #[default]
    Arena,
    /// The original map layout (`BTreeMap` of hash maps, one boxed-slice
    /// vector per prefix). Kept for differential testing and as the
    /// reference rendering of the paper's pseudocode.
    Map,
}

/// The conditional (pattern-growth) miner.
///
/// # Examples
///
/// ```
/// use plt_core::{ConditionalMiner, Miner};
///
/// let db = vec![vec![1, 2], vec![1, 2], vec![2, 3]];
/// let result = ConditionalMiner::default().mine(&db, 2);
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// assert_eq!(result.support(&[2]), Some(3));
/// assert!(!result.contains(&[3])); // support 1 < 2
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConditionalMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
    /// Working-set layout for the mining recursion.
    pub engine: CondEngine,
}

impl ConditionalMiner {
    /// Miner with a specific rank policy.
    ///
    /// Prefer constructing miners through `plt-shard`'s `MinerBuilder`,
    /// which configures every engine through one path.
    pub fn with_policy(rank_policy: RankPolicy) -> Self {
        ConditionalMiner {
            rank_policy,
            engine: CondEngine::default(),
        }
    }

    /// Miner with a specific engine.
    ///
    /// Prefer constructing miners through `plt-shard`'s `MinerBuilder`,
    /// which configures every engine through one path.
    pub fn with_engine(engine: CondEngine) -> Self {
        ConditionalMiner {
            rank_policy: RankPolicy::default(),
            engine,
        }
    }

    /// The map-engine path: rebuild sum-groups from the PLT and recurse.
    fn mine_plt_map(&self, plt: &Plt) -> MiningResult {
        let mut groups: SumGroups = BTreeMap::new();
        for (v, e) in plt.iter() {
            *groups
                .entry(e.sum)
                .or_default()
                .entry(v.clone())
                .or_insert(0) += e.freq;
        }
        let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
        let mut suffix = Vec::new();
        mine_groups(groups, plt, &mut suffix, &mut result);
        result
    }
}

/// The recursive core — the paper's `Mining(PLT, itemset)`.
///
/// `groups` is the current (conditional) PLT; `suffix` holds the global
/// ranks of the items already fixed, in the (descending) order they were
/// chosen.
fn mine_groups(
    mut groups: SumGroups,
    plt: &Plt,
    suffix: &mut Vec<Rank>,
    result: &mut MiningResult,
) {
    // "For j = Max down to 1": peel the highest sum until none remain.
    while let Some((&j, _)) = groups.iter().next_back() {
        let group = groups.remove(&j).expect("key just observed");
        let support: Support = group.values().sum();

        // Conditional_Construct: fold each vector's prefix back into the
        // working structure (it must keep supporting its smaller items
        // regardless of whether `j` is frequent), and collect the prefixes
        // as item `j`'s conditional database CD_j.
        let mut conditional: Vec<(PositionVector, Support)> = Vec::new();
        for (v, f) in group {
            if let Some(prefix) = v.parent() {
                let prefix_sum = prefix.sum();
                *groups
                    .entry(prefix_sum)
                    .or_default()
                    .entry(prefix.clone())
                    .or_insert(0) += f;
                conditional.push((prefix, f));
            }
        }

        if support < plt.min_support() {
            // "If the new extension is no longer frequent, there is no need
            // for a new conditional database."
            continue;
        }

        suffix.push(j);
        let items = plt.ranking().items_for_ranks(suffix);
        result.insert(Itemset::from_sorted(items), support);

        // CPLT = PLT_Construction(CD_j, min_sup): re-run the two-scan
        // construction *within* the conditional database — count item
        // (rank) frequencies, drop locally infrequent ranks, re-encode.
        let cplt = conditional_construct(&conditional, plt.min_support());
        if !cplt.is_empty() {
            mine_groups(cplt, plt, suffix, result);
        }
        suffix.pop();
    }
}

/// Builds a conditional PLT (as sum-groups) from prefix vectors, filtering
/// ranks that are infrequent within the conditional database. Ranks remain
/// global — positions are recomputed as deltas over the surviving ranks, so
/// every lemma keeps holding inside conditional structures.
pub(crate) fn conditional_construct(
    conditional: &[(PositionVector, Support)],
    min_support: Support,
) -> SumGroups {
    // Scan 1 (local): rank frequencies within CD_j.
    let mut counts: FxHashMap<Rank, Support> = FxHashMap::default();
    for (v, f) in conditional {
        for r in v.ranks_iter() {
            *counts.entry(r).or_insert(0) += f;
        }
    }

    // Scan 2 (local): filter and re-encode.
    let mut groups: SumGroups = BTreeMap::new();
    let mut kept: Vec<Rank> = Vec::new();
    for (v, f) in conditional {
        kept.clear();
        kept.extend(v.ranks_iter().filter(|r| counts[r] >= min_support));
        if kept.is_empty() {
            continue;
        }
        let filtered = PositionVector::from_ranks(&kept).expect("strictly increasing ranks");
        let sum = filtered.sum();
        *groups.entry(sum).or_default().entry(filtered).or_insert(0) += f;
    }
    groups
}

/// The PLT-level entry point: the recursion is reported as a
/// `mine/conditional` span, and the arena engine flushes its `arena.*`
/// counters into the recorder. (Implemented with a qualified path so the
/// two `mine` methods never collide inside this module.)
impl crate::miner::Mine for ConditionalMiner {
    fn mine(&self, plt: &Plt, obs: &mut plt_obs::Obs) -> MiningResult {
        let t0 = obs.start();
        let result = match self.engine {
            CondEngine::Arena => {
                let mut pool = crate::arena::ArenaPool::new();
                let result = pool.mine_plt(plt);
                pool.take_stats().record(obs);
                result
            }
            CondEngine::Map => self.mine_plt_map(plt),
        };
        obs.stop("mine/conditional", t0);
        result
    }
}

impl Miner for ConditionalMiner {
    fn name(&self) -> &'static str {
        match self.engine {
            CondEngine::Arena => "plt-conditional",
            CondEngine::Map => "plt-conditional-map",
        }
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        let plt = construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        crate::miner::Mine::mine_plt(self, &plt)
    }

    fn mine_with_obs(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
        obs: &mut plt_obs::Obs,
    ) -> MiningResult {
        let plt = crate::construct::construct_obs(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
            obs,
        )
        .expect("invalid transaction database");
        crate::miner::Mine::mine(self, &plt, obs)
    }
}

/// Mines a conditional database under a fixed suffix of (global) ranks:
/// builds the conditional PLT (locally re-filtered against the minimum
/// support) and runs the recursive miner over it. The support of the suffix
/// itself is *not* emitted — the caller established it when projecting.
///
/// This is the unit of work of the paper's partitioning claim ("PLT
/// provides partition criteria that makes it easy to partition the mining
/// process into several separate tasks"): `plt-parallel` projects the PLT
/// once per item and fans these calls out across threads.
pub fn mine_conditional(
    conditional: &[(PositionVector, Support)],
    plt: &Plt,
    suffix: &[Rank],
) -> MiningResult {
    let groups = conditional_construct(conditional, plt.min_support());
    let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
    let mut sfx = suffix.to_vec();
    mine_groups(groups, plt, &mut sfx, &mut result);
    result
}

/// One step of `Conditional_Construct` exposed for inspection (Figure 5):
/// extracts item `j`'s conditional database from a PLT and returns
/// `(support_of_j, conditional_db, residual_groups)` where
/// `residual_groups` is the PLT after the extraction-and-fold step.
pub fn extract_conditional(plt: &Plt, j: Rank) -> (Support, Vec<(PositionVector, Support)>, Plt) {
    let mut residual = Plt::new(plt.ranking().clone(), plt.min_support())
        .expect("source PLT had valid min support");
    let mut conditional = Vec::new();
    let mut support = 0;
    for (v, e) in plt.iter() {
        if e.sum == j {
            support += e.freq;
            if let Some(prefix) = v.parent() {
                residual.insert_vector(prefix.clone(), e.freq);
                conditional.push((prefix, e.freq));
            }
        } else {
            residual.insert_vector(v.clone(), e.freq);
        }
    }
    conditional.sort_by(|a, b| a.0.cmp(&b.0));
    (support, conditional, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::BruteForceMiner;
    use crate::topdown::TopDownMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = ConditionalMiner::default().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
        got.check_anti_monotone().unwrap();
    }

    #[test]
    fn figure5_conditional_database_of_d() {
        // §5.1: D has rank 4; its conditional database is built from the
        // vectors with sum 4: ABCD=[1,1,1,1], ABD=[1,1,2], BCD=[2,1,1],
        // CD=[3,1]. Prefixes: ABC=[1,1,1], AB=[1,1], BC=[2,1], C=[3].
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let (support, cd, residual) = extract_conditional(&plt, 4);
        assert_eq!(support, 4);
        let expect_cd = vec![
            (pv(&[1, 1]), 1),
            (pv(&[1, 1, 1]), 1),
            (pv(&[2, 1]), 1),
            (pv(&[3]), 1),
        ];
        assert_eq!(cd, expect_cd);
        // Residual PLT after fold: [1,1,1]×(2 original + 1 folded),
        // [1,1]×1, [2,1]×1, [3]×1.
        assert_eq!(residual.vector_frequency(&pv(&[1, 1, 1])), 3);
        assert_eq!(residual.vector_frequency(&pv(&[1, 1])), 1);
        assert_eq!(residual.vector_frequency(&pv(&[2, 1])), 1);
        assert_eq!(residual.vector_frequency(&pv(&[3])), 1);
        assert_eq!(residual.num_vectors(), 4);
    }

    #[test]
    fn mine_conditional_matches_full_run_restricted_to_suffix() {
        // Mine D's conditional database with suffix [4]; the output must be
        // exactly the frequent itemsets containing D, minus {D} itself.
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let (support, cd, _) = extract_conditional(&plt, 4);
        assert_eq!(support, 4);
        let partial = mine_conditional(&cd, &plt, &[4]);
        let full = ConditionalMiner::default().mine(&table1(), 2);
        let expect: Vec<_> = full
            .sorted()
            .into_iter()
            .filter(|(s, _)| s.contains(3) && s.len() > 1) // item D = 3
            .collect();
        assert_eq!(partial.sorted(), expect);
    }

    #[test]
    fn results_merge() {
        let mut a = ConditionalMiner::default().mine(&table1(), 2);
        let n = a.len();
        let b = a.clone();
        a.merge(b); // identical supports merge losslessly
        assert_eq!(a.len(), n);
    }

    #[test]
    fn recursion_prunes_infrequent_extensions() {
        // In D's conditional database, A appears twice (ABC, AB) and is
        // locally frequent, but in {C,D}'s conditional database A appears
        // once and must be pruned: {A,C,D} (support 1) is never emitted.
        let r = ConditionalMiner::default().mine(&table1(), 2);
        assert!(r.contains(&[2, 3])); // {C,D} support 3
        assert!(r.contains(&[1, 2, 3])); // {B,C,D} support 2
        assert!(!r.contains(&[0, 2, 3])); // {A,C,D} support 1
        assert!(!r.contains(&[0, 1, 2, 3])); // {A,B,C,D} support 1
    }

    #[test]
    fn agrees_with_topdown() {
        let a = ConditionalMiner::default().mine(&table1(), 2);
        let b = TopDownMiner::default().mine(&table1(), 2);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn single_item_transactions() {
        let db = vec![vec![7], vec![7], vec![3]];
        let r = ConditionalMiner::default().mine(&db, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.support(&[7]), Some(2));
    }

    #[test]
    fn identical_transactions_dedupe_but_count() {
        let db = vec![vec![1, 2, 3]; 5];
        let r = ConditionalMiner::default().mine(&db, 3);
        assert_eq!(r.support(&[1, 2, 3]), Some(5));
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn empty_database() {
        let db: Vec<Vec<Item>> = vec![];
        assert!(ConditionalMiner::default().mine(&db, 1).is_empty());
    }

    #[test]
    fn rank_policy_does_not_change_the_answer() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for policy in [
            RankPolicy::Lexicographic,
            RankPolicy::FrequencyAscending,
            RankPolicy::FrequencyDescending,
        ] {
            let got = ConditionalMiner::with_policy(policy).mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "policy {policy:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Conditional mining agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = ConditionalMiner::default().mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }

        /// All three rank policies agree on random databases.
        #[test]
        fn prop_policies_agree(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let lex = ConditionalMiner::with_policy(RankPolicy::Lexicographic)
                .mine(&db, min_support);
            let asc = ConditionalMiner::with_policy(RankPolicy::FrequencyAscending)
                .mine(&db, min_support);
            let desc = ConditionalMiner::with_policy(RankPolicy::FrequencyDescending)
                .mine(&db, min_support);
            prop_assert_eq!(lex.sorted(), asc.sorted());
            prop_assert_eq!(asc.sorted(), desc.sorted());
        }
    }
}
