//! The Partition algorithm (Savaserre, Omiecinski & Navathe, VLDB'95 —
//! cited in the paper's related work).
//!
//! Two passes over the database, regardless of the longest pattern:
//!
//! 1. split the database into partitions that fit in memory; mine each
//!    partition for its *locally* frequent itemsets at the proportional
//!    local threshold. Any globally frequent itemset is locally frequent
//!    in at least one partition (pigeonhole on supports), so the union of
//!    the local families is a complete global candidate set;
//! 2. count the exact global support of every candidate in one more pass
//!    (here, as in the original, with vertical TID-list intersections) and
//!    keep those meeting the global threshold.
//!
//! Local mining reuses [`EclatMiner`] — the original also worked on
//! per-partition tidlists.

use plt_core::hash::FxHashSet;
use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_data::transaction::TransactionDb;
use plt_data::vertical::VerticalDb;

use crate::eclat::EclatMiner;

/// The Partition miner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionMiner {
    /// Number of database partitions (the memory knob of the original).
    pub num_partitions: usize,
}

impl Default for PartitionMiner {
    fn default() -> Self {
        PartitionMiner { num_partitions: 4 }
    }
}

impl Miner for PartitionMiner {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        assert!(self.num_partitions >= 1);
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        if transactions.is_empty() {
            return result;
        }
        let n = transactions.len();
        let s_rel = min_support as f64 / n as f64;

        // Phase 1: local mining per partition.
        let chunk = n.div_ceil(self.num_partitions);
        let mut candidates: FxHashSet<Itemset> = FxHashSet::default();
        for part in transactions.chunks(chunk) {
            // Local threshold: ceil(s_rel · |part|), floor 1. Rounding up
            // keeps the completeness guarantee: local_sup/|part| >= s_rel
            // must imply local frequency.
            let local_min = ((s_rel * part.len() as f64).ceil() as Support).max(1);
            let local = EclatMiner::default().mine(part, local_min);
            candidates.extend(local.iter().map(|(s, _)| s.clone()));
        }

        // Phase 2: exact global counting via tidlist intersections.
        let db = TransactionDb::from_sorted(transactions.to_vec());
        let vertical = VerticalDb::from_horizontal(&db);
        for candidate in candidates {
            let mut items = candidate.items().iter();
            let first = *items.next().expect("candidates are non-empty");
            let mut tids = vertical.tids(first).to_vec();
            for &item in items {
                if tids.is_empty() {
                    break;
                }
                tids = VerticalDb::intersect(&tids, vertical.tids(item));
            }
            let support = tids.len() as Support;
            if support >= min_support {
                result.insert(candidate, support);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_for_any_partitioning() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for p in 1..=7 {
            let got = PartitionMiner { num_partitions: p }.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "{p} partitions");
        }
    }

    #[test]
    fn more_partitions_than_transactions() {
        let expect = BruteForceMiner.mine(&table1(), 3);
        let got = PartitionMiner {
            num_partitions: 100,
        }
        .mine(&table1(), 3);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(PartitionMiner::default().mine(&[], 1).is_empty());
        assert!(PartitionMiner::default().mine(&table1(), 10).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Partition agrees with brute force for random databases and
        /// partition counts (the completeness guarantee, exercised).
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..14, 1..7),
                1..35,
            ),
            min_support in 1u64..5,
            partitions in 1usize..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = PartitionMiner { num_partitions: partitions }
                .mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
