//! # plt-core — Positional Lexicographic Tree
//!
//! Core implementation of the **Positional Lexicographic Tree (PLT)**, the
//! frequent-itemset-mining structure proposed by Boukerche & Samarah
//! (*"PLT — Positional Lexicographic Tree: A New Structure for Mining
//! Frequent Itemsets"*, ICPP 2006).
//!
//! ## The idea
//!
//! Fix a total order over the frequent items of a transactional database and
//! assign each item a 1-based [`Rank`] that preserves that order. A
//! transaction, restricted to its frequent items and sorted by rank, is then
//! encoded as a [`PositionVector`]: the sequence of *rank deltas*
//!
//! ```text
//! pos(x_i) = Rank(x_i) − Rank(x_{i−1}),      Rank(null) = 0.
//! ```
//!
//! Three properties of this encoding (the paper's Lemmas 4.1.1–4.1.3) carry
//! the whole mining machinery:
//!
//! 1. prefix sums of the vector recover the ranks (Lemma 4.1.1);
//! 2. the vector uniquely identifies the itemset (Lemma 4.1.2);
//! 3. every subset of the itemset is obtained by dropping a suffix of the
//!    vector and replacing runs of consecutive positions by their sums
//!    (Lemma 4.1.3, generalised) — in particular the vector **sum** is the
//!    rank of the *last* item, which makes extracting an item's conditional
//!    database a single-pass filter.
//!
//! The [`Plt`] structure is the multiset of these vectors partitioned by
//! length, each vector carrying its frequency and cached sum. Two miners are
//! provided:
//!
//! * [`topdown`] — the paper's Algorithm 2: propagate frequencies from every
//!   vector to all of its subset vectors (no anti-monotone pruning; intended
//!   for dense data at very low minimum support);
//! * [`conditional`] — the paper's Algorithm 3: a pattern-growth miner that
//!   peels items off by descending rank, folding prefixes back into the
//!   structure, and recursing on conditional PLTs.
//!
//! ## Quick start
//!
//! ```
//! use plt_core::{Plt, RankPolicy, conditional::ConditionalMiner, miner::Miner};
//!
//! // Table 1 of the paper (items as integers: A=0, B=1, C=2, D=3, E=4, F=5).
//! let db: Vec<Vec<u32>> = vec![
//!     vec![0, 1, 2],
//!     vec![0, 1, 2],
//!     vec![0, 1, 2, 3],
//!     vec![0, 1, 3, 4],
//!     vec![1, 2, 3],
//!     vec![2, 3, 5],
//! ];
//! let result = ConditionalMiner::default().mine(&db, 2);
//! assert_eq!(result.support(&[0, 1, 2]), Some(3)); // {A,B,C} appears 3 times
//! assert_eq!(result.support(&[0, 2, 3]), None);    // {A,C,D} support 1 < 2
//! ```

pub mod arena;
pub mod conditional;
/// Data-parallel kernel layer — re-export of the [`plt_simd`] crate.
///
/// The mining hot paths (arena scans, support accumulation, bitset
/// intersection in the baselines) call these kernels; backend selection
/// (`scalar` oracle vs the AVX2 path under the `simd` feature) and the
/// dispatch counters live here. See `DESIGN.md` §11.
pub mod kernels {
    pub use plt_simd::*;
}
pub mod construct;
pub mod error;
pub mod hash;
pub mod hybrid;
pub mod item;
pub mod miner;
pub mod plt;
pub mod posvec;
pub mod query;
pub mod ranking;
pub mod subset;
pub mod topdown;
pub mod tree;

pub use arena::{ArenaPool, MineStats};
pub use conditional::{CondEngine, ConditionalMiner};
pub use error::{PltError, Result};
pub use hybrid::HybridMiner;
pub use item::{Item, Itemset, Rank, Support};
pub use miner::{Mine, Miner, MiningResult};
pub use plt::{Plt, PltEntry};
pub use posvec::PositionVector;
pub use query::{canonical_key, SupportOracle};
pub use ranking::{ItemRanking, RankPolicy};
pub use topdown::TopDownMiner;
