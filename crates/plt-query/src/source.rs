//! The [`Source`] abstraction: what a query executes against.
//!
//! Every physical operator reads mined results through this trait, so
//! the planner and executor are independent of where the results live —
//! `plt-serve`'s `Snapshot` implements it for the serving path, and the
//! in-crate [`MemSource`] is a small reference implementation for unit
//! tests and offline use.

use std::collections::HashMap;

use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::MiningResult;
use plt_core::query::SupportOracle;
use plt_core::Plt;
use plt_rules::{generate_rules, sort_rules, Rule, RuleConfig};

/// Cardinality statistics the cost model plans from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStats {
    /// Publish generation (keys the plan cache).
    pub generation: u64,
    /// Transactions behind the mined result.
    pub num_transactions: u64,
    /// Absolute mining threshold.
    pub min_support: Support,
    /// Frequent itemsets (`N` in the cost model).
    pub num_itemsets: usize,
    /// Association rules (`R`).
    pub num_rules: usize,
    /// Distinct position vectors in the PLT (`V`).
    pub num_vectors: usize,
    /// Frequent single items (`r`, the extension-traversal roots).
    pub num_roots: usize,
}

/// An approximate support sketch a [`Source`] may attach. The
/// `SketchProbe` physical operator answers `SUPPORT OF` through this
/// trait in O(sketch) without touching the snapshot index or PLT.
/// `plt-approx` provides the production implementation.
pub trait SupportSketch: std::fmt::Debug + Send + Sync {
    /// `(estimate, bound)`: the estimated support of `items` and the
    /// guaranteed absolute error bound, both in transactions —
    /// `|estimate − true| ≤ bound` with the sketch's configured
    /// confidence.
    fn estimate(&self, items: &[Item]) -> (Support, Support);

    /// The guaranteed error fraction of the window size (per-answer
    /// bounds are `⌈epsilon·N⌉` or tighter). The planner prices the
    /// probe out of `APPROX WITHIN e` queries with `e < epsilon`.
    fn epsilon(&self) -> f64;

    /// Rows one probe touches — the planner's cost proxy.
    fn cost(&self) -> usize;

    /// Resident memory in bytes (stats and bench reporting).
    fn memory_bytes(&self) -> usize;
}

/// A mined generation the query layer can execute against.
///
/// Implementations must uphold the canonical orders the executor relies
/// on: [`ranked`](Source::ranked) is sorted support-descending, then
/// size-ascending, then lexicographic; [`rules`](Source::rules) is in
/// `plt_rules::sort_rules` order (confidence desc, lift desc, support
/// desc, antecedent/consequent lex).
pub trait Source {
    /// Cardinalities for the cost model.
    fn stats(&self) -> SourceStats;

    /// Exact `(support, frequent)` of an arbitrary itemset — index probe
    /// for frequent sets, oracle fallback otherwise.
    fn support_of(&self, items: &[Item]) -> (Support, bool);

    /// All frequent itemsets in canonical order.
    fn ranked(&self) -> &[(Itemset, Support)];

    /// Frequent one-item extensions of `items` with the extended set's
    /// support, support-descending (Lemma 4.1.3 inverted). The empty
    /// basket extends to the frequent single items.
    fn extensions_of(&self, items: &[Item]) -> Vec<(Item, Support)>;

    /// All rules in standard quality order.
    fn rules(&self) -> &[Rule];

    /// The underlying PLT (drives on-demand conditional mining).
    fn plt(&self) -> &Plt;

    /// The attached approximate sketch, if any (drives the
    /// `SketchProbe` operator). Sources without one plan exact
    /// operators only, even under the `APPROX` tier.
    fn sketch(&self) -> Option<&dyn SupportSketch> {
        None
    }
}

/// In-memory reference [`Source`] built directly from a PLT and its
/// mining result. Mirrors the serving snapshot's index structure with
/// plain itemset keys; used by plt-query's own tests and anywhere a
/// query should run without the serving stack.
#[derive(Debug)]
pub struct MemSource {
    generation: u64,
    plt: Plt,
    oracle: SupportOracle,
    index: HashMap<Itemset, Support>,
    extensions: HashMap<Itemset, Vec<(Item, Support)>>,
    roots: Vec<(Item, Support)>,
    ranked: Vec<(Itemset, Support)>,
    rules: Vec<Rule>,
    sketch: Option<Box<dyn SupportSketch>>,
}

impl MemSource {
    /// Builds the source from a PLT and the result of mining it at the
    /// PLT's threshold.
    pub fn build(
        generation: u64,
        plt: Plt,
        result: &MiningResult,
        rule_config: RuleConfig,
    ) -> MemSource {
        let oracle = SupportOracle::new(&plt);
        let mut index = HashMap::with_capacity(result.len());
        let mut extensions: HashMap<Itemset, Vec<(Item, Support)>> = HashMap::new();
        let mut roots = Vec::new();
        let mut ranked = Vec::with_capacity(result.len());

        for (itemset, support) in result.iter() {
            ranked.push((itemset.clone(), support));
            if itemset.len() == 1 {
                roots.push((itemset.items()[0], support));
            }
            if itemset.len() >= 2 {
                // Dropping any one item yields a subset that gains the
                // dropped item as a known frequent extension.
                for &dropped in itemset.items() {
                    let sub: Vec<Item> = itemset
                        .items()
                        .iter()
                        .copied()
                        .filter(|&i| i != dropped)
                        .collect();
                    extensions
                        .entry(Itemset::from_sorted(sub))
                        .or_default()
                        .push((dropped, support));
                }
            }
            index.insert(itemset.clone(), support);
        }

        for exts in extensions.values_mut() {
            exts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        roots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.len().cmp(&b.0.len()))
                .then(a.0.cmp(&b.0))
        });

        let mut rules = generate_rules(result, rule_config);
        sort_rules(&mut rules);

        MemSource {
            generation,
            plt,
            oracle,
            index,
            extensions,
            roots,
            ranked,
            rules,
            sketch: None,
        }
    }

    /// Attaches an approximate sketch, making `SketchProbe` plannable
    /// against this source.
    pub fn with_sketch(mut self, sketch: Box<dyn SupportSketch>) -> MemSource {
        self.sketch = Some(sketch);
        self
    }
}

impl Source for MemSource {
    fn stats(&self) -> SourceStats {
        SourceStats {
            generation: self.generation,
            num_transactions: self.plt.num_transactions(),
            min_support: self.plt.min_support(),
            num_itemsets: self.ranked.len(),
            num_rules: self.rules.len(),
            num_vectors: self.plt.num_vectors(),
            num_roots: self.roots.len(),
        }
    }

    fn support_of(&self, items: &[Item]) -> (Support, bool) {
        let set = Itemset::new(items.to_vec());
        if let Some(&support) = self.index.get(&set) {
            return (support, true);
        }
        let support = self.oracle.support(items, &self.plt);
        (
            support,
            support >= self.plt.min_support() && !items.is_empty(),
        )
    }

    fn ranked(&self) -> &[(Itemset, Support)] {
        &self.ranked
    }

    fn extensions_of(&self, items: &[Item]) -> Vec<(Item, Support)> {
        if items.is_empty() {
            return self.roots.clone();
        }
        let set = Itemset::new(items.to_vec());
        self.extensions.get(&set).cloned().unwrap_or_default()
    }

    fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn plt(&self) -> &Plt {
        &self.plt
    }

    fn sketch(&self) -> Option<&dyn SupportSketch> {
        self.sketch.as_deref()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::{ConditionalMiner, Miner};

    /// Table 1 of the paper: A=0 … F=5.
    pub(crate) fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    pub(crate) fn mem_source(min_support: Support) -> MemSource {
        let db = table1();
        let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, min_support);
        MemSource::build(1, plt, &result, RuleConfig::default())
    }

    /// A deterministic test sketch: counts exactly over a held copy of
    /// the database, then undercounts by one (capped at the stated
    /// bound) so approximate answers are distinguishable from exact
    /// ones while staying within the bound.
    #[derive(Debug)]
    pub(crate) struct TestSketch {
        pub db: Vec<Vec<Item>>,
        pub cost: usize,
        pub epsilon: f64,
    }

    impl SupportSketch for TestSketch {
        fn estimate(&self, items: &[Item]) -> (Support, Support) {
            let n = self.db.len() as u64;
            let truth = self
                .db
                .iter()
                .filter(|t| items.iter().all(|i| t.contains(i)))
                .count() as u64;
            let bound = (self.epsilon * n as f64).ceil() as u64;
            (truth.saturating_sub(bound.min(1)), bound)
        }

        fn epsilon(&self) -> f64 {
            self.epsilon
        }

        fn cost(&self) -> usize {
            self.cost
        }

        fn memory_bytes(&self) -> usize {
            self.db.iter().map(|t| t.len() * 4).sum()
        }
    }

    pub(crate) fn mem_source_with_sketch(
        min_support: Support,
        cost: usize,
        epsilon: f64,
    ) -> MemSource {
        mem_source(min_support).with_sketch(Box::new(TestSketch {
            db: table1(),
            cost,
            epsilon,
        }))
    }

    #[test]
    fn stats_report_real_cardinalities() {
        let src = mem_source(2);
        let s = src.stats();
        assert_eq!(s.generation, 1);
        assert_eq!(s.num_transactions, 6);
        assert_eq!(s.min_support, 2);
        assert_eq!(s.num_itemsets, src.ranked().len());
        assert_eq!(s.num_rules, src.rules().len());
        assert!(s.num_roots >= 2);
        assert!(s.num_vectors > 0);
    }

    #[test]
    fn support_probes_index_then_oracle() {
        let src = mem_source(2);
        assert_eq!(src.support_of(&[0, 1, 2]), (3, true));
        // Order-free (Itemset::new sorts).
        assert_eq!(src.support_of(&[2, 0, 1]), (3, true));
        // Infrequent: oracle, not frequent.
        assert_eq!(src.support_of(&[0, 2, 3]), (1, false));
        // Unranked item: support 0.
        assert_eq!(src.support_of(&[99]), (0, false));
    }

    #[test]
    fn extensions_match_mined_supersets() {
        let src = mem_source(2);
        // {A,B} extends to C (support 3) and D (support 2).
        assert_eq!(src.extensions_of(&[0, 1]), vec![(2, 3), (3, 2)]);
        // Empty basket → frequent single items, support-descending.
        let roots = src.extensions_of(&[]);
        assert!(roots.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(roots.len(), src.stats().num_roots);
        // Every frequent superset is reachable by dropping one item.
        for (itemset, support) in src.ranked().iter() {
            if itemset.len() < 2 {
                continue;
            }
            for &e in itemset.items() {
                let without: Vec<Item> = itemset
                    .items()
                    .iter()
                    .copied()
                    .filter(|&i| i != e)
                    .collect();
                assert!(
                    src.extensions_of(&without).contains(&(e, *support)),
                    "extensions({without:?}) missing ({e}, {support})"
                );
            }
        }
    }

    #[test]
    fn ranked_is_canonical_and_rules_sorted() {
        let src = mem_source(2);
        for w in src.ranked().windows(2) {
            let (ref a, sa) = w[0];
            let (ref b, sb) = w[1];
            assert!(
                sa > sb
                    || (sa == sb && a.len() < b.len())
                    || (sa == sb && a.len() == b.len() && a < b),
                "ranked order violated at {a} vs {b}"
            );
        }
        for w in src.rules().windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }
}
