//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is built from a `u64` seed plus probability knobs and
//! threaded (as `Arc<FaultPlan>`) through the server connection loop, the
//! frame codec, the snapshot builder, and the client. Each injection
//! *site* owns its own monotonically increasing draw counter, and every
//! decision is a pure function of `(seed, site, draw index)` — so a seeded
//! chaos run is bit-reproducible: the n-th decision at a site is the same
//! whatever the thread interleaving, and two plans with the same seed and
//! knobs produce identical fault sequences.
//!
//! The plan can inject:
//!
//! * **torn frames** — a frame truncated mid-payload, then the connection
//!   errors out (exercises `read_exact` failure paths and deadlines);
//! * **oversized frames** — a length header past the frame limit
//!   (exercises pre-allocation rejection);
//! * **short reads/writes** — an I/O call moves a single byte (exercises
//!   buffering and `read_exact`/`write_all` loops);
//! * **stalls** — an I/O call sleeps first (exercises deadlines);
//! * **builder panics** — a re-mine panics at a deterministic point
//!   (exercises graceful degradation to the last good snapshot).
//!
//! Everything is `std`-only. Injected faults are recorded in a bounded
//! in-memory log ([`FaultPlan::events`]) so tests can assert the exact
//! sequence.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where a fault decision is being drawn. Each site has an independent
/// deterministic draw sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Server-side reads from a connection.
    ServerRead,
    /// Server-side frame writes to a connection.
    ServerWrite,
    /// Client-side reads of responses.
    ClientRead,
    /// Client-side frame writes of requests.
    ClientWrite,
    /// The snapshot builder's rebuild step.
    Builder,
}

const SITES: usize = 5;

impl Site {
    fn index(self) -> usize {
        match self {
            Site::ServerRead => 0,
            Site::ServerWrite => 1,
            Site::ClientRead => 2,
            Site::ClientWrite => 3,
            Site::Builder => 4,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Site::ServerRead => "server-read",
            Site::ServerWrite => "server-write",
            Site::ClientRead => "client-read",
            Site::ClientWrite => "client-write",
            Site::Builder => "builder",
        }
    }
}

/// Probability knobs for a plan. All probabilities are in `[0, 1]`; a
/// knob of `0.0` disables that fault entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every deterministic draw.
    pub seed: u64,
    /// Probability a written frame is torn (truncated mid-frame, then the
    /// writer errors).
    pub torn_frame: f64,
    /// Probability a written frame claims a length past the frame limit.
    pub oversized_frame: f64,
    /// Probability an I/O call is shortened to a single byte.
    pub short_io: f64,
    /// Probability an I/O call stalls for [`stall_ms`](Self::stall_ms)
    /// before proceeding.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability one rebuild of the snapshot builder panics.
    pub builder_panic: f64,
}

impl FaultConfig {
    /// All faults off (still deterministic — draws happen, nothing fires).
    pub fn disabled(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            torn_frame: 0.0,
            oversized_frame: 0.0,
            short_io: 0.0,
            stall: 0.0,
            stall_ms: 0,
            builder_panic: 0.0,
        }
    }

    /// The default chaos mix used by `serve --fault-seed`: frequent short
    /// I/O, occasional stalls and torn/oversized frames, no builder
    /// panics (enable those explicitly).
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            torn_frame: 0.05,
            oversized_frame: 0.02,
            short_io: 0.25,
            stall: 0.05,
            stall_ms: 15,
            builder_panic: 0.0,
        }
    }
}

/// A frame-level fault chosen for one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Write only the first `keep` bytes of the encoded frame, then fail.
    Torn { keep: usize },
    /// Write a length header exceeding the receiver's frame limit.
    Oversized,
}

/// An I/O-level fault chosen for one read/write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Move at most one byte.
    Short,
    /// Sleep before the call.
    Stall(Duration),
}

/// One recorded injection, for reproducibility assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: &'static str,
    /// Draw index at the site (0-based).
    pub seq: u64,
    /// What was injected, e.g. `"torn(17)"`, `"stall"`, `"panic"`.
    pub kind: String,
}

/// Cap on the event log so long chaos runs stay bounded.
const MAX_EVENTS: usize = 4096;

/// A seed-deterministic fault plan. Cheap to share (`Arc`); all state is
/// per-site atomic counters plus the bounded event log.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    counters: [AtomicU64; SITES],
    events: Mutex<Vec<FaultEvent>>,
}

/// SplitMix64: a well-distributed 64-bit mix, `std`-only.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Maps a draw to a uniform float in `[0, 1)`.
fn unit(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            counters: Default::default(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: a shared plan.
    pub fn shared(config: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(config))
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// One deterministic draw at `site`: value is a pure function of
    /// `(seed, site, per-site sequence number)`.
    fn draw(&self, site: Site) -> (u64, u64) {
        let seq = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        let v = splitmix64(
            self.config
                .seed
                .wrapping_add((site.index() as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f))
                .wrapping_add(seq.wrapping_mul(0xe703_7ed1_a0b4_28db)),
        );
        (seq, v)
    }

    fn record(&self, site: Site, seq: u64, kind: String) {
        let mut log = self.events.lock().unwrap();
        if log.len() < MAX_EVENTS {
            log.push(FaultEvent {
                site: site.as_str(),
                seq,
                kind,
            });
        }
    }

    /// Decides the fate of one outgoing frame of `frame_len` encoded
    /// bytes at `site`.
    pub fn frame_fault(&self, site: Site, frame_len: usize) -> Option<FrameFault> {
        let (seq, v) = self.draw(site);
        let u = unit(v);
        if u < self.config.torn_frame {
            // Re-mix for the cut point so it is independent of the
            // fire/no-fire decision; keep at least the first byte so the
            // peer sees a partial frame, not a clean close.
            let keep = 1 + (splitmix64(v) as usize) % frame_len.max(2).saturating_sub(1);
            self.record(site, seq, format!("torn({keep})"));
            Some(FrameFault::Torn { keep })
        } else if u < self.config.torn_frame + self.config.oversized_frame {
            self.record(site, seq, "oversized".to_string());
            Some(FrameFault::Oversized)
        } else {
            None
        }
    }

    /// Decides the fate of one I/O call at `site`.
    pub fn io_fault(&self, site: Site) -> Option<IoFault> {
        if self.config.short_io == 0.0 && self.config.stall == 0.0 {
            // Fast path: keep the counter advancing is unnecessary when
            // nothing can fire — and skipping the draw keeps fault-free
            // servers at full speed.
            return None;
        }
        let (seq, v) = self.draw(site);
        let u = unit(v);
        if u < self.config.stall {
            self.record(site, seq, "stall".to_string());
            Some(IoFault::Stall(Duration::from_millis(self.config.stall_ms)))
        } else if u < self.config.stall + self.config.short_io {
            self.record(site, seq, "short".to_string());
            Some(IoFault::Short)
        } else {
            None
        }
    }

    /// Panics (deterministically) if this rebuild was chosen to fail.
    /// Call at the builder's injection point; the builder catches the
    /// unwind and degrades.
    pub fn maybe_builder_panic(&self) {
        let (seq, v) = self.draw(Site::Builder);
        if unit(v) < self.config.builder_panic {
            self.record(Site::Builder, seq, "panic".to_string());
            panic!("fault injection: builder panic (seed {})", self.config.seed);
        }
    }

    /// The injected-fault log so far (bounded, see `MAX_EVENTS`).
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().unwrap().clone()
    }
}

/// A stream wrapper that applies a plan's I/O faults (short ops, stalls)
/// to every read/write. Framing faults live in the codec
/// ([`write_frame_with`](crate::proto::write_frame_with)), not here.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    site: Site,
}

impl<S> FaultyStream<S> {
    pub fn new(inner: S, plan: Arc<FaultPlan>, site: Site) -> FaultyStream<S> {
        FaultyStream { inner, plan, site }
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.plan.io_fault(self.site) {
            Some(IoFault::Stall(d)) => std::thread::sleep(d),
            Some(IoFault::Short) if !buf.is_empty() => {
                return self.inner.read(&mut buf[..1]);
            }
            _ => {}
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.plan.io_fault(self.site) {
            Some(IoFault::Stall(d)) => std::thread::sleep(d),
            Some(IoFault::Short) if !buf.is_empty() => {
                return self.inner.write(&buf[..1]);
            }
            _ => {}
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &FaultPlan, draws: usize) -> Vec<FaultEvent> {
        for _ in 0..draws {
            let _ = plan.frame_fault(Site::ServerWrite, 64);
            let _ = plan.io_fault(Site::ServerRead);
            let _ = plan.io_fault(Site::ClientWrite);
        }
        plan.events()
    }

    #[test]
    fn same_seed_same_sequence() {
        let config = FaultConfig {
            builder_panic: 0.0,
            ..FaultConfig::chaos(0xfeed)
        };
        let a = drain(&FaultPlan::new(config), 300);
        let b = drain(&FaultPlan::new(config), 300);
        assert!(!a.is_empty(), "chaos knobs must fire within 300 draws");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = drain(&FaultPlan::new(FaultConfig::chaos(1)), 300);
        let b = drain(&FaultPlan::new(FaultConfig::chaos(2)), 300);
        assert_ne!(a, b);
    }

    #[test]
    fn per_site_sequences_ignore_interleaving() {
        // Whatever order sites are visited in, the n-th draw at a site is
        // fixed — draw ServerWrite alone, then interleaved, same answers.
        let config = FaultConfig::chaos(42);
        let solo = FaultPlan::new(config);
        let solo_decisions: Vec<_> = (0..100)
            .map(|_| solo.frame_fault(Site::ServerWrite, 64))
            .collect();
        let mixed = FaultPlan::new(config);
        let mixed_decisions: Vec<_> = (0..100)
            .map(|_| {
                let _ = mixed.io_fault(Site::ClientRead);
                let _ = mixed.io_fault(Site::ServerRead);
                mixed.frame_fault(Site::ServerWrite, 64)
            })
            .collect();
        assert_eq!(solo_decisions, mixed_decisions);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::disabled(9));
        for _ in 0..500 {
            assert_eq!(plan.frame_fault(Site::ClientWrite, 32), None);
            assert_eq!(plan.io_fault(Site::ServerRead), None);
            plan.maybe_builder_panic();
        }
        assert!(plan.events().is_empty());
    }

    #[test]
    fn builder_panic_fires_at_probability_one() {
        let plan = FaultPlan::new(FaultConfig {
            builder_panic: 1.0,
            ..FaultConfig::disabled(7)
        });
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.maybe_builder_panic()));
        assert!(caught.is_err());
        assert_eq!(plan.events()[0].kind, "panic");
    }

    #[test]
    fn faulty_stream_preserves_bytes() {
        // Short ops reorder nothing: the payload survives byte-for-byte.
        let plan = FaultPlan::shared(FaultConfig {
            short_io: 0.8,
            ..FaultConfig::disabled(3)
        });
        let payload: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        let mut sink = Vec::new();
        {
            let mut w = FaultyStream::new(&mut sink, plan.clone(), Site::ServerWrite);
            w.write_all(&payload).unwrap();
            w.flush().unwrap();
        }
        assert_eq!(sink, payload);
        let mut r = FaultyStream::new(std::io::Cursor::new(&sink), plan, Site::ServerRead);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload);
    }
}
