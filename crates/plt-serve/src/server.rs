//! TCP server: multiple acceptor threads over one listener, one handler
//! thread per connection, engine shared via `Arc`.
//!
//! Built on `std::net` only. The listener is `try_clone`d into N
//! acceptor threads (the kernel load-balances `accept` across them), so
//! accept throughput scales with cores without an async runtime. Each
//! connection speaks the framed protocol of [`proto`](crate::proto)
//! until EOF or a `shutdown` request; handlers only touch the engine
//! through `Arc`, so a slow connection never blocks another.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::builder::IngestQueue;
use crate::engine::Engine;
use crate::json::Json;
use crate::proto::{err_response, ok_response, read_frame, write_frame, Request};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Acceptor threads sharing the listener. Defaults to available
    /// parallelism, capped at 8 (accept is rarely the bottleneck).
    pub acceptors: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            acceptors: cores.min(8),
        }
    }
}

/// A running server. Stop it with [`shutdown`](Self::shutdown) or by
/// sending the protocol `shutdown` request; either way
/// [`join`](Self::join) returns once every acceptor has exited.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the acceptors.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        wake_acceptors(self.addr, self.acceptors.len());
        for t in self.acceptors.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops (e.g. a client sent `shutdown`).
    pub fn join(mut self) {
        for t in self.acceptors.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `engine`. `ingest` wires the `INGEST` endpoint to a snapshot
/// builder; without it, ingest requests are answered with an error.
pub fn serve(
    addr: &str,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptors = (0..config.acceptors.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let engine = engine.clone();
            let ingest = ingest.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("plt-serve-acceptor-{i}"))
                .spawn(move || acceptor_loop(listener, engine, ingest, stop, addr))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        stop,
        acceptors,
    })
}

fn acceptor_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let engine = engine.clone();
                let ingest = ingest.clone();
                let stop = stop.clone();
                let _ = std::thread::Builder::new()
                    .name("plt-serve-conn".into())
                    .spawn(move || {
                        if handle_connection(stream, &engine, ingest.as_ref(), &stop)
                            == ConnectionOutcome::ShutdownRequested
                        {
                            wake_acceptors(addr, usize::MAX);
                        }
                    });
            }
            Err(_) => {
                // Accept errors are transient (EMFILE, aborted
                // handshakes); re-check the stop flag and continue.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

#[derive(PartialEq, Eq)]
enum ConnectionOutcome {
    Closed,
    ShutdownRequested,
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    ingest: Option<&IngestQueue>,
    stop: &AtomicBool,
) -> ConnectionOutcome {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return ConnectionOutcome::Closed,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return ConnectionOutcome::Closed,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Tell the peer what was wrong with the frame, then
                // drop the connection — framing is unrecoverable.
                let _ = write_frame(&mut writer, &err_response(e.to_string()).to_string());
                return ConnectionOutcome::Closed;
            }
            Err(_) => return ConnectionOutcome::Closed,
        };
        let response = match Json::parse(&payload) {
            Err(e) => err_response(e.to_string()).to_string(),
            Ok(v) => match Request::from_json(&v) {
                Err(e) => err_response(e).to_string(),
                Ok(Request::Shutdown) => {
                    stop.store(true, Ordering::SeqCst);
                    let response = engine.handle(&Request::Shutdown);
                    let _ = write_frame(&mut writer, &response);
                    return ConnectionOutcome::ShutdownRequested;
                }
                Ok(Request::Ingest { transactions, wait }) => match ingest {
                    None => err_response("this server has no ingest pipeline").to_string(),
                    Some(queue) => {
                        let accepted = transactions.len() as u64;
                        let submitted = queue.ingest(transactions);
                        if !submitted {
                            err_response("snapshot builder has exited").to_string()
                        } else if wait {
                            match queue.flush() {
                                Some(generation) => ok_response(vec![
                                    ("accepted", Json::from(accepted)),
                                    ("generation", Json::from(generation)),
                                ])
                                .to_string(),
                                None => err_response("snapshot builder has exited").to_string(),
                            }
                        } else {
                            ok_response(vec![("accepted", Json::from(accepted))]).to_string()
                        }
                    }
                },
                Ok(request) => engine.handle(&request),
            },
        };
        if write_frame(&mut writer, &response).is_err() {
            return ConnectionOutcome::Closed;
        }
    }
}

/// Unblocks acceptor threads stuck in `accept` by dialing the listener.
/// Best effort; `n` connects at most (acceptors count or a few).
fn wake_acceptors(addr: SocketAddr, n: usize) {
    for _ in 0..n.min(16) {
        match TcpStream::connect(addr) {
            Ok(_) => {}
            Err(_) => break,
        }
    }
}
