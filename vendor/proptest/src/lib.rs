//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! Supports the `proptest!` macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! `prop_assert!`/`prop_assert_eq!`, numeric-range strategies,
//! `any::<T>()`, and `collection::{vec, btree_set}`.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed, and failing cases are reported (values
//! included in the assertion message) but **not shrunk**.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Defines property tests.
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($body:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($body)*);
    };
    (
        $(#[$meta:meta])*
        fn $($body:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $($body)*
        );
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Deterministic per-test seed so failures reproduce.
                let seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0usize..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn collections_respect_size_and_domain(
            v in crate::collection::vec(0u32..10, 2..6),
            s in crate::collection::btree_set(1u32..100, 1..8),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!((1..8).contains(&s.len()));
            prop_assert!(s.iter().all(|&x| (1..100).contains(&x)));
        }

        #[test]
        fn nested_collections(db in crate::collection::vec(
            crate::collection::btree_set(0u32..14, 1..7),
            1..40,
        )) {
            prop_assert!((1..40).contains(&db.len()));
            for t in &db {
                prop_assert!((1..7).contains(&t.len()));
            }
        }

        #[test]
        fn any_generates_varied_values(x in any::<u64>(), b in any::<bool>()) {
            // Smoke: the values exist and the bool is a bool.
            prop_assert!(u8::from(b) <= 1);
            let _ = x;
        }

        #[test]
        fn tuple_patterns_bind(xs in crate::collection::vec(1u64..5, 1..4)) {
            let set: BTreeSet<u64> = xs.iter().copied().collect();
            prop_assert!(set.len() <= xs.len());
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            // No `#[test]` on the inner fn: it is called directly below
            // (a `#[test]` here would be unnameable inside the closure).
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert_eq!(x, 999);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("proptest case"), "{msg}");
        assert!(msg.contains("999"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        fn collect_values() -> Vec<u64> {
            let seed = crate::test_runner::fnv1a("determinism-probe");
            (0..8)
                .map(|case| {
                    let mut rng = crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    Strategy::generate(&(0u64..1_000_000), &mut rng)
                })
                .collect()
        }
        assert_eq!(collect_values(), collect_values());
    }
}
