//! Position vectors (Definitions 4.1.2–4.1.3 and Lemmas 4.1.1–4.1.3).
//!
//! A position vector `V(X) = [pos(x_1), …, pos(x_k)]` encodes the itemset
//! `X = {x_1 < … < x_k}` (ordered by rank) as the sequence of rank deltas
//! `pos(x_i) = Rank(x_i) − Rank(x_{i−1})` with `Rank(x_0) = Rank(null) = 0`.
//!
//! The module implements, with direct references to the paper:
//!
//! * **Lemma 4.1.1**: `Rank(x_i) = Σ_{j≤i} pos(x_j)` — [`PositionVector::ranks`].
//! * **Lemma 4.1.2** (uniqueness): round-tripping through
//!   [`PositionVector::from_ranks`]/[`ranks`](PositionVector::ranks) is the
//!   identity, so equality of vectors is equality of itemsets (property
//!   tested below).
//! * **Lemma 4.1.3**: the `(k−1)`-subsets of `X` are obtained by (a)
//!   dropping the last position — [`PositionVector::parent`] — or (b)
//!   replacing two consecutive positions by their sum —
//!   [`PositionVector::merged_at`]. [`PositionVector::level_down_subsets`]
//!   enumerates all of them.
//! * The generalisation used by the top-down miner: *every* subset of `X`
//!   corresponds to dropping a suffix and merging runs of consecutive
//!   positions — [`PositionVector::subset_vectors`].

use crate::error::{PltError, Result};
use crate::item::{Item, Rank};
use crate::ranking::ItemRanking;

/// A position vector: non-empty sequence of positions, each `>= 1`.
///
/// Stored as a boxed slice (two words instead of `Vec`'s three) because PLT
/// partitions hold millions of these as hash-map keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositionVector(Box<[Rank]>);

impl PositionVector {
    /// Builds the vector for a strictly increasing rank sequence
    /// (Definition 4.1.2: `pos(j) = Rank(j) − Rank(i)` for `j` a child of
    /// `i` along the path, `Rank(null) = 0`).
    pub fn from_ranks(ranks: &[Rank]) -> Result<PositionVector> {
        if ranks.is_empty() {
            return Err(PltError::Empty);
        }
        let mut positions = Vec::with_capacity(ranks.len());
        let mut prev = 0;
        for &r in ranks {
            if r <= prev {
                return Err(if r == 0 {
                    PltError::ZeroPosition
                } else {
                    PltError::UnsortedRanks
                });
            }
            positions.push(r - prev);
            prev = r;
        }
        Ok(PositionVector(positions.into_boxed_slice()))
    }

    /// The **canonical index key** for an itemset under `ranking`.
    ///
    /// By Lemma 4.1.2 a position vector identifies its itemset uniquely,
    /// so the vector built from the (sorted, deduplicated) ranks of
    /// `items` is a collision-free key: two item slices map to the same
    /// vector iff they denote the same set. Returns `None` when `items`
    /// is empty or any item has no rank (it was infrequent when the
    /// ranking was built), in which case the itemset has no vector in
    /// rank space at all.
    pub fn canonical_for(items: &[Item], ranking: &ItemRanking) -> Option<PositionVector> {
        if items.is_empty() {
            return None;
        }
        let mut ranks = Vec::with_capacity(items.len());
        for &item in items {
            ranks.push(ranking.rank(item)?);
        }
        ranks.sort_unstable();
        ranks.dedup();
        // Ranks are now strictly increasing and non-zero, so this cannot
        // fail.
        Some(PositionVector::from_ranks(&ranks).expect("sorted deduped ranks"))
    }

    /// Wraps raw positions, validating that each is `>= 1`.
    pub fn from_positions(positions: Vec<Rank>) -> Result<PositionVector> {
        if positions.is_empty() {
            return Err(PltError::Empty);
        }
        if positions.contains(&0) {
            return Err(PltError::ZeroPosition);
        }
        Ok(PositionVector(positions.into_boxed_slice()))
    }

    /// The raw positions.
    #[inline]
    pub fn positions(&self) -> &[Rank] {
        &self.0
    }

    /// Vector length `k` — the size of the encoded itemset.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Position vectors are never empty; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lemma 4.1.1: recover the rank sequence by prefix-summing.
    pub fn ranks(&self) -> Vec<Rank> {
        let mut out = Vec::with_capacity(self.0.len());
        plt_simd::prefix_sum_into(&self.0, &mut out);
        out
    }

    /// The sum of all positions — by Lemma 4.1.1 this is the rank of the
    /// **last** (highest-ranked) item. Algorithm 1 caches this per vector;
    /// the conditional miner selects item `j`'s conditional database as the
    /// vectors with `sum() == j`.
    #[inline]
    pub fn sum(&self) -> Rank {
        self.0.iter().sum()
    }

    /// Lemma 4.1.3(a): the `(k−1)`-subset that drops the last item, i.e.
    /// the vector without its final position. `None` for 1-vectors (the
    /// empty itemset has no position vector).
    pub fn parent(&self) -> Option<PositionVector> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(PositionVector(
                self.0[..self.0.len() - 1].to_vec().into_boxed_slice(),
            ))
        }
    }

    /// Lemma 4.1.3(b): the `(k−1)`-subset that drops item `x_{i+1}`, i.e.
    /// positions `i` and `i+1` (0-based) replaced by their sum.
    ///
    /// # Panics
    /// Panics if `i + 1 >= len()`.
    pub fn merged_at(&self, i: usize) -> PositionVector {
        assert!(i + 1 < self.0.len(), "merge index out of range");
        let mut v = Vec::with_capacity(self.0.len() - 1);
        v.extend_from_slice(&self.0[..i]);
        v.push(self.0[i] + self.0[i + 1]);
        v.extend_from_slice(&self.0[i + 2..]);
        PositionVector(v.into_boxed_slice())
    }

    /// All `(k−1)`-level subsets per Lemma 4.1.3: the
    /// [`parent`](Self::parent) (when it exists) followed by every
    /// consecutive merge — `k` vectors total for `k >= 2`, one per
    /// droppable item; nothing for `k == 1`.
    pub fn level_down_subsets(&self) -> impl Iterator<Item = PositionVector> + '_ {
        let parent = self.parent().into_iter();
        let merges = (0..self.0.len().saturating_sub(1)).map(move |i| self.merged_at(i));
        parent.chain(merges)
    }

    /// Whether the encoded itemset contains the item with rank `r` —
    /// i.e. whether some prefix sum equals `r`. Linear, early-exit.
    pub fn contains_rank(&self, r: Rank) -> bool {
        let mut acc = 0;
        for &p in self.0.iter() {
            acc += p;
            if acc == r {
                return true;
            }
            if acc > r {
                return false;
            }
        }
        false
    }

    /// Subset check in position-vector space: does `self`'s itemset contain
    /// `other`'s? Runs in `O(len(self))` by walking both prefix-sum streams
    /// in lockstep — the "light subset checking" the paper advertises.
    pub fn contains(&self, other: &PositionVector) -> bool {
        let mut acc = 0;
        let mut need_iter = other.ranks_iter();
        let mut need = match need_iter.next() {
            Some(r) => r,
            None => return true,
        };
        for &p in self.0.iter() {
            acc += p;
            if acc == need {
                need = match need_iter.next() {
                    Some(r) => r,
                    None => return true,
                };
            } else if acc > need {
                return false;
            }
        }
        false
    }

    /// Iterator over prefix sums (the ranks), allocation-free.
    pub fn ranks_iter(&self) -> impl Iterator<Item = Rank> + '_ {
        self.0.iter().scan(0, |acc, &p| {
            *acc += p;
            Some(*acc)
        })
    }

    /// Enumerates the position vectors of **all** non-empty subsets of the
    /// encoded itemset (including the itemset itself), each exactly once.
    ///
    /// A subset `{x_{i_1} < … < x_{i_m}}` corresponds to keeping the prefix
    /// up to `i_m` and summing each run `p_{i_{j−1}+1} … p_{i_j}`; this is a
    /// bijection between subsets and (suffix drop, run partition) pairs.
    /// Exponential (`2^k − 1` results) — used by the reference miner and to
    /// validate the top-down miner's canonical-derivation discipline.
    pub fn subset_vectors(&self) -> Vec<PositionVector> {
        let ranks = self.ranks();
        let k = ranks.len();
        assert!(k < 64, "subset enumeration limited to < 64 positions");
        let mut out = Vec::with_capacity((1usize << k) - 1);
        for mask in 1u64..(1u64 << k) {
            let mut positions = Vec::new();
            let mut prev_rank = 0;
            for (i, &r) in ranks.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    positions.push(r - prev_rank);
                    prev_rank = r;
                }
            }
            out.push(PositionVector(positions.into_boxed_slice()));
        }
        out
    }

    /// Appends one more item with rank `next_rank` (which must exceed the
    /// current [`sum`](Self::sum)). Used when extending a pattern in the
    /// conditional miner.
    pub fn extended_to(&self, next_rank: Rank) -> Result<PositionVector> {
        let s = self.sum();
        if next_rank <= s {
            return Err(PltError::UnsortedRanks);
        }
        let mut v = self.0.to_vec();
        v.push(next_rank - s);
        Ok(PositionVector(v.into_boxed_slice()))
    }
}

impl std::fmt::Display for PositionVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pv(positions: &[Rank]) -> PositionVector {
        PositionVector::from_positions(positions.to_vec()).unwrap()
    }

    #[test]
    fn from_ranks_computes_deltas() {
        // Paper §4.2: transaction ABD with ranks [1,2,4] encodes as [1,1,2].
        let v = PositionVector::from_ranks(&[1, 2, 4]).unwrap();
        assert_eq!(v.positions(), &[1, 1, 2]);
        assert_eq!(v.sum(), 4);
    }

    #[test]
    fn from_ranks_rejects_bad_input() {
        assert_eq!(PositionVector::from_ranks(&[]), Err(PltError::Empty));
        assert_eq!(
            PositionVector::from_ranks(&[0, 1]),
            Err(PltError::ZeroPosition)
        );
        assert_eq!(
            PositionVector::from_ranks(&[2, 2]),
            Err(PltError::UnsortedRanks)
        );
        assert_eq!(
            PositionVector::from_ranks(&[3, 1]),
            Err(PltError::UnsortedRanks)
        );
    }

    #[test]
    fn from_positions_validates() {
        assert!(PositionVector::from_positions(vec![1, 3]).is_ok());
        assert_eq!(PositionVector::from_positions(vec![]), Err(PltError::Empty));
        assert_eq!(
            PositionVector::from_positions(vec![1, 0]),
            Err(PltError::ZeroPosition)
        );
    }

    #[test]
    fn lemma_4_1_1_prefix_sums_recover_ranks() {
        let v = pv(&[1, 1, 2]);
        assert_eq!(v.ranks(), vec![1, 2, 4]);
        assert_eq!(v.ranks_iter().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn parent_drops_last_position() {
        assert_eq!(pv(&[1, 1, 2]).parent(), Some(pv(&[1, 1])));
        assert_eq!(pv(&[3]).parent(), None);
    }

    #[test]
    fn merged_at_sums_consecutive_positions() {
        // Lemma 4.1.3(b) example: V(ABCD)=[1,1,1,1]; dropping C merges
        // positions 2 and 3 giving V(ABD)=[1,1,2].
        let abcd = pv(&[1, 1, 1, 1]);
        assert_eq!(abcd.merged_at(2), pv(&[1, 1, 2]));
        assert_eq!(abcd.merged_at(0), pv(&[2, 1, 1]));
        assert_eq!(abcd.merged_at(1), pv(&[1, 2, 1]));
    }

    #[test]
    #[should_panic]
    fn merged_at_out_of_range_panics() {
        pv(&[1, 2]).merged_at(1);
    }

    #[test]
    fn level_down_subsets_enumerates_all_k_minus_1_subsets() {
        // ABCD = ranks [1,2,3,4]; its 3-subsets are ABC, ABD, ACD, BCD.
        let abcd = pv(&[1, 1, 1, 1]);
        let subs: Vec<PositionVector> = abcd.level_down_subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&pv(&[1, 1, 1]))); // ABC (drop D = parent)
        assert!(subs.contains(&pv(&[1, 1, 2]))); // ABD (drop C)
        assert!(subs.contains(&pv(&[1, 2, 1]))); // ACD (drop B)
        assert!(subs.contains(&pv(&[2, 1, 1]))); // BCD (drop A)
    }

    #[test]
    fn level_down_subsets_of_singleton_is_empty() {
        assert_eq!(pv(&[5]).level_down_subsets().count(), 0);
    }

    #[test]
    fn contains_rank_checks_prefix_sums() {
        let v = pv(&[1, 1, 2]); // ranks 1,2,4
        assert!(v.contains_rank(1));
        assert!(v.contains_rank(2));
        assert!(!v.contains_rank(3));
        assert!(v.contains_rank(4));
        assert!(!v.contains_rank(5));
    }

    #[test]
    fn contains_is_itemset_containment() {
        let abcd = pv(&[1, 1, 1, 1]); // {1,2,3,4}
        assert!(abcd.contains(&pv(&[1, 3]))); // {1,4}
        assert!(abcd.contains(&pv(&[2, 1]))); // {2,3}
        assert!(abcd.contains(&abcd));
        assert!(!abcd.contains(&pv(&[5]))); // {5}
        assert!(!pv(&[1, 3]).contains(&abcd));
        // {1,3} vs {1,2}: rank 2 missing from [1,2] (ranks 1,3).
        assert!(!pv(&[1, 2]).contains(&pv(&[1, 1])));
    }

    #[test]
    fn subset_vectors_enumerates_the_power_set() {
        let abc = pv(&[1, 1, 1]);
        let mut subs = abc.subset_vectors();
        subs.sort();
        let mut expect = vec![
            pv(&[1]),
            pv(&[2]),
            pv(&[3]),
            pv(&[1, 1]),
            pv(&[1, 2]),
            pv(&[2, 1]),
            pv(&[1, 1, 1]),
        ];
        expect.sort();
        assert_eq!(subs, expect);
    }

    #[test]
    fn extended_to_appends_delta() {
        let ab = pv(&[1, 1]);
        assert_eq!(ab.extended_to(5).unwrap(), pv(&[1, 1, 3]));
        assert_eq!(ab.extended_to(2), Err(PltError::UnsortedRanks));
        assert_eq!(ab.extended_to(1), Err(PltError::UnsortedRanks));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(pv(&[1, 1, 2]).to_string(), "[1,1,2]");
    }

    proptest! {
        /// Lemma 4.1.2: `from_ranks ∘ ranks` is the identity, hence the
        /// encoding is injective on itemsets.
        #[test]
        fn prop_roundtrip_ranks(ranks in proptest::collection::btree_set(1u32..500, 1..12)) {
            let ranks: Vec<Rank> = ranks.into_iter().collect();
            let v = PositionVector::from_ranks(&ranks).unwrap();
            prop_assert_eq!(v.ranks(), ranks);
        }

        /// Lemma 4.1.3: the set of (k−1)-subset vectors equals the vectors
        /// of all itemsets with one element removed.
        #[test]
        fn prop_level_down_matches_element_removal(
            ranks in proptest::collection::btree_set(1u32..100, 2..9)
        ) {
            let ranks: Vec<Rank> = ranks.into_iter().collect();
            let v = PositionVector::from_ranks(&ranks).unwrap();
            let mut got: Vec<PositionVector> = v.level_down_subsets().collect();
            got.sort();
            let mut expect: Vec<PositionVector> = (0..ranks.len()).map(|drop| {
                let sub: Vec<Rank> = ranks.iter().enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, &r)| r)
                    .collect();
                PositionVector::from_ranks(&sub).unwrap()
            }).collect();
            expect.sort();
            expect.dedup();
            got.dedup();
            prop_assert_eq!(got, expect);
        }

        /// `subset_vectors` agrees with enumerating rank subsets directly.
        #[test]
        fn prop_subset_vectors_match_rank_subsets(
            ranks in proptest::collection::btree_set(1u32..60, 1..7)
        ) {
            let ranks: Vec<Rank> = ranks.into_iter().collect();
            let v = PositionVector::from_ranks(&ranks).unwrap();
            let mut got = v.subset_vectors();
            got.sort();
            let n = ranks.len();
            let mut expect = Vec::new();
            for mask in 1u64..(1 << n) {
                let sub: Vec<Rank> = (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| ranks[i])
                    .collect();
                expect.push(PositionVector::from_ranks(&sub).unwrap());
            }
            expect.sort();
            prop_assert_eq!(got, expect);
        }

        /// `contains` agrees with set containment on the decoded ranks.
        #[test]
        fn prop_contains_agrees_with_set_containment(
            a in proptest::collection::btree_set(1u32..40, 1..8),
            b in proptest::collection::btree_set(1u32..40, 1..8),
        ) {
            let va = PositionVector::from_ranks(&a.iter().copied().collect::<Vec<_>>()).unwrap();
            let vb = PositionVector::from_ranks(&b.iter().copied().collect::<Vec<_>>()).unwrap();
            prop_assert_eq!(va.contains(&vb), b.is_subset(&a));
        }

        /// The sum is always the rank of the last item.
        #[test]
        fn prop_sum_is_last_rank(ranks in proptest::collection::btree_set(1u32..500, 1..12)) {
            let ranks: Vec<Rank> = ranks.into_iter().collect();
            let v = PositionVector::from_ranks(&ranks).unwrap();
            prop_assert_eq!(v.sum(), *ranks.last().unwrap());
        }
    }
}
