//! Exact reproduction of every exhibit in the paper (the E-* experiments
//! of `DESIGN.md`): Table 1's scan, Figures 1–5. Values are hand-derived
//! from the paper's §4.2/§5 walkthrough and asserted exactly.

use plt::core::item::Rank;
use plt::PositionVector;
use plt_bench::figures;

fn pv(p: &[Rank]) -> PositionVector {
    PositionVector::from_positions(p.to_vec()).unwrap()
}

#[test]
fn e_t1_frequent_items_and_ranks() {
    // "The set of frequent 1 items are then {(A,4),(B,5),(C,5),(D,4)} …
    //  Rank(A)=1, Rank(B)=2, Rank(C)=3, Rank(D)=4."
    let plt = figures::table1_plt();
    let entries: Vec<_> = plt.ranking().entries().collect();
    assert_eq!(entries, vec![(0, 1, 4), (1, 2, 5), (2, 3, 5), (3, 4, 4)]);
}

#[test]
fn e_f1_lexicographic_tree() {
    // Figure 1: the lexicographic tree of {A,B,C,D}. 15 itemset nodes +
    // null root; A's children are B, C, D; the sub-tree property 4.1.1
    // (repeated structures) holds: B's subtree at level 1 equals the
    // B-subtree under A.
    let (tree, _) = figures::exp_f1();
    assert_eq!(tree.size(), 16);
    let a = tree.root.child(1).unwrap();
    let b_top = tree.root.child(2).unwrap();
    let b_under_a = a.child(2).unwrap();
    // Property 4.1.1: same structure (ranks), different positions.
    fn ranks(n: &plt::core::tree::Node) -> Vec<u32> {
        let mut out = vec![n.rank];
        for c in &n.children {
            out.extend(ranks(c));
        }
        out
    }
    assert_eq!(ranks(b_top), ranks(b_under_a));
    assert_eq!(b_top.pos, 2); // B under root: pos = 2 − 0
    assert_eq!(b_under_a.pos, 1); // B under A: pos = 2 − 1
}

#[test]
fn e_f2_position_values() {
    // Figure 2: each node carries pos = Rank(node) − Rank(parent); the
    // paper's worked example: "node C is a child of node A at level 2 and
    // pos(C) = 2".
    let (tree, _) = figures::exp_f2();
    let a = tree.root.child(1).unwrap();
    assert_eq!(a.child(3).unwrap().pos, 2);
    // And under the root, C's position is its rank.
    assert_eq!(tree.root.child(3).unwrap().pos, 3);
}

#[test]
fn e_f3_constructed_plt() {
    // Figure 3: the PLT of Table 1. Partitions derived by hand:
    //   D_2: [3,1]×1;  D_3: [1,1,1]×2, [1,1,2]×1, [2,1,1]×1;
    //   D_4: [1,1,1,1]×1.
    let (plt, _) = figures::exp_f3();
    assert_eq!(plt.partition_len(1), 0);
    assert_eq!(plt.partition_len(2), 1);
    assert_eq!(plt.partition_len(3), 3);
    assert_eq!(plt.partition_len(4), 1);
    assert_eq!(plt.vector_frequency(&pv(&[3, 1])), 1);
    assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1])), 2);
    assert_eq!(plt.vector_frequency(&pv(&[1, 1, 2])), 1);
    assert_eq!(plt.vector_frequency(&pv(&[2, 1, 1])), 1);
    assert_eq!(plt.vector_frequency(&pv(&[1, 1, 1, 1])), 1);
    // Sums cached per the paper's construction ("we store the summation").
    assert_eq!(plt.get(&pv(&[1, 1, 2])).unwrap().sum, 4);
    assert_eq!(plt.get(&pv(&[1, 1, 1])).unwrap().sum, 3);
}

#[test]
fn e_f4_database_after_top_down() {
    // Figure 4: all subsets with inherited frequencies. The 15 supports
    // derived by hand from Table 1 (restricted to frequent items A..D).
    let (fig4, _) = figures::exp_f4();
    let expect: &[(&[Rank], u64)] = &[
        (&[1], 4),
        (&[2], 5),
        (&[3], 5),
        (&[4], 4),
        (&[1, 1], 4),
        (&[1, 2], 3),
        (&[1, 3], 2),
        (&[2, 1], 4),
        (&[2, 2], 3),
        (&[3, 1], 3),
        (&[1, 1, 1], 3),
        (&[1, 1, 2], 2),
        (&[1, 2, 1], 1),
        (&[2, 1, 1], 2),
        (&[1, 1, 1, 1], 1),
    ];
    assert_eq!(fig4.num_vectors(), expect.len());
    for &(positions, support) in expect {
        assert_eq!(
            fig4.vector_frequency(&pv(positions)),
            support,
            "vector {positions:?}"
        );
    }
}

#[test]
fn e_f5_conditional_database_of_d() {
    // Figure 5: "the conditional database for item D is the database that
    // contains vectors with a sum equal to D's rank" (= 4), support 4;
    // prefixes inserted back into the original database.
    let (support, cd, residual, _) = figures::exp_f5();
    assert_eq!(support, 4);
    assert_eq!(
        cd,
        vec![
            (pv(&[1, 1]), 1),
            (pv(&[1, 1, 1]), 1),
            (pv(&[2, 1]), 1),
            (pv(&[3]), 1),
        ]
    );
    assert_eq!(residual.vector_frequency(&pv(&[1, 1, 1])), 3);
    assert_eq!(residual.vector_frequency(&pv(&[1, 1])), 1);
    assert_eq!(residual.vector_frequency(&pv(&[2, 1])), 1);
    assert_eq!(residual.vector_frequency(&pv(&[3])), 1);
    assert_eq!(residual.num_vectors(), 4);
}

#[test]
fn paper_final_answer_at_min_support_two() {
    // The end-to-end answer for the paper's walkthrough: 13 frequent
    // itemsets; {A,C,D} and {A,B,C,D} fall below support 2.
    use plt::core::miner::Miner;
    let db = figures::table1_db();
    let result = plt::ConditionalMiner::default().mine(&db, figures::PAPER_MIN_SUPPORT);
    assert_eq!(result.len(), 13);
    assert_eq!(result.support(&[0, 1, 2]), Some(3));
    assert_eq!(result.support(&[0, 1, 3]), Some(2));
    assert_eq!(result.support(&[1, 2, 3]), Some(2));
    assert_eq!(result.support(&[0, 2, 3]), None);
    assert_eq!(result.support(&[0, 1, 2, 3]), None);
}
