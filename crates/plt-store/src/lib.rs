//! # plt-store — durable segmented storage for the PLT pipeline
//!
//! Everything upstream of this crate lives in memory and dies with the
//! process. This crate gives the sharded incremental pipeline a durable
//! spine, built from four pieces that mirror a classic LSM-ish design
//! but exploit one PLT-specific fact throughout: canonical position
//! vectors (Lemma 4.1.2) are *already* sorted, delta-friendly, bijective
//! keys for frequent itemsets, so "persist a mining fragment" reduces to
//! "write a sorted run of small varints".
//!
//! * [`wal`] — an append-only journal of ingest deltas with CRC-framed
//!   records, fsync batching and torn-tail truncation on replay;
//! * [`segment`] — immutable, mmap-backed segment files extending the
//!   PLTC encoding (front-coded varint position vectors) with a
//!   prefix-sum block index + first-key table for `O(log B)` point
//!   lookups without decoding the shard;
//! * [`manifest`] — the atomic checkpoint protocol: window snapshot,
//!   exact ranking, live segment set and shard map, published by
//!   tmp-rename-fsync;
//! * [`store`] / [`DurablePipeline`] — the policy layer: WAL-before-
//!   apply, cold-shard spilling under a resident budget, size-tiered
//!   compaction keyed by the shard sum-key, and crash recovery =
//!   manifest + WAL-tail replay.
//!
//! ## Example
//!
//! ```
//! use plt_shard::{Delta, ShardConfig};
//! use plt_store::{DurableOptions, DurablePipeline};
//!
//! let dir = std::env::temp_dir().join(format!("plt-store-doc-{}", std::process::id()));
//! let config = ShardConfig { min_support: 2, ..ShardConfig::default() };
//! let mut pipeline = DurablePipeline::open(&dir, config, DurableOptions::default()).unwrap();
//! pipeline.apply(Delta::add(vec![vec![1, 2], vec![1, 2, 3], vec![2, 3]])).unwrap();
//! assert_eq!(pipeline.support_of(&[2]), Some(3));
//! pipeline.checkpoint().unwrap();
//! drop(pipeline);
//!
//! // Reopen: the window and snapshot come back from disk.
//! let reopened = DurablePipeline::open(&dir, config, DurableOptions::default()).unwrap();
//! assert_eq!(reopened.len(), 3);
//! assert_eq!(reopened.support_of(&[1, 2]), Some(2));
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod manifest;
pub mod mmap;
pub mod pipeline;
pub mod segment;
pub mod store;
pub mod wal;

pub use manifest::Manifest;
pub use mmap::Mmap;
pub use pipeline::{DurableOptions, DurablePipeline, RecoveryReport, StoreError};
pub use segment::{encode_segment, write_segment, SegmentReader, ShardEntries, BLOCK_ENTRIES};
pub use store::{inspect_json, Store, StoreOptions, StoreStats};
pub use wal::{SeqRecord, Wal, WalRecord};
