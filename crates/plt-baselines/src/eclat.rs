//! Eclat / dEclat — vertical mining by TID-set intersection (Zaki, TKDE
//! 2000, the paper's reference \[12\]; diffsets from Zaki & Gouda, KDD'03,
//! reference \[16\]).
//!
//! The database is turned into per-item TID lists; the support of
//! `P ∪ {x, y}` is the size of the intersection of the TID lists of
//! `P ∪ {x}` and `P ∪ {y}`. The search is a depth-first walk over
//! equivalence classes sharing a prefix.
//!
//! With **diffsets**, a class member stores the TIDs its prefix has but it
//! does not: `d(Pxy) = t(Px) \ t(Py)` at the first level and
//! `d(Pxy) = d(Py) \ d(Px)` below, with
//! `support(Pxy) = support(Px) − |d(Pxy)|`. Dense data makes diffsets much
//! smaller than tidsets — the classic trade measured in experiment X1.
//!
//! Two **TID representations** are supported (see `DESIGN.md` §11):
//!
//! * sorted `Vec<Tid>` lists joined by sorted-merge (the classic layout,
//!   best when the database is sparse);
//! * packed `u64` bitmap rows joined by `AND`+popcount (or
//!   `AND NOT`+popcount for diffsets) through the [`plt_core::kernels`]
//!   layer, which dispatches to the AVX2 backend when compiled in.
//!
//! [`TidRepr::Auto`] picks bitmaps exactly when they are smaller than the
//! sorted lists ([`BitsetTidDb::prefer_bitmaps`]), i.e. on dense data.
//! Either way the recursion recycles its intermediate buffers through a
//! free-list pool, so steady-state mining allocates nothing per candidate.

use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_data::bitset::BitsetTidDb;
use plt_data::transaction::TransactionDb;
use plt_data::vertical::{Tid, VerticalDb};

/// How equivalence-class members store their TID sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TidRepr {
    /// Bitmaps when [`BitsetTidDb::prefer_bitmaps`] says they are smaller
    /// than the sorted lists, sorted lists otherwise.
    #[default]
    Auto,
    /// Always sorted `Vec<Tid>` lists (the classic Eclat layout).
    Tidset,
    /// Always packed `u64` bitmap rows.
    Bitset,
}

/// The Eclat miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct EclatMiner {
    /// Switch to diffsets below the first level (dEclat).
    pub use_diffsets: bool,
    /// TID-set representation policy.
    pub repr: TidRepr,
}

impl EclatMiner {
    /// The dEclat variant.
    pub fn with_diffsets() -> Self {
        EclatMiner {
            use_diffsets: true,
            ..Default::default()
        }
    }

    /// The same miner pinned to a TID representation.
    pub fn with_repr(mut self, repr: TidRepr) -> Self {
        self.repr = repr;
        self
    }
}

/// One member of an equivalence class over sorted TID lists: the extending
/// item, its TID-list or diffset, and its exact support.
#[derive(Debug, Clone)]
struct Member {
    item: Item,
    /// TID set (`diffset == false`) or diffset against the class prefix.
    tids: Vec<Tid>,
    support: Support,
}

/// One member of an equivalence class over bitmap rows.
#[derive(Debug, Clone)]
struct BitMember {
    item: Item,
    /// Bitmap of the TID set or diffset, `ceil(n/64)` words.
    words: Vec<u64>,
    support: Support,
}

/// Free-list recycling pool for the recursion's intermediate buffers.
/// Candidates that fail the support test hand their buffer straight back;
/// surviving members return theirs when their class has been fully
/// extended — so the whole depth-first walk touches a bounded set of
/// allocations instead of one `Vec` per candidate pair.
#[derive(Debug, Default)]
struct FreeList<T> {
    free: Vec<Vec<T>>,
}

impl<T> FreeList<T> {
    fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }
}

impl Miner for EclatMiner {
    fn name(&self) -> &'static str {
        if self.use_diffsets {
            "declat"
        } else {
            "eclat"
        }
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        let db = TransactionDb::from_sorted(transactions.to_vec());
        let vertical = VerticalDb::from_horizontal(&db);

        // Frequent items with their tidsets, ordered by ascending support
        // (the standard Eclat ordering: small classes first keeps
        // intermediate sets small).
        let mut frequent: Vec<(Item, &[Tid])> = vertical
            .columns()
            .filter(|(_, tids)| tids.len() as Support >= min_support)
            .collect();
        frequent.sort_by_key(|&(item, tids)| (tids.len(), item));
        for &(item, tids) in &frequent {
            result.insert(Itemset::from_sorted(vec![item]), tids.len() as Support);
        }

        let total_tids: usize = frequent.iter().map(|&(_, t)| t.len()).sum();
        let use_bitmaps = match self.repr {
            TidRepr::Tidset => false,
            TidRepr::Bitset => true,
            TidRepr::Auto => BitsetTidDb::prefer_bitmaps(db.len(), frequent.len(), total_tids),
        };

        let mut prefix: Vec<Item> = Vec::new();
        if use_bitmaps {
            let words_per_row = db.len().div_ceil(64);
            let root: Vec<BitMember> = frequent
                .iter()
                .map(|&(item, tids)| {
                    let mut words = vec![0u64; words_per_row];
                    for &t in tids {
                        words[t as usize >> 6] |= 1u64 << (t & 63);
                    }
                    BitMember {
                        item,
                        words,
                        support: tids.len() as Support,
                    }
                })
                .collect();
            let mut pool = FreeList::default();
            // The root level always holds tidsets; diffsets begin one
            // level in.
            self.extend_class_bits(
                &root,
                false,
                min_support,
                &mut prefix,
                &mut pool,
                &mut result,
            );
        } else {
            let root: Vec<Member> = frequent
                .iter()
                .map(|&(item, tids)| Member {
                    item,
                    tids: tids.to_vec(),
                    support: tids.len() as Support,
                })
                .collect();
            let mut pool = FreeList::default();
            self.extend_class_tids(
                &root,
                false,
                min_support,
                &mut prefix,
                &mut pool,
                &mut result,
            );
        }
        result
    }
}

impl EclatMiner {
    /// Recursively extends an equivalence class over sorted TID lists.
    /// `diffset_mode` says how the *members'* tid vectors are to be
    /// interpreted.
    fn extend_class_tids(
        &self,
        class: &[Member],
        diffset_mode: bool,
        min_support: Support,
        prefix: &mut Vec<Item>,
        pool: &mut FreeList<Tid>,
        result: &mut MiningResult,
    ) {
        for i in 0..class.len() {
            let a = &class[i];
            prefix.push(a.item);
            let mut child: Vec<Member> = Vec::new();
            for b in &class[i + 1..] {
                let mut tids = pool.take();
                let support = if self.use_diffsets {
                    if diffset_mode {
                        // d(Pab) = d(Pb) \ d(Pa); support = sup(Pa) − |d|.
                        VerticalDb::difference_into(&b.tids, &a.tids, &mut tids);
                    } else {
                        // Transition level: members hold tidsets;
                        // d(ab) = t(a) \ t(b); support = sup(a) − |d|.
                        VerticalDb::difference_into(&a.tids, &b.tids, &mut tids);
                    }
                    a.support - tids.len() as Support
                } else {
                    VerticalDb::intersect_into(&a.tids, &b.tids, &mut tids);
                    tids.len() as Support
                };
                if support >= min_support {
                    let mut items = prefix.clone();
                    items.push(b.item);
                    result.insert(Itemset::new(items), support);
                    child.push(Member {
                        item: b.item,
                        tids,
                        support,
                    });
                } else {
                    pool.put(tids);
                }
            }
            if !child.is_empty() {
                self.extend_class_tids(
                    &child,
                    self.use_diffsets,
                    min_support,
                    prefix,
                    pool,
                    result,
                );
            }
            for m in child {
                pool.put(m.tids);
            }
            prefix.pop();
        }
    }

    /// Recursively extends an equivalence class over bitmap rows. The
    /// joins are kernel calls: `AND`+popcount for tidsets,
    /// `AND NOT`+popcount for diffsets.
    fn extend_class_bits(
        &self,
        class: &[BitMember],
        diffset_mode: bool,
        min_support: Support,
        prefix: &mut Vec<Item>,
        pool: &mut FreeList<u64>,
        result: &mut MiningResult,
    ) {
        for i in 0..class.len() {
            let a = &class[i];
            prefix.push(a.item);
            let mut child: Vec<BitMember> = Vec::new();
            for b in &class[i + 1..] {
                let mut words = pool.take();
                let support = if self.use_diffsets {
                    let d = if diffset_mode {
                        // d(Pab) = d(Pb) \ d(Pa).
                        plt_simd::andnot_into(&b.words, &a.words, &mut words)
                    } else {
                        // Transition level: d(ab) = t(a) \ t(b).
                        plt_simd::andnot_into(&a.words, &b.words, &mut words)
                    };
                    a.support - d
                } else {
                    plt_simd::and_into(&a.words, &b.words, &mut words)
                };
                if support >= min_support {
                    let mut items = prefix.clone();
                    items.push(b.item);
                    result.insert(Itemset::new(items), support);
                    child.push(BitMember {
                        item: b.item,
                        words,
                        support,
                    });
                } else {
                    pool.put(words);
                }
            }
            if !child.is_empty() {
                self.extend_class_bits(
                    &child,
                    self.use_diffsets,
                    min_support,
                    prefix,
                    pool,
                    result,
                );
            }
            for m in child {
                pool.put(m.words);
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn all_variants() -> Vec<EclatMiner> {
        let mut v = Vec::new();
        for use_diffsets in [false, true] {
            for repr in [TidRepr::Auto, TidRepr::Tidset, TidRepr::Bitset] {
                v.push(EclatMiner { use_diffsets, repr });
            }
        }
        v
    }

    #[test]
    fn tidset_variant_matches_brute_force() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = EclatMiner::default().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn diffset_variant_matches_brute_force() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = EclatMiner::with_diffsets().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn bitset_variants_match_brute_force() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for miner in all_variants() {
            let got = miner.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "{miner:?}");
        }
    }

    #[test]
    fn diffsets_and_tidsets_agree_at_min_support_one() {
        let a = EclatMiner::default().mine(&table1(), 1);
        let b = EclatMiner::with_diffsets().mine(&table1(), 1);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        for miner in all_variants() {
            assert!(miner.mine(&[], 1).is_empty(), "{miner:?}");
            assert!(miner.mine(&table1(), 10).is_empty(), "{miner:?}");
        }
    }

    #[test]
    fn dense_db_deep_lattice() {
        // Dense enough that Auto picks bitmaps: 4 items over 5
        // transactions with every row fully set.
        let db = vec![vec![1, 2, 3, 4]; 5];
        for miner in all_variants() {
            let r = miner.mine(&db, 3);
            assert_eq!(r.len(), 15, "{miner:?}");
            assert_eq!(r.support(&[1, 2, 3, 4]), Some(5), "{miner:?}");
        }
    }

    #[test]
    fn bitmap_joins_are_counted() {
        let before = plt_simd::KernelStats::snapshot_thread();
        EclatMiner::default()
            .with_repr(TidRepr::Bitset)
            .mine(&table1(), 2);
        let delta = plt_simd::KernelStats::snapshot_thread().since(&before);
        assert!(delta.bitmap_intersections > 0, "{delta:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every Eclat variant (tidset/diffset × representation) agrees
        /// with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            for miner in all_variants() {
                let got = miner.mine(&db, min_support);
                prop_assert_eq!(got.sorted(), expect.sorted(), "{:?}", miner);
            }
        }
    }
}
