//! Apriori (Agrawal & Srikant, VLDB'94) — the candidate-generation
//! archetype the paper compares the pattern-growth family against.
//!
//! Level-wise: `L_1` from an item scan, then for each `k`:
//! `C_k = join(L_{k−1})`, prune candidates with an infrequent
//! `(k−1)`-subset (the anti-monotone property), count the survivors with a
//! database pass, keep those meeting the minimum support. Repeats until no
//! candidates survive — "a number of times equal to the size of the largest
//! frequent itemset" (§3).
//!
//! Two steps are pluggable, giving the ablations of experiments X1/X7:
//!
//! * **prune** — [`PruneStrategy::NaiveHashSet`] keeps `L_{k−1}` as plain
//!   itemsets in a hash set; [`PruneStrategy::PltSubsetChecker`] keeps it
//!   as PLT position vectors and probes the Lemma-4.1.3 subset vectors
//!   (the paper's "light subset checking");
//! * **count** — [`CountingStrategy::HashTree`] is the classic hash tree;
//!   [`CountingStrategy::SubsetEnumeration`] enumerates each transaction's
//!   `k`-subsets against a candidate hash map (better when transactions
//!   are short relative to `k`).

mod hash_tree;

pub use hash_tree::HashTree;

use plt_core::hash::{FxHashMap, FxHashSet};
use plt_core::item::{sorted_subset, Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_core::posvec::PositionVector;
use plt_core::ranking::{ItemRanking, RankPolicy};
use plt_core::subset::{NaiveChecker, SubsetChecker};
use plt_data::bitset::BitsetTidDb;
use plt_data::transaction::TransactionDb;
use plt_data::vertical::VerticalDb;

/// How the anti-monotone prune of candidate generation is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneStrategy {
    /// Plain hash set of the previous level's itemsets.
    #[default]
    NaiveHashSet,
    /// PLT subset checker: previous level stored as position vectors,
    /// `(k−1)`-subsets derived via Lemma 4.1.3.
    PltSubsetChecker,
}

/// How candidate supports are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingStrategy {
    /// Classic hash tree (default).
    #[default]
    HashTree,
    /// Enumerate each transaction's `k`-subsets against a candidate map;
    /// falls back to per-candidate subset tests for long transactions.
    SubsetEnumeration,
    /// Probe each candidate against per-item TID bitmaps: support is the
    /// popcount of the AND across its items' rows (`AND`+popcount through
    /// the kernel layer, AVX2 under the `simd` feature). Replaces the
    /// per-transaction subset tests entirely; best on dense data, where
    /// [`BitsetTidDb::prefer_bitmaps`] holds.
    BitsetProbe,
}

/// The Apriori miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriMiner {
    /// Prune implementation.
    pub prune: PruneStrategy,
    /// Counting implementation.
    pub counting: CountingStrategy,
}

impl AprioriMiner {
    /// Apriori with the PLT-backed prune step.
    pub fn with_plt_prune() -> Self {
        AprioriMiner {
            prune: PruneStrategy::PltSubsetChecker,
            ..Default::default()
        }
    }
}

impl Miner for AprioriMiner {
    fn name(&self) -> &'static str {
        match self.prune {
            PruneStrategy::NaiveHashSet => "apriori",
            PruneStrategy::PltSubsetChecker => "apriori+plt-prune",
        }
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);

        // Pass 1: L_1.
        let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
        for t in transactions {
            debug_assert!(
                t.windows(2).all(|w| w[0] < w[1]),
                "transactions must be sorted sets"
            );
            for &item in t {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<(Item, Support)> = counts
            .into_iter()
            .filter(|&(_, s)| s >= min_support)
            .collect();
        frequent.sort_unstable();
        if frequent.is_empty() {
            return result;
        }
        // Ranking for the PLT prune variant (item order = item id order, as
        // in the paper).
        let ranking = ItemRanking::from_frequent_items(frequent.clone(), RankPolicy::Lexicographic);

        let frequent_items: FxHashSet<Item> = frequent.iter().map(|&(i, _)| i).collect();
        for &(item, support) in &frequent {
            result.insert(Itemset::from_sorted(vec![item]), support);
        }

        // Filter transactions to frequent items once (every later pass
        // works on the filtered view).
        let filtered: Vec<Vec<Item>> = transactions
            .iter()
            .map(|t| {
                t.iter()
                    .copied()
                    .filter(|i| frequent_items.contains(i))
                    .collect()
            })
            .collect();

        // Bitmap rows for the probe-counting strategy, built once over the
        // filtered view and reused by every level's pass.
        let bitdb = match self.counting {
            CountingStrategy::BitsetProbe => {
                let db = TransactionDb::from_sorted(filtered.clone());
                Some(BitsetTidDb::from_vertical(&VerticalDb::from_horizontal(
                    &db,
                )))
            }
            _ => None,
        };

        // L_{k−1} as sorted itemsets.
        let mut prev_level: Vec<Vec<Item>> = frequent.iter().map(|&(i, _)| vec![i]).collect();

        for k in 2.. {
            let candidates = self.generate_candidates(&prev_level, k, &ranking);
            if candidates.is_empty() {
                break;
            }
            let counted = match self.counting {
                CountingStrategy::HashTree => count_hash_tree(k, candidates, &filtered),
                CountingStrategy::SubsetEnumeration => {
                    count_subset_enumeration(k, candidates, &filtered)
                }
                CountingStrategy::BitsetProbe => {
                    count_bitset_probe(candidates, bitdb.as_ref().expect("built above"))
                }
            };
            let mut level: Vec<Vec<Item>> = Vec::new();
            for (cand, support) in counted {
                if support >= min_support {
                    result.insert(Itemset::from_sorted(cand.clone()), support);
                    level.push(cand);
                }
            }
            if level.is_empty() {
                break;
            }
            level.sort();
            prev_level = level;
        }
        result
    }
}

impl AprioriMiner {
    /// `C_k` from `L_{k−1}`: join itemsets sharing their first `k−2` items,
    /// then prune candidates with an infrequent `(k−1)`-subset.
    fn generate_candidates(
        &self,
        prev_level: &[Vec<Item>],
        k: usize,
        ranking: &ItemRanking,
    ) -> Vec<Vec<Item>> {
        debug_assert!(
            prev_level.windows(2).all(|w| w[0] < w[1]),
            "L_{{k-1}} sorted"
        );
        let mut candidates = Vec::new();

        // Build the prune checker once per level.
        enum Checker {
            Naive(NaiveChecker),
            Plt(SubsetChecker),
        }
        let checker = match self.prune {
            PruneStrategy::NaiveHashSet => {
                let result: MiningResult = prev_level
                    .iter()
                    .map(|s| (Itemset::from_sorted(s.clone()), 1))
                    .collect();
                Checker::Naive(NaiveChecker::from_result(&result))
            }
            PruneStrategy::PltSubsetChecker => {
                let mut c = SubsetChecker::new();
                for s in prev_level {
                    let ranks: Vec<_> = s
                        .iter()
                        .map(|&i| ranking.rank(i).expect("frequent"))
                        .collect();
                    c.insert(PositionVector::from_ranks(&ranks).expect("non-empty"));
                }
                Checker::Plt(c)
            }
        };

        // Join step: runs of itemsets sharing the (k−2)-prefix.
        let mut run_start = 0;
        while run_start < prev_level.len() {
            let prefix = &prev_level[run_start][..k - 2];
            let mut run_end = run_start + 1;
            while run_end < prev_level.len() && &prev_level[run_end][..k - 2] == prefix {
                run_end += 1;
            }
            for i in run_start..run_end {
                for j in i + 1..run_end {
                    let mut cand = prev_level[i].clone();
                    cand.push(prev_level[j][k - 2]);
                    debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
                    let keep = match &checker {
                        Checker::Naive(c) => c.all_level_down_subsets_present(&cand),
                        Checker::Plt(c) => {
                            let ranks: Vec<_> = cand
                                .iter()
                                .map(|&x| ranking.rank(x).expect("frequent"))
                                .collect();
                            let v = PositionVector::from_ranks(&ranks).expect("non-empty");
                            c.all_level_down_subsets_present(&v)
                        }
                    };
                    if keep {
                        candidates.push(cand);
                    }
                }
            }
            run_start = run_end;
        }
        candidates
    }
}

/// Hash-tree counting pass.
fn count_hash_tree(
    k: usize,
    candidates: Vec<Vec<Item>>,
    filtered: &[Vec<Item>],
) -> Vec<(Vec<Item>, Support)> {
    let mut tree = HashTree::new(k, candidates);
    for (tid, t) in filtered.iter().enumerate() {
        tree.count_transaction(tid as u64, t);
    }
    tree.into_counts()
}

/// Subset-enumeration counting pass. Transactions whose `C(|t|, k)` is
/// large fall back to testing every candidate against the transaction.
fn count_subset_enumeration(
    k: usize,
    candidates: Vec<Vec<Item>>,
    filtered: &[Vec<Item>],
) -> Vec<(Vec<Item>, Support)> {
    const ENUM_BUDGET: u64 = 4_096;
    let mut counts: FxHashMap<Vec<Item>, Support> =
        candidates.into_iter().map(|c| (c, 0)).collect();
    let mut scratch: Vec<Item> = Vec::with_capacity(k);
    for t in filtered {
        if t.len() < k {
            continue;
        }
        if n_choose_k(t.len() as u64, k as u64) <= ENUM_BUDGET {
            enumerate_subsets(t, k, &mut scratch, &mut |sub| {
                if let Some(c) = counts.get_mut(sub) {
                    *c += 1;
                }
            });
        } else {
            for (cand, c) in counts.iter_mut() {
                if sorted_subset(cand, t) {
                    *c += 1;
                }
            }
        }
    }
    counts.into_iter().collect()
}

/// Bitmap-probe counting pass: one AND+popcount chain per candidate, no
/// transaction loop at all.
fn count_bitset_probe(
    candidates: Vec<Vec<Item>>,
    bitdb: &BitsetTidDb,
) -> Vec<(Vec<Item>, Support)> {
    let mut scratch: Vec<u64> = Vec::with_capacity(bitdb.words_per_row());
    candidates
        .into_iter()
        .map(|cand| {
            let support = bitdb.support(&cand, &mut scratch);
            (cand, support)
        })
        .collect()
}

/// `C(n, k)` saturating at `u64::MAX`.
fn n_choose_k(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return u64::MAX,
        };
    }
    acc
}

/// Calls `f` with every sorted `k`-subset of `t` (itself sorted).
fn enumerate_subsets(t: &[Item], k: usize, scratch: &mut Vec<Item>, f: &mut impl FnMut(&[Item])) {
    fn rec(
        t: &[Item],
        k: usize,
        start: usize,
        scratch: &mut Vec<Item>,
        f: &mut impl FnMut(&[Item]),
    ) {
        if scratch.len() == k {
            f(scratch);
            return;
        }
        let need = k - scratch.len();
        for i in start..=t.len() - need {
            scratch.push(t[i]);
            rec(t, k, i + 1, scratch, f);
            scratch.pop();
        }
    }
    scratch.clear();
    rec(t, k, 0, scratch, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn all_variants() -> Vec<AprioriMiner> {
        let mut v = Vec::new();
        for prune in [PruneStrategy::NaiveHashSet, PruneStrategy::PltSubsetChecker] {
            for counting in [
                CountingStrategy::HashTree,
                CountingStrategy::SubsetEnumeration,
                CountingStrategy::BitsetProbe,
            ] {
                v.push(AprioriMiner { prune, counting });
            }
        }
        v
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for miner in all_variants() {
            let got = miner.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "{miner:?}");
        }
    }

    #[test]
    fn min_support_one() {
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = AprioriMiner::default().mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn nothing_frequent() {
        let got = AprioriMiner::default().mine(&table1(), 10);
        assert!(got.is_empty());
    }

    #[test]
    fn empty_database() {
        let got = AprioriMiner::default().mine(&[], 1);
        assert!(got.is_empty());
    }

    #[test]
    fn prune_actually_prunes() {
        // DB where {1,2}, {1,3}, {2,3} are frequent but candidate {1,2,3}
        // is generated and then found infrequent; and {1,4},{2,4} frequent
        // but {3,4} not → candidate {1,2,4} requires subset {2,4}... build
        // a case where the prune removes a candidate before counting:
        // L_2 = {12, 13, 24} → join gives 123 (needs 23 ∉ L_2: pruned)
        // and nothing else.
        let db = vec![
            vec![1, 2],
            vec![1, 2],
            vec![1, 3],
            vec![1, 3],
            vec![2, 4],
            vec![2, 4],
            vec![1, 2], // lift {1,2}
            vec![3],
            vec![4],
        ];
        let r = AprioriMiner::default().mine(&db, 2);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[1, 3]));
        assert!(r.contains(&[2, 4]));
        assert!(!r.contains(&[1, 2, 3]));
        assert_eq!(r.max_size(), 2);
    }

    #[test]
    fn n_choose_k_basics() {
        assert_eq!(n_choose_k(5, 2), 10);
        assert_eq!(n_choose_k(10, 0), 1);
        assert_eq!(n_choose_k(3, 5), 0);
        assert_eq!(n_choose_k(60, 30), n_choose_k(60, 30));
        assert!(n_choose_k(200, 100) == u64::MAX);
    }

    #[test]
    fn enumerate_subsets_yields_all_combinations() {
        let t = vec![1, 2, 3, 4];
        let mut seen = Vec::new();
        let mut scratch = Vec::new();
        enumerate_subsets(&t, 2, &mut scratch, &mut |s| seen.push(s.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4],
            ]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// All four Apriori variants agree with brute force.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..14, 1..7),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            for miner in all_variants() {
                let got = miner.mine(&db, min_support);
                prop_assert_eq!(got.sorted(), expect.sorted());
            }
        }
    }
}
