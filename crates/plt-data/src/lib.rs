//! # plt-data — transactional-database substrate
//!
//! Everything the miners consume: horizontal and vertical database layouts,
//! synthetic workload generators in the style the frequent-itemset-mining
//! literature evaluates on, FIMI-format I/O, a name↔id catalog for
//! human-readable examples, and dataset statistics.
//!
//! The generators are deterministic given a seed, so every experiment in
//! `EXPERIMENTS.md` is exactly reproducible.

pub mod bitset;
pub mod catalog;
pub mod fimi;
pub mod gen;
pub mod stats;
pub mod transaction;
pub mod vertical;

pub use bitset::BitsetTidDb;
pub use catalog::ItemCatalog;
pub use gen::basket::{BasketConfig, BasketGenerator};
pub use gen::dense::{DenseConfig, DenseGenerator};
pub use gen::quest::{QuestConfig, QuestGenerator};
pub use gen::zipf::{ZipfConfig, ZipfGenerator};
pub use stats::DbStats;
pub use transaction::TransactionDb;
pub use vertical::VerticalDb;
