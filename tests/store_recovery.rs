//! Durability differentials for `plt-store`: a seed-deterministic crash
//! mid-batch must recover (manifest + WAL-tail replay) to exactly the
//! state a full re-mine of every journaled transaction produces; cold
//! shards spilled past the resident budget must answer point lookups
//! from mmap segments with the same supports as an in-memory mine; and
//! random access through a segment's block index must agree with the
//! sequential full decode on arbitrary shard contents.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use plt::core::miner::Miner;
use plt::data::{QuestConfig, QuestGenerator};
use plt::shard::{Delta, ShardConfig};
use plt::store::{
    inspect_json, write_segment, DurableOptions, DurablePipeline, SegmentReader, ShardEntries,
    StoreOptions, BLOCK_ENTRIES,
};
use plt::ConditionalMiner;
use proptest::prelude::*;

mod common;
use common::{diff_support_maps, support_map};

/// A unique scratch directory per test (removed on success).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "plt-store-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn quest(n: usize) -> Vec<Vec<u32>> {
    QuestGenerator::new(QuestConfig::t5i2(n))
        .generate()
        .into_transactions()
}

/// Asserts the durable pipeline's merged result equals a from-scratch
/// mine of `window`.
fn assert_matches_full_mine(
    pipeline: &DurablePipeline,
    window: &[Vec<u32>],
    min_support: u64,
    label: &str,
) {
    let reference = support_map(&ConditionalMiner::default().mine(window, min_support));
    let got = support_map(pipeline.result());
    if let Some(diff) = diff_support_maps(&reference, &got) {
        panic!(
            "{label}: recovered state diverged from full re-mine of {} journaled \
             transactions at min_support {min_support}:\n{diff}",
            window.len(),
        );
    }
}

#[test]
fn kill_mid_batch_recovery_matches_full_remine() {
    let dir = scratch("crash");
    let min_support = 6;
    let config = ShardConfig {
        min_support,
        ..ShardConfig::default()
    };
    let transactions = quest(600);
    let batches: Vec<&[Vec<u32>]> = transactions.chunks(40).collect();

    // Crash deterministically during the 7th journaled batch: the WAL
    // append (and fsync) has happened, the in-memory apply has not — so
    // the batch is durable and recovery must include it.
    let crash_at = 7u64;
    let options = DurableOptions {
        store: StoreOptions {
            sync_every: 4,
            fault_after_appends: Some(crash_at),
            ..StoreOptions::default()
        },
        checkpoint_every: Some(3),
        ..DurableOptions::default()
    };
    let mut pipeline = DurablePipeline::open(&dir, config, options).unwrap();
    let mut journaled = 0usize;
    for batch in &batches {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pipeline.apply(Delta::add(batch.to_vec()))
        }));
        match outcome {
            Ok(Ok(_)) => journaled += 1,
            Ok(Err(e)) => panic!("apply failed before the injected crash: {e}"),
            Err(_) => {
                // The injected panic fires after the WAL append, so the
                // batch that "crashed" is journaled too.
                journaled += 1;
                break;
            }
        }
    }
    assert_eq!(journaled as u64, crash_at, "crash fired mid-run");
    drop(pipeline); // the "killed" process

    // Reopen without the fault: manifest (checkpoint after batch 6) +
    // WAL-tail replay (batch 7) must reproduce every journaled batch.
    let recovered = DurablePipeline::open(
        &dir,
        config,
        DurableOptions {
            checkpoint_every: Some(3),
            ..DurableOptions::default()
        },
    )
    .unwrap();
    assert!(
        recovered.recovery().replayed_deltas >= 1,
        "the crashed batch lives only in the WAL tail and must be replayed"
    );
    let journaled_window: Vec<Vec<u32>> = transactions[..journaled * 40].to_vec();
    assert_eq!(recovered.len(), journaled_window.len());
    assert_matches_full_mine(&recovered, &journaled_window, min_support, "post-crash");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_checkpoint_restart_replays_nothing() {
    let dir = scratch("clean");
    let min_support = 6;
    let config = ShardConfig {
        min_support,
        ..ShardConfig::default()
    };
    let transactions = quest(300);
    let mut pipeline = DurablePipeline::open(&dir, config, DurableOptions::default()).unwrap();
    for batch in transactions.chunks(50) {
        pipeline.apply(Delta::add(batch.to_vec())).unwrap();
    }
    pipeline.checkpoint().unwrap();
    drop(pipeline);

    let reopened = DurablePipeline::open(&dir, config, DurableOptions::default()).unwrap();
    assert_eq!(
        reopened.recovery().replayed_deltas,
        0,
        "a checkpoint right before shutdown leaves an empty WAL tail"
    );
    assert_eq!(reopened.len(), transactions.len());
    assert_matches_full_mine(&reopened, &transactions, min_support, "clean restart");

    // The inspect dump sees the same directory: a manifest with an
    // epoch, at least one segment, and a WAL holding only its
    // checkpoint marker.
    let json = inspect_json(&dir).unwrap();
    for key in ["\"epoch\"", "\"segments\"", "\"wal\"", "\"shards\""] {
        assert!(json.contains(key), "inspect output missing {key}: {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_shards_answer_from_mmap_segments() {
    let dir = scratch("cold");
    let min_support = 8;
    let config = ShardConfig {
        min_support,
        ..ShardConfig::default()
    };
    let transactions = quest(400);
    // A two-shard resident budget against a default shard count forces
    // most of the tree cold; disabling the merged snapshot means every
    // query must route through a resident fragment or an mmap segment.
    let options = DurableOptions {
        resident_shards: Some(2),
        materialize_merged: false,
        checkpoint_every: Some(4),
        ..DurableOptions::default()
    };
    let mut pipeline = DurablePipeline::open(&dir, config, options).unwrap();
    for batch in transactions.chunks(40) {
        pipeline.apply(Delta::add(batch.to_vec())).unwrap();
    }
    pipeline.checkpoint().unwrap();
    assert!(
        pipeline.resident_shards() <= 2,
        "budget enforced, got {} resident",
        pipeline.resident_shards()
    );
    let stats = pipeline.store_stats();
    assert!(stats.spills > 0, "cold fragments must have been spilled");
    assert!(stats.segments >= 1);

    // Every frequent itemset of the full re-mine must be answerable at
    // its exact support, resident or cold.
    let reference = support_map(&ConditionalMiner::default().mine(&transactions, min_support));
    assert!(!reference.is_empty(), "dataset must induce frequent sets");
    for (items, &support) in &reference {
        assert_eq!(
            pipeline.support_of(items),
            Some(support),
            "support_of({items:?})"
        );
    }
    assert!(
        pipeline.store_stats().segment_lookups > 0,
        "with a 2-shard budget some lookups must hit mmap segments"
    );
    // Itemsets outside the frequent family answer None, not garbage.
    assert_eq!(pipeline.support_of(&[999_991]), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_single_block_segments_round_trip() {
    let dir = scratch("edge");
    std::fs::create_dir_all(&dir).unwrap();

    // A segment with no shards at all.
    let path = dir.join("empty.seg");
    write_segment(&path, 0, &[]).unwrap();
    let reader = SegmentReader::open(&path).unwrap();
    assert_eq!(reader.shard_ids().count(), 0);
    assert_eq!(reader.lookup(0, &[1]), None);

    // One shard whose entries fit a single block: the binary search
    // domain is one block and every key must resolve.
    let entries: Vec<(Vec<u32>, u64)> = (1..=BLOCK_ENTRIES as u32 / 2)
        .map(|i| (vec![i], u64::from(i) * 3))
        .collect();
    let path = dir.join("single.seg");
    write_segment(
        &path,
        99,
        &[ShardEntries {
            shard: 5,
            entries: entries.clone(),
        }],
    )
    .unwrap();
    let reader = SegmentReader::open(&path).unwrap();
    assert_eq!(reader.num_transactions(), 99);
    for (positions, support) in &entries {
        assert_eq!(reader.lookup(5, positions), Some(*support));
    }
    assert_eq!(reader.lookup(5, &[BLOCK_ENTRIES as u32]), None);
    assert_eq!(reader.iter_shard(5).unwrap(), entries);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random access through the block index agrees with the sequential
    /// full decode for arbitrary shard contents — including empty shards
    /// and shards below one block.
    #[test]
    fn prop_block_index_matches_sequential_decode(
        shards in proptest::collection::vec(
            (
                0u32..64,
                proptest::collection::vec(
                    (proptest::collection::vec(1u32..30, 1..6), 1u64..1000),
                    0..80,
                ),
            ),
            0..4,
        ),
        probes in proptest::collection::vec(
            proptest::collection::vec(1u32..30, 1..6),
            0..12,
        ),
    ) {
        // Distinct shard ids (a segment stores each shard section once)
        // and distinct keys per shard (duplicate keys would make the
        // expected support ambiguous after the writer's dedup).
        let mut seen = std::collections::BTreeSet::new();
        let shards: Vec<ShardEntries> = shards
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .map(|(shard, pairs)| {
                let entries: std::collections::BTreeMap<Vec<u32>, u64> =
                    pairs.into_iter().collect();
                ShardEntries {
                    shard,
                    entries: entries.into_iter().collect(),
                }
            })
            .collect();
        let dir = scratch("prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.seg");
        write_segment(&path, 7, &shards).unwrap();
        let reader = SegmentReader::open(&path).unwrap();

        for shard in &shards {
            // Sequential decode reproduces the (sorted) entries exactly.
            let sorted: Vec<(Vec<u32>, u64)> = shard.entries.clone();
            let decoded = reader.iter_shard(shard.shard);
            if sorted.is_empty() {
                if let Some(d) = decoded {
                    prop_assert!(d.is_empty());
                }
            } else {
                prop_assert_eq!(decoded.unwrap(), sorted.clone());
            }
            // Every stored key resolves through the block index...
            for (positions, support) in &sorted {
                prop_assert_eq!(reader.lookup(shard.shard, positions), Some(*support));
            }
            // ...and arbitrary probes agree with a linear scan.
            for probe in &probes {
                let expect = sorted
                    .iter()
                    .find(|(p, _)| p == probe)
                    .map(|&(_, support)| support);
                prop_assert_eq!(reader.lookup(shard.shard, probe), expect);
            }
        }
        // Absent shards answer nothing.
        prop_assert_eq!(reader.lookup(9_999, &[1]), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
