//! Load-shedding boundary tests for the reactor server: admission
//! control must refuse with an explicit `shed` error frame — never a
//! hang — at the exact connection-budget and accept-backlog edges, the
//! refusals must be visible in `stats`, and a shed client retrying with
//! backoff must get in once load drops.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use plt::serve::{
    bootstrap, serve, BuilderConfig, Client, ClientConfig, FaultConfig, FaultPlan, Request,
    RetryPolicy, ServerConfig, ServerModel,
};

fn warmup() -> Vec<Vec<u32>> {
    (0..16).map(|_| vec![1, 2, 3]).collect()
}

fn start_reactor(config: ServerConfig) -> (plt::serve::ServerHandle, plt::serve::BuilderHandle) {
    let (engine, builder) = bootstrap(
        &warmup(),
        BuilderConfig {
            window_capacity: 64,
            min_support: 2,
            ..BuilderConfig::default()
        },
    )
    .expect("bootstrap");
    let handle = serve("127.0.0.1:0", engine, Some(builder.queue()), config).expect("bind");
    (handle, builder)
}

/// Reads one `<len>\n<payload>\n` frame off a raw socket.
fn read_raw_frame(r: &mut impl BufRead) -> Option<String> {
    let mut header = String::new();
    if r.read_line(&mut header).ok()? == 0 {
        return None;
    }
    let len: usize = header.trim().parse().ok()?;
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload).ok()?;
    payload.pop();
    String::from_utf8(payload).ok()
}

/// Connects and reads whatever frame the server volunteers (a shed
/// refusal), with a bounded wait — a hang here is the failure mode this
/// suite exists to catch. `None` means the connection was admitted (no
/// refusal arrived within the wait) or closed silently.
fn connect_expecting_shed(addr: std::net::SocketAddr, wait: Duration) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(wait)).unwrap();
    let mut reader = BufReader::new(stream);
    read_raw_frame(&mut reader)
}

#[cfg(target_os = "linux")]
#[test]
fn the_connection_budget_edge_sheds_exactly_past_the_cap() {
    let cap = 4;
    let (handle, builder) = start_reactor(ServerConfig {
        server_model: ServerModel::Reactor,
        reactors: 1,
        max_connections: cap,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Exactly `cap` clients all get in and all work.
    let mut residents: Vec<Client> = (0..cap)
        .map(|i| {
            let mut c = Client::with_config(
                addr,
                ClientConfig {
                    retry: RetryPolicy::none(),
                    ..ClientConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("resident {i} refused under the cap: {e}"));
            assert_eq!(c.ping().expect("resident ping"), 1);
            c
        })
        .collect();

    // The cap+1'th is shed with the budget message — an answer, not a
    // hang, and not a silent close.
    let frame =
        connect_expecting_shed(addr, Duration::from_secs(5)).expect("shed frame, not silence");
    assert!(frame.contains("\"ok\":false"), "{frame}");
    assert!(
        frame.contains("shed: server at connection capacity"),
        "wrong shed reason: {frame}"
    );

    // The refusal is visible in stats, from a resident's connection.
    let stats = residents[0].stats().expect("stats");
    let reactor = stats.get("reactor").expect("reactor stats");
    assert!(
        reactor
            .get("shed_connections")
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 1,
        "shed not counted: {stats}"
    );
    assert!(
        stats
            .get("rejected_connections")
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 1
    );

    // Dropping one resident frees budget; a shed-aware client retrying
    // with backoff succeeds once the load drops.
    drop(residents.pop());
    let mut late = None;
    for _ in 0..50 {
        if let Ok(mut c) = Client::with_config(
            addr,
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 6,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(50),
                    jitter_seed: 7,
                },
                ..ClientConfig::default()
            },
        ) {
            if c.ping().is_ok() {
                late = Some(c);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(late.is_some(), "budget never freed after a resident left");

    drop(residents);
    drop(late);
    handle.shutdown();
    builder.stop();
}

#[cfg(target_os = "linux")]
#[test]
fn a_full_accept_backlog_sheds_instead_of_queueing() {
    // One reactor, a one-slot handoff queue, and a fault plan that
    // stalls every reactor I/O call for 150 ms: the reactor can't drain
    // accepted sockets as fast as we connect, so the dispatching
    // acceptor must hit the backlog edge and shed — not block, not
    // queue unboundedly.
    let stall = FaultPlan::shared(FaultConfig {
        stall: 1.0,
        stall_ms: 150,
        ..FaultConfig::disabled(0xBAC0)
    });
    let (handle, builder) = start_reactor(ServerConfig {
        server_model: ServerModel::Reactor,
        reactors: 1,
        accept_backlog: 1,
        max_connections: 1024,
        fault: Some(stall),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Occupy the reactor: a conn whose read is mid-stall.
    let mut busy = TcpStream::connect(addr).expect("first connect");
    busy.write_all(b"1")
        .expect("poke the reactor into a stalled read");

    // Burst more connections than the backlog can hold while the
    // reactor sleeps. At least one must come back with the backlog shed
    // frame; none may hang.
    // Shed frames come straight off the acceptor thread, so a short
    // read window suffices; an admitted-but-unanswered socket gives up
    // quickly instead of waiting out a full deadline.
    let mut sheds = 0;
    for _ in 0..12 {
        if let Some(frame) = connect_expecting_shed(addr, Duration::from_millis(400)) {
            assert!(
                frame.contains("shed: accept backlog full"),
                "unexpected refusal: {frame}"
            );
            sheds += 1;
        }
        // No sleep: outrun the stalled reactor on purpose.
    }
    assert!(
        sheds >= 1,
        "backlog edge never shed under a stalled reactor"
    );

    drop(busy);
    handle.shutdown();
    builder.stop();
}

#[cfg(target_os = "linux")]
#[test]
fn pipelined_batches_answer_in_order_on_both_models() {
    for model in [ServerModel::Threads, ServerModel::Reactor] {
        let (handle, builder) = start_reactor(ServerConfig {
            server_model: model,
            acceptors: 1,
            reactors: 1,
            ..ServerConfig::default()
        });

        let mut client = Client::connect(handle.addr()).expect("connect");
        // A mixed batch: point queries, a bad request in the middle (it
        // must not abort the batch), and more queries after it.
        let mut requests: Vec<Request> = Vec::new();
        for i in 0..32 {
            requests.push(Request::Support {
                items: if i % 2 == 0 {
                    vec![1, 2]
                } else {
                    vec![1, 2, 3]
                },
            });
        }
        requests.insert(
            16,
            Request::Extensions {
                items: vec![],
                k: 0,
            },
        );

        let replies = client.pipeline(&requests, 8).expect("pipeline transport");
        assert_eq!(replies.len(), requests.len());
        for (i, reply) in replies.iter().enumerate() {
            match (&requests[i], reply) {
                (Request::Support { .. }, Ok(v)) => {
                    // All 16 warmup baskets are {1,2,3}, so every
                    // queried subset has support 16.
                    assert_eq!(
                        v.get("support").and_then(|s| s.as_u64()),
                        Some(16),
                        "{model:?}: reply {i} out of order or wrong"
                    );
                }
                (Request::Extensions { .. }, _) => {
                    // Empty-itemset extensions may answer or error by
                    // protocol rules; either way it lands at position 16.
                }
                (req, Err(e)) => panic!("{model:?}: {req:?} failed: {e}"),
                _ => {}
            }
        }

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}
