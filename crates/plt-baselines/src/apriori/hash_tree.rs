//! The Apriori hash tree (Agrawal & Srikant, VLDB'94 §2.1.2).
//!
//! Candidates of a fixed size `k` are stored in a tree whose interior
//! nodes hash one item per depth into a fixed fan-out; leaves hold small
//! candidate buckets. Counting a transaction walks every hash path its
//! items can take and subset-tests only the candidates in the reached
//! leaves — the data structure that made candidate counting tractable
//! before pattern growth existed.
//!
//! A leaf can be reached through several item prefixes of one transaction;
//! candidates carry the id of the last transaction that counted them so a
//! transaction never double-counts (the classic guard).

use plt_core::item::{sorted_subset, Item, Support};

/// Interior fan-out. Small and fixed: candidates hash by `item % BRANCH`.
const BRANCH: usize = 8;
/// A leaf splits into an interior node when it exceeds this many
/// candidates (and depth still allows hashing another item).
const LEAF_CAP: usize = 16;

#[derive(Debug)]
struct Candidate {
    items: Vec<Item>,
    count: Support,
    /// Guard against double counting: id of the last transaction that
    /// incremented `count`.
    last_tid: u64,
}

#[derive(Debug)]
enum Node {
    Interior(Box<[Node; BRANCH]>),
    Leaf(Vec<Candidate>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }

    fn empty_interior() -> Node {
        Node::Interior(Box::new(std::array::from_fn(|_| Node::empty_leaf())))
    }
}

/// A hash tree over candidates of one size.
#[derive(Debug)]
pub struct HashTree {
    root: Node,
    k: usize,
    len: usize,
}

#[inline]
fn bucket(item: Item) -> usize {
    item as usize % BRANCH
}

impl HashTree {
    /// Builds the tree from `k`-item candidates (each sorted).
    pub fn new(k: usize, candidates: impl IntoIterator<Item = Vec<Item>>) -> HashTree {
        assert!(k >= 1);
        let mut tree = HashTree {
            root: Node::empty_leaf(),
            k,
            len: 0,
        };
        for c in candidates {
            debug_assert_eq!(c.len(), k);
            debug_assert!(c.windows(2).all(|w| w[0] < w[1]));
            tree.insert(c);
        }
        tree
    }

    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert(&mut self, items: Vec<Item>) {
        let k = self.k;
        let mut node = &mut self.root;
        let mut depth = 0;
        loop {
            match node {
                Node::Interior(buckets) => {
                    let b = bucket(items[depth]);
                    node = &mut buckets[b];
                    depth += 1;
                }
                Node::Leaf(cands) => {
                    cands.push(Candidate {
                        items,
                        count: 0,
                        last_tid: u64::MAX,
                    });
                    self.len += 1;
                    if cands.len() > LEAF_CAP && depth < k {
                        // Split: redistribute candidates one level deeper.
                        let cands = std::mem::take(cands);
                        let mut interior = Node::empty_interior();
                        if let Node::Interior(buckets) = &mut interior {
                            for c in cands {
                                let b = bucket(c.items[depth]);
                                match &mut buckets[b] {
                                    Node::Leaf(l) => l.push(c),
                                    Node::Interior(_) => unreachable!("fresh leaves"),
                                }
                            }
                        }
                        *node = interior;
                    }
                    return;
                }
            }
        }
    }

    /// Counts one transaction (sorted, duplicate-free, already filtered to
    /// frequent items). `tid` must be unique per transaction.
    pub fn count_transaction(&mut self, tid: u64, t: &[Item]) {
        if t.len() < self.k {
            return;
        }
        Self::visit(&mut self.root, tid, t, 0);
    }

    fn visit(node: &mut Node, tid: u64, t: &[Item], start: usize) {
        match node {
            Node::Interior(buckets) => {
                // Try every remaining item as the next hashed element.
                for i in start..t.len() {
                    Self::visit(&mut buckets[bucket(t[i])], tid, t, i + 1);
                }
            }
            Node::Leaf(cands) => {
                for c in cands {
                    if c.last_tid != tid && sorted_subset(&c.items, t) {
                        c.count += 1;
                        c.last_tid = tid;
                    }
                }
            }
        }
    }

    /// Consumes the tree, yielding `(candidate, count)` pairs.
    pub fn into_counts(self) -> Vec<(Vec<Item>, Support)> {
        let mut out = Vec::with_capacity(self.len);
        fn drain(node: Node, out: &mut Vec<(Vec<Item>, Support)>) {
            match node {
                Node::Interior(buckets) => {
                    for b in Vec::from(*buckets) {
                        drain(b, out);
                    }
                }
                Node::Leaf(cands) => {
                    out.extend(cands.into_iter().map(|c| (c.items, c.count)));
                }
            }
        }
        drain(self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_all(
        k: usize,
        candidates: Vec<Vec<Item>>,
        db: &[Vec<Item>],
    ) -> Vec<(Vec<Item>, Support)> {
        let mut tree = HashTree::new(k, candidates);
        for (tid, t) in db.iter().enumerate() {
            tree.count_transaction(tid as u64, t);
        }
        let mut counts = tree.into_counts();
        counts.sort();
        counts
    }

    #[test]
    fn counts_pairs_exactly() {
        let db = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![1, 3]];
        let candidates = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        let counts = count_all(2, candidates, &db);
        assert_eq!(
            counts,
            vec![(vec![1, 2], 2), (vec![1, 3], 2), (vec![2, 3], 2),]
        );
    }

    #[test]
    fn no_double_counting_through_multiple_paths() {
        // Transaction with many items reaching the same leaf repeatedly.
        let db = vec![(1u32..=12).collect::<Vec<_>>()];
        let candidates = vec![vec![1, 2, 3], vec![2, 4, 6], vec![10, 11, 12]];
        let counts = count_all(3, candidates, &db);
        assert!(counts.iter().all(|(_, c)| *c == 1), "{counts:?}");
    }

    #[test]
    fn short_transactions_are_skipped() {
        let db = vec![vec![1, 2]];
        let counts = count_all(3, vec![vec![1, 2, 3]], &db);
        assert_eq!(counts[0].1, 0);
    }

    #[test]
    fn splits_scale_to_many_candidates() {
        // 200 pair candidates force interior splits; verify counting stays
        // exact against a brute-force count.
        let items: Vec<Item> = (0..25).collect();
        let mut candidates = Vec::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                candidates.push(vec![items[i], items[j]]);
            }
        }
        let db: Vec<Vec<Item>> = (0..40)
            .map(|t| {
                items
                    .iter()
                    .copied()
                    .filter(|&x| !(x as usize + t).is_multiple_of(3))
                    .collect()
            })
            .collect();
        let counts = count_all(2, candidates.clone(), &db);
        assert_eq!(counts.len(), candidates.len());
        for (cand, count) in counts {
            let expect = db.iter().filter(|t| sorted_subset(&cand, t)).count() as Support;
            assert_eq!(count, expect, "candidate {cand:?}");
        }
    }

    #[test]
    fn empty_tree() {
        let tree = HashTree::new(2, Vec::<Vec<Item>>::new());
        assert!(tree.is_empty());
        assert_eq!(tree.into_counts(), vec![]);
    }
}
