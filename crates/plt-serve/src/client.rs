//! Blocking client for the framed protocol — used by the CLI's `query`
//! subcommand and the end-to-end tests.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use plt_core::item::{Item, Support};

use crate::json::Json;
use crate::proto::{read_frame, write_frame, Request};

/// One connection to a plt-serve server. Requests are sent one at a
/// time (the protocol is strictly request/response per frame).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

/// A client-side failure: transport, framing, or a server-reported
/// protocol error.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// Response was not valid JSON or missing required fields.
    Malformed(String),
    /// Server answered `{"ok":false,...}`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A support answer as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportReply {
    pub support: Support,
    pub frequent: bool,
    /// `"index"` or `"oracle"`.
    pub source: String,
    pub generation: u64,
}

impl Client {
    /// Connects with a default 10s read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the matching response. Protocol
    /// errors (`ok: false`) surface as [`ClientError::Server`].
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        self.request_raw(&request.to_json().to_string())
    }

    /// Sends a raw JSON payload (already rendered); used by the CLI to
    /// pass user-authored requests through unchanged.
    pub fn request_raw(&mut self, payload: &str) -> Result<Json, ClientError> {
        write_frame(&mut self.writer, payload)?;
        let reply = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Malformed("connection closed mid-request".into()))?;
        let v = Json::parse(&reply).map_err(|e| ClientError::Malformed(e.to_string()))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            None => Err(ClientError::Malformed("response missing \"ok\"".into())),
        }
    }

    /// `support` endpoint.
    pub fn support(&mut self, items: &[Item]) -> Result<SupportReply, ClientError> {
        let v = self.request(&Request::Support {
            items: items.to_vec(),
        })?;
        Ok(SupportReply {
            support: field_u64(&v, "support")?,
            frequent: v
                .get("frequent")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Malformed("missing \"frequent\"".into()))?,
            source: v
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            generation: field_u64(&v, "generation")?,
        })
    }

    /// `top_k` endpoint: `(items, support)` rows.
    pub fn top_k(
        &mut self,
        k: usize,
        min_size: usize,
    ) -> Result<Vec<(Vec<Item>, Support)>, ClientError> {
        let v = self.request(&Request::TopK { k, min_size })?;
        let rows = v
            .get("itemsets")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"itemsets\"".into()))?;
        rows.iter()
            .map(|row| {
                let items = row
                    .get("items")
                    .and_then(Json::as_items)
                    .ok_or_else(|| ClientError::Malformed("row missing \"items\"".into()))?;
                Ok((items, field_u64(row, "support")?))
            })
            .collect()
    }

    /// `extensions` endpoint: `(item, support)` rows.
    pub fn extensions(
        &mut self,
        items: &[Item],
        k: usize,
    ) -> Result<Vec<(Item, Support)>, ClientError> {
        let v = self.request(&Request::Extensions {
            items: items.to_vec(),
            k,
        })?;
        let rows = v
            .get("extensions")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"extensions\"".into()))?;
        rows.iter()
            .map(|row| Ok((field_u64(row, "item")? as Item, field_u64(row, "support")?)))
            .collect()
    }

    /// `recommend` endpoint: `(item, confidence)` rows (full detail is
    /// available via [`request`](Self::request)).
    pub fn recommend(&mut self, items: &[Item], k: usize) -> Result<Vec<(Item, f64)>, ClientError> {
        let v = self.request(&Request::Recommend {
            items: items.to_vec(),
            k,
        })?;
        let rows = v
            .get("recommendations")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"recommendations\"".into()))?;
        rows.iter()
            .map(|row| {
                let item = field_u64(row, "item")? as Item;
                let confidence = row
                    .get("confidence")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ClientError::Malformed("row missing \"confidence\"".into()))?;
                Ok((item, confidence))
            })
            .collect()
    }

    /// `stats` endpoint, returned as raw JSON (shape documented in the
    /// README).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Stats)
    }

    /// `ingest` endpoint; with `wait`, returns the published generation.
    pub fn ingest(
        &mut self,
        transactions: Vec<Vec<Item>>,
        wait: bool,
    ) -> Result<Option<u64>, ClientError> {
        let v = self.request(&Request::Ingest { transactions, wait })?;
        Ok(v.get("generation").and_then(Json::as_u64))
    }

    /// `ping` endpoint; returns the serving generation.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let v = self.request(&Request::Ping)?;
        field_u64(&v, "generation")
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn field_u64(v: &Json, name: &str) -> Result<u64, ClientError> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Malformed(format!("missing numeric \"{name}\"")))
}
