//! X14 — SIMD/bitset kernels: the arena engine pinned to each kernel
//! backend, Eclat under each tidset representation, and the raw
//! `plt_core::kernels` primitives on both backends. Build with
//! `--features simd` to compare against the AVX2 path; without it the
//! "simd" groups measure the scalar fallback (the dispatch degrades).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_baselines::{EclatMiner, TidRepr};
use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::kernels::{self, Backend};
use plt_core::miner::Miner;
use plt_core::{ConditionalMiner, Mine};

fn bench(c: &mut Criterion) {
    let workloads: Vec<(&str, Vec<Vec<u32>>, u64)> = vec![
        ("sparse", datasets::sparse(2_000), 20),
        ("dense", datasets::dense(600, 16), 180),
        ("zipf", datasets::zipf(2_000, 1.1), 20),
    ];
    for (name, db, min_sup) in &workloads {
        let plt = construct(db, *min_sup, ConstructOptions::conditional()).unwrap();
        let mut group = c.benchmark_group(format!("x14/{name}"));
        group.sample_size(10);
        for (label, backend) in [("scalar", Backend::Scalar), ("simd", Backend::Simd)] {
            group.bench_with_input(BenchmarkId::new("arena", label), &plt, |b, plt| {
                kernels::set_thread_backend(Some(backend));
                let miner = ConditionalMiner::default();
                b.iter(|| miner.mine_plt(plt));
                kernels::set_thread_backend(None);
            });
        }
        for (label, repr) in [("tidset", TidRepr::Tidset), ("bitset", TidRepr::Bitset)] {
            let miner = EclatMiner::default().with_repr(repr);
            group.bench_with_input(BenchmarkId::new("eclat", label), db, |b, db| {
                b.iter(|| miner.mine(db, *min_sup))
            });
        }
        group.finish();
    }

    // Raw kernel primitives over deterministic synthetic inputs.
    let deltas: Vec<u32> = (0..65_536u32).map(|i| i % 7).collect();
    let counts: Vec<u64> = (0..65_536u64)
        .map(|i| i.wrapping_mul(2_654_435_761) % 1_000)
        .collect();
    let ids: Vec<u32> = (0..65_536u32).collect();
    let words_a: Vec<u64> = (0..4_096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let words_b: Vec<u64> = (0..4_096u64)
        .map(|i| i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .collect();
    let mut group = c.benchmark_group("x14/kernels");
    for (label, backend) in [("scalar", Backend::Scalar), ("simd", Backend::Simd)] {
        group.bench_function(BenchmarkId::new("prefix_sum", label), |b| {
            kernels::set_thread_backend(Some(backend));
            let mut out = Vec::new();
            b.iter(|| kernels::prefix_sum_into(&deltas, &mut out));
            kernels::set_thread_backend(None);
        });
        group.bench_function(BenchmarkId::new("filter_ge", label), |b| {
            kernels::set_thread_backend(Some(backend));
            let mut kept = Vec::new();
            b.iter(|| kernels::filter_ge_into(&counts, &ids, 500, &mut kept));
            kernels::set_thread_backend(None);
        });
        group.bench_function(BenchmarkId::new("and_popcount", label), |b| {
            kernels::set_thread_backend(Some(backend));
            b.iter(|| kernels::and_popcount(&words_a, &words_b));
            kernels::set_thread_backend(None);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
