//! Incremental maintenance — the paper's "suitable for supporting large
//! databases" angle, demonstrated as a sliding window over a transaction
//! stream: transactions enter and leave the PLT without ever rebuilding
//! the structure, and mining the maintained PLT always matches a fresh
//! build over the window.
//!
//! ```text
//! cargo run --release --example incremental_window
//! ```

use plt::core::plt::Plt;
use plt::core::ranking::{ItemRanking, RankPolicy};
use plt::core::{ConditionalMiner, Mine};
use plt::data::{QuestConfig, QuestGenerator};

fn main() {
    // A stream of 6000 transactions; a window of 2000.
    let stream = QuestGenerator::new(QuestConfig::t5i2(6_000))
        .generate()
        .into_transactions();
    let window = 2_000usize;
    let min_support = 20;

    // Rank once over a prefix sample (a production system would re-rank
    // periodically; ranks must stay fixed between re-ranks).
    let ranking = ItemRanking::scan(&stream[..window], min_support, RankPolicy::Lexicographic);
    let mut plt = Plt::new(ranking.clone(), min_support).expect("valid support");
    for t in &stream[..window] {
        plt.insert_transaction(t)
            .expect("stream transactions are sets");
    }

    let miner = ConditionalMiner::default();
    println!(
        "window [0, {window}): {} vectors, {} frequent itemsets",
        plt.num_vectors(),
        miner.mine_plt(&plt).len()
    );

    // Slide in steps of 500: remove the oldest, insert the newest.
    let step = 500;
    let mut lo = 0;
    while lo + window + step <= stream.len() {
        for t in &stream[lo..lo + step] {
            plt.remove_transaction(t).expect("was inserted");
        }
        for t in &stream[lo + window..lo + window + step] {
            plt.insert_transaction(t)
                .expect("stream transactions are sets");
        }
        lo += step;

        let incremental = miner.mine_plt(&plt);

        // Cross-check against a from-scratch build of the same window
        // (same ranking, so the structures are comparable).
        let mut fresh = Plt::new(ranking.clone(), min_support).expect("valid support");
        for t in &stream[lo..lo + window] {
            fresh.insert_transaction(t).expect("sets");
        }
        let rebuilt = miner.mine_plt(&fresh);
        assert_eq!(
            incremental.sorted(),
            rebuilt.sorted(),
            "incremental window diverged from rebuild"
        );
        println!(
            "window [{lo}, {}): {} vectors, {} frequent itemsets (matches rebuild)",
            lo + window,
            plt.num_vectors(),
            incremental.len()
        );
    }
    println!("\nincremental maintenance matched a full rebuild at every step");
}
