//! H-Mine-style hyper-structure mining (Pei et al., ICDM'01 — the paper's
//! sparse-data reference).
//!
//! H-Mine's insight is to avoid materialising conditional databases:
//! transactions are stored once as frequent-item arrays (the
//! "hyper-structure"), and a projection is just a set of *(transaction,
//! offset)* cursors — H-Mine's header queues — threaded over them. Mining
//! extends a prefix item by item; the projected database of `prefix ∪ {x}`
//! is the cursor set positioned just past each occurrence of `x`.
//!
//! This implementation keeps the queue semantics via explicit cursor
//! vectors (idiomatic Rust in place of the original's in-place pointer
//! relinking, which would need interior mutability for no measurable
//! benefit at these scales).

use plt_core::hash::FxHashMap;
use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};

/// The H-Mine miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct HMineMiner;

/// A cursor into the hyper-structure: transaction index and the offset of
/// the first not-yet-consumed item.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    txn: u32,
    offset: u32,
}

impl Miner for HMineMiner {
    fn name(&self) -> &'static str {
        "h-mine"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);

        // Frequent items; the hyper-structure stores each transaction's
        // frequent items sorted ascending by item id.
        let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
        for t in transactions {
            for &item in t {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let frequent: FxHashMap<Item, Support> = counts
            .into_iter()
            .filter(|&(_, s)| s >= min_support)
            .collect();
        if frequent.is_empty() {
            return result;
        }

        let hyper: Vec<Vec<Item>> = transactions
            .iter()
            .map(|t| {
                t.iter()
                    .copied()
                    .filter(|i| frequent.contains_key(i))
                    .collect()
            })
            .collect();

        // Root projection: every non-empty row from offset 0.
        let root: Vec<Cursor> = hyper
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .map(|(i, _)| Cursor {
                txn: i as u32,
                offset: 0,
            })
            .collect();

        let mut prefix: Vec<Item> = Vec::new();
        mine_projection(&hyper, &root, min_support, &mut prefix, &mut result);
        result
    }
}

/// Recursive pseudo-projection mining.
fn mine_projection(
    hyper: &[Vec<Item>],
    cursors: &[Cursor],
    min_support: Support,
    prefix: &mut Vec<Item>,
    result: &mut MiningResult,
) {
    // Local header table: support of each item in the projected suffixes.
    let mut local: FxHashMap<Item, Support> = FxHashMap::default();
    for c in cursors {
        for &item in &hyper[c.txn as usize][c.offset as usize..] {
            *local.entry(item).or_insert(0) += 1;
        }
    }
    let mut items: Vec<(Item, Support)> = local
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .collect();
    items.sort_unstable();

    for (item, support) in items {
        prefix.push(item);
        result.insert(Itemset::from_sorted(prefix.clone()), support);

        // Project: advance each cursor past `item` where present.
        let mut projected: Vec<Cursor> = Vec::new();
        for c in cursors {
            let row = &hyper[c.txn as usize];
            if let Ok(pos) = row[c.offset as usize..].binary_search(&item) {
                let next = c.offset as usize + pos + 1;
                if next < row.len() {
                    projected.push(Cursor {
                        txn: c.txn,
                        offset: next as u32,
                    });
                }
            }
        }
        if !projected.is_empty() {
            mine_projection(hyper, &projected, min_support, prefix, result);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = HMineMiner.mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn min_support_one() {
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = HMineMiner.mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(HMineMiner.mine(&[], 1).is_empty());
        assert!(HMineMiner.mine(&table1(), 10).is_empty());
    }

    #[test]
    fn sparse_wide_database() {
        // H-Mine's home turf: many items, short transactions.
        let db: Vec<Vec<Item>> = (0..60u32).map(|i| vec![i % 20, 20 + (i % 3)]).collect();
        let expect = BruteForceMiner.mine(&db, 3);
        let got = HMineMiner.mine(&db, 3);
        assert_eq!(got.sorted(), expect.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// H-Mine agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = HMineMiner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
