//! X3 — scalability with database size at fixed relative support.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use plt_baselines::{AprioriMiner, FpGrowthMiner};
use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_core::ConditionalMiner;
use plt_parallel::ParallelPltMiner;

fn bench(c: &mut Criterion) {
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(ConditionalMiner::default()),
        Box::new(ParallelPltMiner::default()),
        Box::new(AprioriMiner::default()),
        Box::new(FpGrowthMiner),
    ];
    for n in [500usize, 1_000, 2_000, 4_000] {
        let db = datasets::sparse(n);
        let min_sup = ((0.01 * n as f64).ceil() as u64).max(1);
        let mut group = c.benchmark_group(format!("x3/d{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        for miner in &miners {
            group.bench_with_input(BenchmarkId::from_parameter(miner.name()), &db, |b, db| {
                b.iter(|| miner.mine(db, min_sup))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
