//! The checkpoint manifest and the window snapshot file.
//!
//! `MANIFEST` is the single source of truth for a data directory: which
//! WAL holds the live tail, which window snapshot to reload, which
//! segment files are alive, which segment serves each shard, and the
//! **exact ranking** in force at checkpoint time (stored as `(item,
//! support)` pairs in rank order plus the policy byte —
//! `ItemRanking::from_frequent_items` is deterministic, so recovery
//! reproduces the identical rank function, and with it identical
//! canonical position vectors).
//!
//! The manifest is replaced atomically: write `MANIFEST.tmp`, fsync it,
//! `rename(2)` over `MANIFEST`, fsync the directory. A crash leaves
//! either the old or the new manifest, never a torn one — and every file
//! a manifest references is always fsynced before the rename publishes
//! it.
//!
//! ```text
//! manifest := "PLTM" | version u32 LE | crc32 u32 LE (over remainder)
//!             | epoch varint | last_seq varint
//!             | min_support varint | shard_count varint
//!             | policy u8 | n_items varint | (item, support varints)×n
//!             | wal name | window name          (varint len + utf-8)
//!             | n_segments varint | segment names
//!             | shard_map: shard_count varints  (0 = none, else ordinal+1)
//!             | dirty: shard_count bytes
//! window   := "PLTX" | version u32 LE | crc32 u32 LE (over remainder)
//!             | n varint | (len varint, items varint×len)×n
//! ```

use std::io::{self, Write};
use std::path::Path;

use plt_compress::crc::crc32;
use plt_compress::varint;
use plt_core::item::{Item, Support};
use plt_core::ranking::{ItemRanking, RankPolicy};

/// Manifest file name within a data directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Manifest file magic.
pub const MANIFEST_MAGIC: &[u8; 4] = b"PLTM";

/// Window snapshot magic.
pub const WINDOW_MAGIC: &[u8; 4] = b"PLTX";

/// Format version shared by manifest and window files.
pub const STORE_VERSION: u32 = 1;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    varint::put_u64(out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
}

fn get_name(buf: &mut &[u8]) -> io::Result<String> {
    let len = varint::get_u64(buf) as usize;
    if buf.len() < len {
        return Err(bad("truncated name"));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(head.to_vec()).map_err(|_| bad("name is not utf-8"))
}

fn policy_byte(policy: RankPolicy) -> u8 {
    match policy {
        RankPolicy::Lexicographic => 0,
        RankPolicy::FrequencyDescending => 1,
        RankPolicy::FrequencyAscending => 2,
    }
}

fn policy_from(byte: u8) -> io::Result<RankPolicy> {
    match byte {
        0 => Ok(RankPolicy::Lexicographic),
        1 => Ok(RankPolicy::FrequencyDescending),
        2 => Ok(RankPolicy::FrequencyAscending),
        _ => Err(bad("bad rank policy byte")),
    }
}

/// Checkpoint metadata: everything recovery needs besides the WAL tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint epoch (monotone; names the WAL/window files).
    pub epoch: u64,
    /// WAL sequence number the checkpoint captured up to (exclusive):
    /// the current WAL's records all have `seq >= last_seq`.
    pub last_seq: u64,
    /// Pipeline minimum support.
    pub min_support: Support,
    /// Shard count at checkpoint time.
    pub shard_count: usize,
    /// Ranking policy.
    pub policy: RankPolicy,
    /// Exact ranking entries, rank order: `(item, support-at-rank-time)`.
    pub items: Vec<(Item, Support)>,
    /// Live WAL file name (tail to replay).
    pub wal: String,
    /// Window snapshot file name.
    pub window: String,
    /// Live segment file names.
    pub segments: Vec<String>,
    /// For each shard, the index into `segments` serving it (`None` when
    /// the shard has never been persisted — recovery re-mines it).
    pub shard_map: Vec<Option<usize>>,
    /// Dirty flags at checkpoint time (normally all false: checkpoints
    /// run between applies).
    pub dirty: Vec<bool>,
}

impl Manifest {
    /// Rebuilds the exact ranking the manifest captured.
    pub fn ranking(&self) -> ItemRanking {
        ItemRanking::from_frequent_items(self.items.clone(), self.policy)
    }

    /// Serialises the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&STORE_VERSION.to_le_bytes());
        let crc_pos = out.len();
        out.extend_from_slice(&[0u8; 4]);

        varint::put_u64(&mut out, self.epoch);
        varint::put_u64(&mut out, self.last_seq);
        varint::put_u64(&mut out, self.min_support);
        varint::put_u64(&mut out, self.shard_count as u64);
        out.push(policy_byte(self.policy));
        varint::put_u64(&mut out, self.items.len() as u64);
        for &(item, support) in &self.items {
            varint::put_u32(&mut out, item);
            varint::put_u64(&mut out, support);
        }
        put_name(&mut out, &self.wal);
        put_name(&mut out, &self.window);
        varint::put_u64(&mut out, self.segments.len() as u64);
        for name in &self.segments {
            put_name(&mut out, name);
        }
        debug_assert_eq!(self.shard_map.len(), self.shard_count);
        debug_assert_eq!(self.dirty.len(), self.shard_count);
        for &entry in &self.shard_map {
            varint::put_u64(&mut out, entry.map(|i| i as u64 + 1).unwrap_or(0));
        }
        for &d in &self.dirty {
            out.push(u8::from(d));
        }

        let crc = crc32(&out[crc_pos + 4..]);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates manifest bytes.
    pub fn decode(bytes: &[u8]) -> io::Result<Manifest> {
        if bytes.len() < 12 || &bytes[..4] != MANIFEST_MAGIC {
            return Err(bad("not a PLT manifest (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != STORE_VERSION {
            return Err(bad(&format!("unsupported manifest version {version}")));
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if crc32(&bytes[12..]) != stored {
            return Err(bad("manifest CRC32 mismatch"));
        }
        std::panic::catch_unwind(|| -> io::Result<Manifest> {
            let mut buf = &bytes[12..];
            let epoch = varint::get_u64(&mut buf);
            let last_seq = varint::get_u64(&mut buf);
            let min_support = varint::get_u64(&mut buf);
            let shard_count = varint::get_u64(&mut buf) as usize;
            let policy = policy_from(*buf.first().ok_or_else(|| bad("truncated manifest"))?)?;
            buf = &buf[1..];
            let n_items = varint::get_u64(&mut buf) as usize;
            let mut items = Vec::with_capacity(n_items);
            for _ in 0..n_items {
                let item = varint::get_u32(&mut buf);
                let support = varint::get_u64(&mut buf);
                items.push((item, support));
            }
            let wal = get_name(&mut buf)?;
            let window = get_name(&mut buf)?;
            let n_segments = varint::get_u64(&mut buf) as usize;
            let mut segments = Vec::with_capacity(n_segments);
            for _ in 0..n_segments {
                segments.push(get_name(&mut buf)?);
            }
            let mut shard_map = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                let v = varint::get_u64(&mut buf);
                if v as usize > n_segments {
                    return Err(bad("shard map points past the segment list"));
                }
                shard_map.push((v > 0).then(|| v as usize - 1));
            }
            if buf.len() != shard_count {
                return Err(bad("dirty bitmap length mismatch"));
            }
            let dirty = buf.iter().map(|&b| b != 0).collect();
            Ok(Manifest {
                epoch,
                last_seq,
                min_support,
                shard_count,
                policy,
                items,
                wal,
                window,
                segments,
                shard_map,
                dirty,
            })
        })
        .map_err(|_| bad("malformed manifest structure"))?
    }

    /// Atomically publishes the manifest into `dir`: tmp file → fsync →
    /// rename → directory fsync.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let target = dir.join(MANIFEST_NAME);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &target)?;
        sync_dir(dir)
    }

    /// Reads the manifest of `dir`, `None` when the directory has never
    /// been checkpointed.
    pub fn read(dir: &Path) -> io::Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_NAME);
        match std::fs::read(&path) {
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Fsyncs a directory so renames/creates within it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Writes a window snapshot (write → fsync). `transactions` are stored
/// in window order.
pub fn write_window<'a, I>(path: &Path, transactions: I) -> io::Result<u64>
where
    I: ExactSizeIterator<Item = &'a [Item]>,
{
    let mut out = Vec::new();
    out.extend_from_slice(WINDOW_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    let crc_pos = out.len();
    out.extend_from_slice(&[0u8; 4]);
    varint::put_u64(&mut out, transactions.len() as u64);
    for t in transactions {
        varint::put_u64(&mut out, t.len() as u64);
        for &item in t {
            varint::put_u32(&mut out, item);
        }
    }
    let crc = crc32(&out[crc_pos + 4..]);
    out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    let mut file = std::fs::File::create(path)?;
    file.write_all(&out)?;
    file.sync_all()?;
    Ok(out.len() as u64)
}

/// Reads a window snapshot back.
pub fn read_window(path: &Path) -> io::Result<Vec<Vec<Item>>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 12 || &bytes[..4] != WINDOW_MAGIC {
        return Err(bad("not a PLT window snapshot (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != STORE_VERSION {
        return Err(bad(&format!("unsupported window version {version}")));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if crc32(&bytes[12..]) != stored {
        return Err(bad("window snapshot CRC32 mismatch"));
    }
    std::panic::catch_unwind(|| {
        let mut buf = &bytes[12..];
        let n = varint::get_u64(&mut buf) as usize;
        let mut out = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            let len = varint::get_u64(&mut buf) as usize;
            let mut t = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                t.push(varint::get_u32(&mut buf));
            }
            out.push(t);
        }
        out
    })
    .map_err(|_| bad("malformed window snapshot"))
}

/// Names for the files of one epoch.
pub fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}.plj")
}

/// Window snapshot name for an epoch.
pub fn window_name(epoch: u64) -> String {
    format!("window-{epoch:06}.plx")
}

/// Segment file name: epoch it was born in plus a monotone counter.
pub fn segment_name(epoch: u64, counter: u64) -> String {
    format!("seg-{epoch:06}-{counter:06}.plts")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 3,
            last_seq: 17,
            min_support: 2,
            shard_count: 4,
            policy: RankPolicy::FrequencyDescending,
            items: vec![(10, 9), (4, 7), (2, 7), (8, 3)],
            wal: wal_name(3),
            window: window_name(3),
            segments: vec![segment_name(2, 0), segment_name(3, 1)],
            shard_map: vec![Some(0), None, Some(1), Some(1)],
            dirty: vec![false, true, false, false],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        // The rebuilt ranking ranks every stored item.
        let ranking = back.ranking();
        assert_eq!(ranking.len(), 4);
        for &(item, _) in &back.items {
            assert!(ranking.rank(item).is_some());
        }
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let bytes = sample().encode();
        for pos in [0, 5, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xff;
            assert!(Manifest::decode(&corrupted).is_err(), "flip at {pos}");
        }
        assert!(Manifest::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(Manifest::decode(&[]).is_err());
    }

    #[test]
    fn atomic_write_and_read() {
        let dir = std::env::temp_dir().join(format!("plt-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Manifest::read(&dir).unwrap().is_none());
        let m = sample();
        m.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m.clone()));
        // Re-publish (the common path): replaces, does not append.
        let mut m2 = m;
        m2.epoch = 4;
        m2.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap().unwrap().epoch, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_snapshot_round_trip() {
        let path = std::env::temp_dir().join(format!("plt-window-{}.plx", std::process::id()));
        let window: Vec<Vec<Item>> = vec![vec![1, 2, 3], vec![], vec![9]];
        write_window(&path, window.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(read_window(&path).unwrap(), window);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_window_round_trip() {
        let path = std::env::temp_dir().join(format!("plt-window-e-{}.plx", std::process::id()));
        let window: Vec<Vec<Item>> = Vec::new();
        write_window(&path, window.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(read_window(&path).unwrap(), window);
        std::fs::remove_file(&path).ok();
    }
}
