//! Lossy Counting (Manku & Motwani, VLDB'02): deterministic approximate
//! frequency counting over an unbounded stream.
//!
//! The stream is conceptually divided into buckets of width
//! `w = ⌈1/ε⌉`. Each tracked entry carries its observed count and the
//! maximum possible undercount `Δ` (the bucket id when it was first
//! tracked). At every bucket boundary, entries with
//! `count + Δ ≤ current_bucket` are evicted.
//!
//! Deterministic guarantees after `N` observations:
//!
//! 1. **no false negatives** — every item with true frequency `≥ εN` is
//!    tracked, and [`LossyCounter::frequent`]`(s)` (which returns items
//!    with `count ≥ (s − ε)·N`) reports every item with true frequency
//!    `≥ s·N`;
//! 2. **bounded undercount** — `true − count ≤ εN` for tracked items, and
//!    estimated counts never exceed true counts;
//! 3. **bounded memory** — at most `(1/ε)·log₂(εN)` entries (in practice
//!    far fewer).

use plt_core::hash::FxHashMap;
use plt_core::item::Item;

/// One tracked entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    count: u64,
    /// Maximum possible undercount (bucket at first insertion − 1).
    delta: u64,
}

/// The Lossy Counting sketch over items.
///
/// # Examples
///
/// ```
/// use plt_stream::LossyCounter;
///
/// let mut lc = LossyCounter::new(0.01);
/// for _ in 0..90 { lc.observe(7); }
/// for i in 0..10 { lc.observe(i); }
/// assert_eq!(lc.observed(), 100);
/// // Item 7 is a 90% heavy hitter; its estimate is within εN of truth.
/// assert!(lc.estimate(7) >= 90 - 1);
/// assert_eq!(lc.frequent(0.5)[0].0, 7);
/// ```
#[derive(Debug, Clone)]
pub struct LossyCounter {
    epsilon: f64,
    bucket_width: u64,
    entries: FxHashMap<Item, Entry>,
    /// Total observations so far (`N`).
    observed: u64,
    /// Current bucket id (1-based).
    bucket: u64,
}

impl LossyCounter {
    /// Creates a counter with error bound `epsilon ∈ (0, 1)`.
    pub fn new(epsilon: f64) -> LossyCounter {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        LossyCounter {
            epsilon,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            entries: FxHashMap::default(),
            observed: 0,
            bucket: 1,
        }
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Observations so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Currently tracked entries (the memory footprint).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Observes one item occurrence.
    pub fn observe(&mut self, item: Item) {
        self.observed += 1;
        self.entries
            .entry(item)
            .and_modify(|e| e.count += 1)
            .or_insert(Entry {
                count: 1,
                delta: self.bucket - 1,
            });
        if self.observed.is_multiple_of(self.bucket_width) {
            self.prune();
            self.bucket += 1;
        }
    }

    /// Observes every item of a transaction.
    pub fn observe_transaction(&mut self, transaction: &[Item]) {
        for &item in transaction {
            self.observe(item);
        }
    }

    fn prune(&mut self) {
        let bucket = self.bucket;
        self.entries.retain(|_, e| e.count + e.delta > bucket);
    }

    /// The estimated count of an item (never exceeds the true count;
    /// undercounts by at most `εN`). Untracked items estimate 0.
    pub fn estimate(&self, item: Item) -> u64 {
        self.entries.get(&item).map_or(0, |e| e.count)
    }

    /// Items answering a frequency query at support `s ∈ (0, 1]`: every
    /// item with true frequency `≥ s·N` is included (no false negatives);
    /// included items have true frequency `≥ (s − ε)·N`.
    pub fn frequent(&self, s: f64) -> Vec<(Item, u64)> {
        assert!(s > 0.0 && s <= 1.0, "support must be in (0, 1]");
        assert!(
            s >= self.epsilon,
            "querying below epsilon voids the guarantee"
        );
        let threshold = (s - self.epsilon) * self.observed as f64;
        let mut out: Vec<(Item, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.count as f64 >= threshold)
            .map(|(&i, e)| (i, e.count))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Exact counts for comparison.
    fn exact(streamed: &[Item]) -> FxHashMap<Item, u64> {
        let mut m = FxHashMap::default();
        for &i in streamed {
            *m.entry(i).or_insert(0) += 1;
        }
        m
    }

    fn skewed_stream(n: usize, seed: u64) -> Vec<Item> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Geometric-ish skew over 64 items.
                let mut item = 0u32;
                while item < 63 && rng.gen::<f64>() < 0.55 {
                    item += 1;
                }
                item
            })
            .collect()
    }

    #[test]
    fn estimates_never_exceed_truth_and_undercount_is_bounded() {
        let stream = skewed_stream(50_000, 1);
        let mut lc = LossyCounter::new(0.001);
        for &i in &stream {
            lc.observe(i);
        }
        let truth = exact(&stream);
        let bound = (0.001 * stream.len() as f64).ceil() as u64;
        for (&item, &true_count) in &truth {
            let est = lc.estimate(item);
            assert!(est <= true_count, "overcount on {item}");
            if est > 0 {
                assert!(
                    true_count - est <= bound,
                    "undercount {} > εN {} on {item}",
                    true_count - est,
                    bound
                );
            } else {
                // Untracked → true count must be ≤ εN.
                assert!(true_count <= bound, "dropped a frequent item {item}");
            }
        }
    }

    #[test]
    fn no_false_negatives_at_query_time() {
        let stream = skewed_stream(30_000, 2);
        let mut lc = LossyCounter::new(0.002);
        lc.observe_transaction(&stream);
        let truth = exact(&stream);
        let s = 0.02;
        let reported: std::collections::HashSet<Item> =
            lc.frequent(s).into_iter().map(|(i, _)| i).collect();
        for (&item, &count) in &truth {
            if count as f64 >= s * stream.len() as f64 {
                assert!(reported.contains(&item), "missed frequent item {item}");
            }
        }
        // And everything reported is at least (s − ε)-frequent.
        for item in reported {
            let count = truth[&item] as f64;
            assert!(count >= (s - lc.epsilon()) * stream.len() as f64);
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let stream = skewed_stream(100_000, 3);
        let mut lc = LossyCounter::new(0.01);
        for &i in &stream {
            lc.observe(i);
        }
        // Theoretical bound: (1/ε)·log2(εN) = 100 · log2(1000) ≈ 997.
        let bound = (1.0 / 0.01) * (0.01 * stream.len() as f64).log2();
        assert!(
            (lc.tracked() as f64) <= bound,
            "{} tracked > bound {bound}",
            lc.tracked()
        );
        assert_eq!(lc.observed(), 100_000);
    }

    #[test]
    fn query_below_epsilon_is_rejected() {
        let lc = LossyCounter::new(0.05);
        let r = std::panic::catch_unwind(|| lc.frequent(0.01));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_is_rejected() {
        LossyCounter::new(0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The three Lossy Counting invariants hold on arbitrary streams.
        #[test]
        fn prop_invariants(
            stream in proptest::collection::vec(0u32..40, 100..3000),
            eps_thousandths in 2u64..100,
        ) {
            let epsilon = eps_thousandths as f64 / 1000.0;
            let mut lc = LossyCounter::new(epsilon);
            lc.observe_transaction(&stream);
            let truth = exact(&stream);
            let n = stream.len() as f64;
            for (&item, &count) in &truth {
                let est = lc.estimate(item);
                prop_assert!(est <= count);
                prop_assert!(count as f64 - est as f64 <= (epsilon * n).ceil());
            }
        }
    }
}
