//! Zipf-popularity ("retail-like") transaction generator.
//!
//! Real retail and click logs (e.g. the FIMI `retail` and `kosarak`
//! datasets) have item popularities following a power law: a handful of
//! items appear in a large share of transactions, with a very long tail.
//! Quest data approximates this only loosely through pattern weights;
//! this generator produces it directly — item `i` is drawn with
//! probability ∝ `1 / (i + 1)^exponent` — which stresses miners
//! differently: the frequent-item projection discards most of each
//! transaction, and the PLT/FP structures stay shallow but wide.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::poisson;
use crate::transaction::{Item, TransactionDb};

/// Parameters of the Zipf generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfConfig {
    /// Number of transactions.
    pub num_transactions: usize,
    /// Item universe size.
    pub num_items: u32,
    /// Zipf exponent (1.0 ≈ classic Zipf; higher = steeper head).
    pub exponent: f64,
    /// Mean transaction length (Poisson, min 1).
    pub avg_transaction_len: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            num_transactions: 5_000,
            num_items: 2_000,
            exponent: 1.1,
            avg_transaction_len: 8.0,
            seed: 0x21bf,
        }
    }
}

impl ZipfConfig {
    /// Conventional label, e.g. `ZIPF1.1.D5000`.
    pub fn label(&self) -> String {
        format!("ZIPF{:.1}.D{}", self.exponent, self.num_transactions)
    }
}

/// The Zipf generator.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    config: ZipfConfig,
    /// Cumulative probability per item, `cum[i]` = P(item <= i).
    cum: Vec<f64>,
}

impl ZipfGenerator {
    /// Precomputes the cumulative Zipf distribution.
    pub fn new(config: ZipfConfig) -> ZipfGenerator {
        assert!(config.num_items >= 1);
        assert!(config.exponent > 0.0);
        assert!(config.avg_transaction_len >= 1.0);
        let mut cum = Vec::with_capacity(config.num_items as usize);
        let mut acc = 0.0;
        for i in 0..config.num_items {
            acc += 1.0 / ((i + 1) as f64).powf(config.exponent);
            cum.push(acc);
        }
        let total = acc;
        for c in &mut cum {
            *c /= total;
        }
        ZipfGenerator { config, cum }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ZipfConfig {
        &self.config
    }

    fn draw(&self, rng: &mut SmallRng) -> Item {
        let x: f64 = rng.gen();
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1) as Item
    }

    /// Generates the database.
    pub fn generate(&self) -> TransactionDb {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut transactions = Vec::with_capacity(self.config.num_transactions);
        for _ in 0..self.config.num_transactions {
            let target = poisson(&mut rng, self.config.avg_transaction_len - 1.0) + 1;
            let mut t: Vec<Item> = Vec::with_capacity(target);
            // Rejection on duplicates, with a draw budget so steep
            // exponents over tiny universes terminate.
            let mut budget = 20 * target + 32;
            while t.len() < target && budget > 0 {
                budget -= 1;
                let item = self.draw(&mut rng);
                if !t.contains(&item) {
                    t.push(item);
                }
            }
            t.sort_unstable();
            transactions.push(t);
        }
        TransactionDb::from_sorted(transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DbStats;

    #[test]
    fn deterministic_for_a_seed() {
        let a = ZipfGenerator::new(ZipfConfig::default()).generate();
        let b = ZipfGenerator::new(ZipfConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn head_items_dominate() {
        let db = ZipfGenerator::new(ZipfConfig {
            num_transactions: 3_000,
            ..Default::default()
        })
        .generate();
        let head = db.support_by_scan(&[0]);
        let mid = db.support_by_scan(&[100]);
        assert!(
            head > 10 * mid.max(1),
            "item 0 ({head}) should dwarf item 100 ({mid})"
        );
    }

    #[test]
    fn shape_tracks_configuration() {
        let cfg = ZipfConfig {
            num_transactions: 1_000,
            avg_transaction_len: 6.0,
            ..Default::default()
        };
        let db = ZipfGenerator::new(cfg).generate();
        let s = DbStats::of(&db);
        assert_eq!(s.num_transactions, 1_000);
        assert!(s.avg_len > 3.0 && s.avg_len < 9.0, "avg {}", s.avg_len);
        assert!(s.max_len >= s.min_len);
    }

    #[test]
    fn transactions_are_sorted_sets() {
        let db = ZipfGenerator::new(ZipfConfig {
            num_transactions: 300,
            ..Default::default()
        })
        .generate();
        for t in db.transactions() {
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn steep_exponent_over_tiny_universe_terminates() {
        let db = ZipfGenerator::new(ZipfConfig {
            num_transactions: 100,
            num_items: 3,
            exponent: 3.0,
            avg_transaction_len: 6.0, // longer than the universe allows
            seed: 5,
        })
        .generate();
        assert_eq!(db.len(), 100);
        assert!(db.transactions().iter().all(|t| t.len() <= 3));
    }

    #[test]
    fn label_formats() {
        assert_eq!(ZipfConfig::default().label(), "ZIPF1.1.D5000");
    }
}
