//! Immutable on-disk segment files.
//!
//! A segment holds the frequent itemsets of one or more shards, each
//! itemset stored as its **canonical position vector** (Lemma 4.1.2: the
//! vector is a bijective key for the itemset under a fixed ranking) plus
//! its support. The encoding extends the PLTC idiom — varint positions,
//! front coding within fixed-size blocks — and adds the piece random
//! access needs: a **prefix-sum block index** (block byte offsets stored
//! as varint deltas) and a first-key table, so a point lookup is a binary
//! search over block first-keys followed by a decode of at most one
//! block: `O(log B + BLOCK_ENTRIES)`.
//!
//! ```text
//! file  := "PLTS" | version u32 LE | crc32 u32 LE (over remainder)
//!          | num_transactions varint | n_shards varint | shard*
//! shard := shard_id varint | n_entries varint
//!          | n_blocks varint | block-offset deltas (varint, prefix-summed)
//!          | first keys (klen varint, positions varint×klen) × n_blocks
//!          | payload_len varint | payload
//! entry := klen varint | lcp varint | (klen−lcp) suffix positions varint
//!          | support varint            (lcp = 0 at block starts)
//! ```
//!
//! Entries are sorted lexicographically by position vector. Segments are
//! written once, fsynced, and never modified; readers mmap the file,
//! verify the CRC, parse the directory + indexes into memory, and decode
//! payload bytes straight out of the mapping on demand.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use plt_compress::crc::crc32;
use plt_compress::varint;
use plt_core::item::{Rank, Support};

use crate::mmap::Mmap;

/// Segment file magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"PLTS";

/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Entries per front-coded block (restart interval). Lookups decode at
/// most this many entries after the block binary search.
pub const BLOCK_ENTRIES: usize = 32;

/// The entries of one shard headed for a segment: `(canonical position
/// vector, support)` pairs. The writer sorts them.
#[derive(Debug, Clone, Default)]
pub struct ShardEntries {
    /// Shard index the entries belong to.
    pub shard: u32,
    /// `(positions, support)` pairs, any order.
    pub entries: Vec<(Vec<Rank>, Support)>,
}

/// Serialises shards into segment-file bytes.
pub fn encode_segment(num_transactions: u64, shards: &[ShardEntries]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    let crc_pos = out.len();
    out.extend_from_slice(&[0u8; 4]);

    varint::put_u64(&mut out, num_transactions);
    let mut sorted: Vec<&ShardEntries> = shards.iter().collect();
    sorted.sort_by_key(|s| s.shard);
    varint::put_u64(&mut out, sorted.len() as u64);
    for shard in sorted {
        let mut entries = shard.entries.clone();
        entries.sort();
        // Position vectors are bijective itemset keys (Lemma 4.1.2), so
        // duplicates can only come from caller error; keep the first.
        entries.dedup_by(|a, b| a.0 == b.0);
        varint::put_u32(&mut out, shard.shard);
        varint::put_u64(&mut out, entries.len() as u64);

        // Front-code the payload, remembering block offsets + first keys.
        let mut payload = Vec::new();
        let mut offsets: Vec<u64> = Vec::new();
        let mut first_keys: Vec<&[Rank]> = Vec::new();
        let mut prev: &[Rank] = &[];
        for (ordinal, (positions, support)) in entries.iter().enumerate() {
            let lcp = if ordinal % BLOCK_ENTRIES == 0 {
                offsets.push(payload.len() as u64);
                first_keys.push(positions);
                0
            } else {
                positions
                    .iter()
                    .zip(prev)
                    .take_while(|(a, b)| a == b)
                    .count()
            };
            varint::put_u64(&mut payload, positions.len() as u64);
            varint::put_u64(&mut payload, lcp as u64);
            for &p in &positions[lcp..] {
                varint::put_u32(&mut payload, p);
            }
            varint::put_u64(&mut payload, *support);
            prev = positions;
        }

        varint::put_u64(&mut out, offsets.len() as u64);
        let mut prev_off = 0u64;
        for &off in &offsets {
            varint::put_u64(&mut out, off - prev_off); // prefix-sum deltas
            prev_off = off;
        }
        for key in &first_keys {
            varint::put_u64(&mut out, key.len() as u64);
            for &p in key.iter() {
                varint::put_u32(&mut out, p);
            }
        }
        varint::put_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }

    let crc = crc32(&out[crc_pos + 4..]);
    out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Writes a segment file (write → fsync). Returns the byte size.
pub fn write_segment(
    path: &Path,
    num_transactions: u64,
    shards: &[ShardEntries],
) -> io::Result<u64> {
    let bytes = encode_segment(num_transactions, shards);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    Ok(bytes.len() as u64)
}

/// In-memory index of one shard inside a segment.
struct ShardIndex {
    shard: u32,
    n_entries: usize,
    /// Absolute byte offset of each block start within the payload.
    offsets: Vec<u64>,
    /// First position vector of each block.
    first_keys: Vec<Vec<Rank>>,
    /// Payload byte range within the mapped file.
    payload: std::ops::Range<usize>,
}

/// Per-shard index statistics, exposed for `store inspect`.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Entries stored for the shard.
    pub entries: usize,
    /// Front-coded blocks (binary-search domain of a lookup).
    pub blocks: usize,
    /// Payload bytes (excluding the index).
    pub payload_bytes: usize,
}

/// A read-only, mmap-backed view of a segment file. The directory and
/// block indexes live in memory; entry payloads are decoded from the
/// mapping on demand, so a point lookup touches only the pages of one
/// block.
pub struct SegmentReader {
    /// The mapped file.
    map: Mmap,
    path: PathBuf,
    num_transactions: u64,
    /// Sorted by shard id.
    shards: Vec<ShardIndex>,
}

impl std::fmt::Debug for SegmentReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentReader")
            .field("path", &self.path)
            .field("bytes", &self.map.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl SegmentReader {
    /// Maps and validates a segment file, parsing the directory and
    /// block indexes.
    pub fn open(path: &Path) -> io::Result<SegmentReader> {
        let map = Mmap::open(path)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let bytes = map.as_slice();
        if bytes.len() < 12 || &bytes[..4] != SEGMENT_MAGIC {
            return Err(bad("not a PLT segment (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SEGMENT_VERSION {
            return Err(bad(&format!("unsupported segment version {version}")));
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if crc32(&bytes[12..]) != stored {
            return Err(bad("segment CRC32 mismatch"));
        }

        // The varint decoder panics on corruption; the CRC has already
        // vouched for the bytes, so a panic here means a malformed write
        // — convert it into an error all the same.
        let parsed = std::panic::catch_unwind(|| {
            let data = &bytes[12..];
            let mut buf = data;
            let num_transactions = varint::get_u64(&mut buf);
            let n_shards = varint::get_u64(&mut buf) as usize;
            let mut shards = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                let shard = varint::get_u32(&mut buf);
                let n_entries = varint::get_u64(&mut buf) as usize;
                let n_blocks = varint::get_u64(&mut buf) as usize;
                let mut offsets = Vec::with_capacity(n_blocks);
                let mut acc = 0u64;
                for _ in 0..n_blocks {
                    acc += varint::get_u64(&mut buf);
                    offsets.push(acc);
                }
                let mut first_keys = Vec::with_capacity(n_blocks);
                for _ in 0..n_blocks {
                    let klen = varint::get_u64(&mut buf) as usize;
                    let mut key = Vec::with_capacity(klen);
                    for _ in 0..klen {
                        key.push(varint::get_u32(&mut buf));
                    }
                    first_keys.push(key);
                }
                let payload_len = varint::get_u64(&mut buf) as usize;
                let start = 12 + (data.len() - buf.len());
                assert!(buf.len() >= payload_len, "payload overruns file");
                buf = &buf[payload_len..];
                shards.push(ShardIndex {
                    shard,
                    n_entries,
                    offsets,
                    first_keys,
                    payload: start..start + payload_len,
                });
            }
            assert!(buf.is_empty(), "trailing bytes after last shard");
            (num_transactions, shards)
        })
        .map_err(|_| bad("malformed segment structure"))?;

        Ok(SegmentReader {
            map,
            path: path.to_path_buf(),
            num_transactions: parsed.0,
            shards: parsed.1,
        })
    }

    /// Shard ids present in the segment, ascending.
    pub fn shard_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.shards.iter().map(|s| s.shard)
    }

    /// Window size recorded when the segment was written (informational —
    /// a live pipeline substitutes its current count when loading).
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Total mapped bytes.
    pub fn bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// File path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Per-shard index statistics.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                shard: s.shard,
                entries: s.n_entries,
                blocks: s.offsets.len(),
                payload_bytes: s.payload.len(),
            })
            .collect()
    }

    fn index_of(&self, shard: u32) -> Option<&ShardIndex> {
        self.shards
            .binary_search_by_key(&shard, |s| s.shard)
            .ok()
            .map(|i| &self.shards[i])
    }

    /// True when the segment carries `shard`.
    pub fn has_shard(&self, shard: u32) -> bool {
        self.index_of(shard).is_some()
    }

    /// Point lookup: the support of the itemset whose canonical position
    /// vector is `positions`, or `None` if absent. Binary search over the
    /// block first-keys, then a decode of at most one block.
    pub fn lookup(&self, shard: u32, positions: &[Rank]) -> Option<Support> {
        let idx = self.index_of(shard)?;
        // First block whose first key is > target; the candidate block is
        // the one before it.
        let upper = idx
            .first_keys
            .partition_point(|key| key.as_slice() <= positions);
        if upper == 0 {
            return None;
        }
        let block = upper - 1;
        let payload = &self.map.as_slice()[idx.payload.clone()];
        let mut buf = &payload[idx.offsets[block] as usize..];
        let in_block = (idx.n_entries - block * BLOCK_ENTRIES).min(BLOCK_ENTRIES);
        let mut prev: Vec<Rank> = Vec::new();
        for _ in 0..in_block {
            let klen = varint::get_u64(&mut buf) as usize;
            let lcp = varint::get_u64(&mut buf) as usize;
            prev.truncate(lcp);
            for _ in lcp..klen {
                prev.push(varint::get_u32(&mut buf));
            }
            let support = varint::get_u64(&mut buf);
            match prev.as_slice().cmp(positions) {
                std::cmp::Ordering::Equal => return Some(support),
                std::cmp::Ordering::Greater => return None, // sorted: passed it
                std::cmp::Ordering::Less => {}
            }
        }
        None
    }

    /// Sequentially decodes every entry of `shard` (used to load a
    /// spilled fragment back into memory, and by the proptest oracle).
    pub fn iter_shard(&self, shard: u32) -> Option<Vec<(Vec<Rank>, Support)>> {
        let idx = self.index_of(shard)?;
        let payload = &self.map.as_slice()[idx.payload.clone()];
        let mut buf = payload;
        let mut out = Vec::with_capacity(idx.n_entries);
        let mut prev: Vec<Rank> = Vec::new();
        for ordinal in 0..idx.n_entries {
            let klen = varint::get_u64(&mut buf) as usize;
            let lcp = varint::get_u64(&mut buf) as usize;
            debug_assert!(ordinal % BLOCK_ENTRIES != 0 || lcp == 0);
            prev.truncate(lcp);
            for _ in lcp..klen {
                prev.push(varint::get_u32(&mut buf));
            }
            let support = varint::get_u64(&mut buf);
            out.push((prev.clone(), support));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("plt-seg-{}-{name}.plts", std::process::id()))
    }

    fn sample_entries(n: usize, salt: u32) -> Vec<(Vec<Rank>, Support)> {
        // Strictly increasing position vectors of varied length.
        (0..n as u32)
            .map(|i| {
                let k = 1 + (i % 4) as usize;
                let mut v = Vec::with_capacity(k);
                let mut acc = 0;
                for j in 0..k as u32 {
                    acc += 1 + ((i * 7 + j * 3 + salt) % 5);
                    v.push(acc);
                }
                (v, u64::from(i % 9 + 1))
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip_multi_shard() {
        let path = tmp("multi");
        let shards = vec![
            ShardEntries {
                shard: 0,
                entries: sample_entries(100, 0),
            },
            ShardEntries {
                shard: 3,
                entries: sample_entries(7, 11),
            },
        ];
        write_segment(&path, 500, &shards).unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.num_transactions(), 500);
        assert_eq!(reader.shard_ids().collect::<Vec<_>>(), vec![0, 3]);
        for shard in &shards {
            let mut expect: Vec<(Vec<Rank>, Support)> = shard.entries.clone();
            expect.sort();
            expect.dedup_by(|a, b| a.0 == b.0);
            let got = reader.iter_shard(shard.shard).unwrap();
            assert_eq!(got, expect);
            for (positions, support) in &expect {
                assert_eq!(
                    reader.lookup(shard.shard, positions),
                    Some(*support),
                    "{positions:?}"
                );
            }
        }
        assert_eq!(reader.lookup(0, &[999]), None);
        assert_eq!(reader.lookup(9, &[1]), None, "absent shard");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_shard_and_empty_segment() {
        let path = tmp("empty");
        let shards = vec![ShardEntries {
            shard: 2,
            entries: vec![],
        }];
        write_segment(&path, 0, &shards).unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.iter_shard(2).unwrap(), vec![]);
        assert_eq!(reader.lookup(2, &[1]), None);

        let path2 = tmp("none");
        write_segment(&path2, 0, &[]).unwrap();
        let reader2 = SegmentReader::open(&path2).unwrap();
        assert_eq!(reader2.shard_ids().count(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt");
        write_segment(
            &path,
            10,
            &[ShardEntries {
                shard: 0,
                entries: sample_entries(50, 3),
            }],
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = SegmentReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lookup_before_first_key_is_none() {
        let path = tmp("first");
        write_segment(
            &path,
            1,
            &[ShardEntries {
                shard: 0,
                entries: vec![(vec![5], 2), (vec![5, 6], 3)],
            }],
        )
        .unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.lookup(0, &[1]), None);
        assert_eq!(reader.lookup(0, &[5]), Some(2));
        assert_eq!(reader.lookup(0, &[5, 6]), Some(3));
        std::fs::remove_file(&path).ok();
    }
}
