//! Hand-rolled argument parsing for `plt-mine`.
//!
//! Deliberately dependency-free: the grammar is small (five subcommands,
//! a dozen flags) and the parser returns structured [`Command`] values so
//! every path is unit-testable.

use std::fmt;

/// Which mining algorithm `mine` should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// PLT conditional (Algorithm 3) — the default.
    #[default]
    Conditional,
    /// PLT top-down (Algorithm 2).
    TopDown,
    /// PLT hybrid (conditional recursion, top-down finish).
    Hybrid,
    /// Parallel PLT (per-item partitions on a thread pool).
    Parallel,
    /// Apriori with hash-tree counting.
    Apriori,
    /// FP-growth.
    FpGrowth,
    /// Eclat (tidsets).
    Eclat,
    /// dEclat (diffsets).
    DEclat,
    /// H-Mine.
    HMine,
    /// AIS.
    Ais,
    /// Partition.
    Partition,
    /// Dynamic Itemset Counting.
    Dic,
    /// Toivonen sampling (exact via negative-border verification).
    Sampling,
}

impl Algo {
    /// Canonical name, as accepted by `--algo` and emitted in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Conditional => "conditional",
            Algo::TopDown => "topdown",
            Algo::Hybrid => "hybrid",
            Algo::Parallel => "parallel",
            Algo::Apriori => "apriori",
            Algo::FpGrowth => "fp-growth",
            Algo::Eclat => "eclat",
            Algo::DEclat => "declat",
            Algo::HMine => "h-mine",
            Algo::Ais => "ais",
            Algo::Partition => "partition",
            Algo::Dic => "dic",
            Algo::Sampling => "sampling",
        }
    }

    fn from_str(s: &str) -> Option<Algo> {
        Some(match s {
            "conditional" | "plt" => Algo::Conditional,
            "topdown" | "top-down" => Algo::TopDown,
            "hybrid" => Algo::Hybrid,
            "parallel" => Algo::Parallel,
            "apriori" => Algo::Apriori,
            "fp-growth" | "fpgrowth" => Algo::FpGrowth,
            "eclat" => Algo::Eclat,
            "declat" | "deciat" => Algo::DEclat,
            "h-mine" | "hmine" => Algo::HMine,
            "ais" => Algo::Ais,
            "partition" => Algo::Partition,
            "dic" => Algo::Dic,
            "sampling" | "toivonen" => Algo::Sampling,
            _ => return None,
        })
    }
}

/// Working-set layout for the PLT conditional miners (`conditional` and
/// `parallel` algorithms; ignored by the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Flat arena layout: contiguous buffers, zero steady-state
    /// allocations — the default.
    #[default]
    Arena,
    /// The original map-of-hash-maps layout, kept for differential runs.
    Map,
}

impl Engine {
    /// Canonical name, as accepted by `--engine` and emitted in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Arena => "arena",
            Engine::Map => "map",
        }
    }

    fn from_str(s: &str) -> Option<Engine> {
        Some(match s {
            "arena" => Engine::Arena,
            "map" => Engine::Map,
            _ => return None,
        })
    }
}

/// Kernel backend for the data-parallel primitives (`mine` subcommand;
/// applies to every algorithm that routes through the kernel layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Runtime detection: AVX2 when compiled in and available, scalar
    /// otherwise — the default.
    #[default]
    Auto,
    /// Force the SIMD backend (silently degrades to scalar when the
    /// build or CPU lacks it).
    Simd,
    /// Force the scalar backend.
    Scalar,
}

impl Kernel {
    /// Canonical name, as accepted by `--kernel` and emitted in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Simd => "simd",
            Kernel::Scalar => "scalar",
        }
    }

    fn from_str(s: &str) -> Option<Kernel> {
        Some(match s {
            "auto" => Kernel::Auto,
            "simd" => Kernel::Simd,
            "scalar" => Kernel::Scalar,
            _ => return None,
        })
    }
}

/// Condensation applied to `mine` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Condense {
    /// All frequent itemsets.
    #[default]
    All,
    /// Closed itemsets only.
    Closed,
    /// Maximal itemsets only.
    Maximal,
}

/// Synthetic dataset families for `gen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// Sparse Quest (`T10.I4`).
    Quest,
    /// Dense chess-like.
    Dense,
    /// Named market baskets.
    Basket,
}

/// Minimum support as given on the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSup {
    /// Fraction of the database, `(0, 1)`.
    Relative(f64),
    /// Absolute transaction count, `>= 1`.
    Absolute(u64),
}

impl MinSup {
    /// Resolves against a database size.
    pub fn resolve(self, num_transactions: usize) -> u64 {
        match self {
            MinSup::Relative(f) => ((f * num_transactions as f64).ceil() as u64).max(1),
            MinSup::Absolute(n) => n,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mine`: print frequent itemsets.
    Mine {
        /// FIMI input path.
        input: String,
        /// Support threshold.
        min_sup: MinSup,
        /// Algorithm choice.
        algo: Algo,
        /// Conditional-mining engine (PLT algorithms only).
        engine: Engine,
        /// Kernel backend for the data-parallel primitives.
        kernel: Kernel,
        /// Condensation filter.
        condense: Condense,
        /// Print at most this many itemsets.
        limit: Option<usize>,
        /// Write per-phase timings and engine counters as JSON here.
        metrics_json: Option<String>,
    },
    /// `rules`: print association rules.
    Rules {
        /// FIMI input path.
        input: String,
        /// Support threshold.
        min_sup: MinSup,
        /// Confidence threshold in `[0, 1]`.
        min_conf: f64,
        /// Keep only the strongest `top` rules.
        top: Option<usize>,
    },
    /// `stats`: print dataset statistics.
    Stats {
        /// FIMI input path.
        input: String,
    },
    /// `show`: render the PLT (matrices, tree, compression report).
    Show {
        /// FIMI input path.
        input: String,
        /// Support threshold.
        min_sup: MinSup,
    },
    /// `index`: build a compressed `.pltc` index file from FIMI input.
    Index {
        /// FIMI input path.
        input: String,
        /// Support threshold baked into the index.
        min_sup: MinSup,
        /// Output `.pltc` path.
        output: String,
    },
    /// `mine-index`: mine a previously built `.pltc` index (PLT miners
    /// only — the index *is* the PLT).
    MineIndex {
        /// `.pltc` input path.
        index: String,
        /// `true` = top-down, `false` = conditional.
        topdown: bool,
        /// Print at most this many itemsets.
        limit: Option<usize>,
    },
    /// `mine-incremental`: mine a base dataset, then apply a delta file
    /// through the sharded incremental pipeline, reporting which shards
    /// were re-mined.
    MineIncremental {
        /// FIMI base dataset path.
        input: String,
        /// FIMI delta path (transactions to add on top of the base).
        delta: String,
        /// Support threshold (resolved against base + delta size).
        min_sup: MinSup,
        /// Number of rank-range shards.
        shards: usize,
        /// Print at most this many itemsets.
        limit: Option<usize>,
        /// Re-mine base + delta from scratch and fail on any mismatch.
        verify_full: bool,
    },
    /// `query`: support of specific itemsets against a `.pltc` index.
    Query {
        /// `.pltc` input path.
        index: String,
        /// Itemsets to look up, each a space-separated item list.
        itemsets: Vec<Vec<u32>>,
    },
    /// `serve`: mine a dataset and expose it as a TCP query service.
    Serve {
        /// FIMI input path (the warmup window).
        input: String,
        /// Support threshold.
        min_sup: MinSup,
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Confidence threshold for recommendation rules.
        min_conf: f64,
        /// Sliding-window capacity; `None` = twice the warmup size.
        window: Option<usize>,
        /// Seed for deterministic fault injection (chaos runs); `None`
        /// disables injection.
        fault_seed: Option<u64>,
        /// Per-connection read/write deadline in milliseconds; `None`
        /// keeps the server defaults.
        deadline_ms: Option<u64>,
        /// Durable-store data directory (WAL + segments + manifest).
        /// `None` serves fully in memory. An existing directory is
        /// recovered and the `--input` warmup is only applied on a fresh
        /// one.
        data_dir: Option<String>,
        /// Serving concurrency model: thread-per-connection or the
        /// epoll reactor (Linux; falls back to threads elsewhere).
        server_model: plt_serve::ServerModel,
        /// Snapshot rebuild mode: incremental shard re-mine (default)
        /// or Toivonen-style sampled re-mine with exact fallback.
        rebuild_mode: plt_serve::RebuildMode,
        /// Indicator-sketch error rate ε; attaches an approximate
        /// `SUPPORT OF` tier to every snapshot. `None` disables it.
        sketch_eps: Option<f64>,
        /// Sketch failure probability δ (used with `--sketch-eps`).
        sketch_delta: f64,
    },
    /// `store inspect`: dump a durable data directory as JSON (manifest,
    /// WAL record counts, per-segment block-index stats).
    StoreInspect {
        /// Data directory written by `serve --data-dir`.
        data_dir: String,
    },
    /// `query --addr`: one-shot client against a running `serve`.
    QueryServer {
        /// Server address (`host:port`).
        addr: String,
        /// Itemsets for `support` lookups.
        itemsets: Vec<Vec<u32>>,
        /// `top_k` request.
        top: Option<usize>,
        /// Basket for a `recommend` request.
        recommend: Option<Vec<u32>>,
        /// Query-language expression for the `query` endpoint.
        expr: Option<String>,
        /// Print plan provenance (plan, cost, cache_hit) with `--expr`.
        explain: bool,
        /// Fetch server metrics.
        stats: bool,
        /// Ask the server to stop.
        shutdown: bool,
        /// Response-envelope version to negotiate (1 = legacy flat
        /// replies, 2 = versioned envelope).
        protocol_version: u64,
    },
    /// `gen`: write a synthetic dataset.
    Gen {
        /// Dataset family.
        kind: GenKind,
        /// Number of transactions.
        transactions: usize,
        /// Output FIMI path.
        output: String,
        /// RNG seed.
        seed: u64,
    },
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n{}", self.0, USAGE)
    }
}

impl std::error::Error for ParseError {}

/// The usage banner appended to every parse error.
pub const USAGE: &str = "\
usage:
  plt-mine mine  --input <file.dat> --min-sup <frac|count>
                 [--algo conditional|topdown|parallel|apriori|fp-growth|
                  eclat|declat|h-mine|ais|partition|dic]
                 [--engine arena|map] [--kernel auto|simd|scalar]
                 [--closed | --maximal] [--limit N]
                 [--metrics-json <out.json>]
  plt-mine rules --input <file.dat> --min-sup <frac|count> --min-conf <frac>
                 [--top N]
  plt-mine stats --input <file.dat>
  plt-mine show  --input <file.dat> --min-sup <frac|count>
  plt-mine gen   --kind quest|dense|basket --transactions N
                 --output <file.dat> [--seed S]
  plt-mine index --input <file.dat> --min-sup <frac|count>
                 --output <file.pltc>
  plt-mine mine-index --index <file.pltc> [--topdown] [--limit N]
  plt-mine mine-incremental --input <base.dat> --delta <delta.dat>
                 --min-sup <frac|count> [--shards N] [--limit N]
                 [--verify-full]
  plt-mine query --index <file.pltc> --itemset \"1 2 3\" [--itemset ...]
  plt-mine serve --input <file.dat> --min-sup <frac|count>
                 [--addr 127.0.0.1:7878] [--min-conf <frac>] [--window N]
                 [--fault-seed S] [--deadline-ms MS] [--data-dir <dir>]
                 [--server-model threads|reactor]
                 [--rebuild-mode incremental|sampled]
                 [--sketch-eps E [--sketch-delta D]]
  plt-mine store inspect --data-dir <dir>
  plt-mine query --addr <host:port> [--itemset \"1 2 3\" ...] [--top N]
                 [--recommend \"1 2\"] [--expr <query>] [--explain]
                 [--stats] [--shutdown] [--protocol-version 1|2]";

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// A tiny flag cursor over `argv`.
struct Cursor<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next_flag(&mut self) -> Option<&'a str> {
        let f = self.args.get(self.pos)?;
        self.pos += 1;
        Some(f)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, ParseError> {
        match self.args.get(self.pos) {
            Some(v) => {
                self.pos += 1;
                Ok(v)
            }
            None => err(format!("flag {flag} requires a value")),
        }
    }
}

fn parse_itemset(raw: &str) -> Result<Vec<u32>, ParseError> {
    let mut items = Vec::new();
    for tok in raw.split_whitespace() {
        items.push(
            tok.parse::<u32>()
                .map_err(|e| ParseError(format!("bad item {tok:?} in itemset: {e}")))?,
        );
    }
    if items.is_empty() {
        return Err(ParseError("itemset must name at least one item".into()));
    }
    Ok(items)
}

fn parse_min_sup(s: &str) -> Result<MinSup, ParseError> {
    if let Ok(v) = s.parse::<f64>() {
        if v > 0.0 && v < 1.0 {
            return Ok(MinSup::Relative(v));
        }
        if v >= 1.0 && v.fract() == 0.0 {
            return Ok(MinSup::Absolute(v as u64));
        }
    }
    err(format!(
        "--min-sup must be a fraction in (0,1) or an integer count >= 1, got {s:?}"
    ))
}

/// Parses a full command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return err("missing subcommand");
    };
    let mut cur = Cursor { args: argv, pos: 1 };
    match sub.as_str() {
        "mine" => {
            let (mut input, mut min_sup, mut algo) = (None, None, Algo::default());
            let mut engine = Engine::default();
            let mut kernel = Kernel::default();
            let mut condense = Condense::default();
            let mut limit = None;
            let mut metrics_json = None;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    "--algo" => {
                        let v = cur.value(flag)?;
                        algo = Algo::from_str(v)
                            .ok_or_else(|| ParseError(format!("unknown algorithm {v:?}")))?;
                    }
                    "--engine" => {
                        let v = cur.value(flag)?;
                        engine = Engine::from_str(v)
                            .ok_or_else(|| ParseError(format!("unknown engine {v:?}")))?;
                    }
                    "--kernel" => {
                        let v = cur.value(flag)?;
                        kernel = Kernel::from_str(v)
                            .ok_or_else(|| ParseError(format!("unknown kernel {v:?}")))?;
                    }
                    "--closed" => condense = Condense::Closed,
                    "--maximal" => condense = Condense::Maximal,
                    "--limit" => {
                        limit =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--limit must be an integer: {e}"))
                            })?)
                    }
                    "--metrics-json" => metrics_json = Some(cur.value(flag)?.to_string()),
                    other => return err(format!("unknown flag {other:?} for mine")),
                }
            }
            Ok(Command::Mine {
                input: input.ok_or(ParseError("mine requires --input".into()))?,
                min_sup: min_sup.ok_or(ParseError("mine requires --min-sup".into()))?,
                algo,
                engine,
                kernel,
                condense,
                limit,
                metrics_json,
            })
        }
        "rules" => {
            let (mut input, mut min_sup, mut min_conf, mut top) = (None, None, None, None);
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    "--min-conf" => {
                        let v: f64 = cur
                            .value(flag)?
                            .parse()
                            .map_err(|e| ParseError(format!("--min-conf must be a number: {e}")))?;
                        if !(0.0..=1.0).contains(&v) {
                            return err("--min-conf must be in [0,1]");
                        }
                        min_conf = Some(v);
                    }
                    "--top" => {
                        top =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--top must be an integer: {e}"))
                            })?)
                    }
                    other => return err(format!("unknown flag {other:?} for rules")),
                }
            }
            Ok(Command::Rules {
                input: input.ok_or(ParseError("rules requires --input".into()))?,
                min_sup: min_sup.ok_or(ParseError("rules requires --min-sup".into()))?,
                min_conf: min_conf.ok_or(ParseError("rules requires --min-conf".into()))?,
                top,
            })
        }
        "stats" => {
            let mut input = None;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    other => return err(format!("unknown flag {other:?} for stats")),
                }
            }
            Ok(Command::Stats {
                input: input.ok_or(ParseError("stats requires --input".into()))?,
            })
        }
        "show" => {
            let (mut input, mut min_sup) = (None, None);
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    other => return err(format!("unknown flag {other:?} for show")),
                }
            }
            Ok(Command::Show {
                input: input.ok_or(ParseError("show requires --input".into()))?,
                min_sup: min_sup.ok_or(ParseError("show requires --min-sup".into()))?,
            })
        }
        "index" => {
            let (mut input, mut min_sup, mut output) = (None, None, None);
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    "--output" => output = Some(cur.value(flag)?.to_string()),
                    other => return err(format!("unknown flag {other:?} for index")),
                }
            }
            Ok(Command::Index {
                input: input.ok_or(ParseError("index requires --input".into()))?,
                min_sup: min_sup.ok_or(ParseError("index requires --min-sup".into()))?,
                output: output.ok_or(ParseError("index requires --output".into()))?,
            })
        }
        "mine-index" => {
            let mut index = None;
            let mut topdown = false;
            let mut limit = None;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--index" => index = Some(cur.value(flag)?.to_string()),
                    "--topdown" => topdown = true,
                    "--limit" => {
                        limit =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--limit must be an integer: {e}"))
                            })?)
                    }
                    other => return err(format!("unknown flag {other:?} for mine-index")),
                }
            }
            Ok(Command::MineIndex {
                index: index.ok_or(ParseError("mine-index requires --index".into()))?,
                topdown,
                limit,
            })
        }
        "mine-incremental" => {
            let (mut input, mut delta, mut min_sup) = (None, None, None);
            let mut shards = plt_shard::DEFAULT_SHARD_COUNT;
            let mut limit = None;
            let mut verify_full = false;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--delta" => delta = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    "--shards" => {
                        let v: usize = cur
                            .value(flag)?
                            .parse()
                            .map_err(|e| ParseError(format!("--shards must be an integer: {e}")))?;
                        if v == 0 {
                            return err("--shards must be at least 1");
                        }
                        shards = v;
                    }
                    "--limit" => {
                        limit =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--limit must be an integer: {e}"))
                            })?)
                    }
                    "--verify-full" => verify_full = true,
                    other => return err(format!("unknown flag {other:?} for mine-incremental")),
                }
            }
            Ok(Command::MineIncremental {
                input: input.ok_or(ParseError("mine-incremental requires --input".into()))?,
                delta: delta.ok_or(ParseError("mine-incremental requires --delta".into()))?,
                min_sup: min_sup.ok_or(ParseError("mine-incremental requires --min-sup".into()))?,
                shards,
                limit,
                verify_full,
            })
        }
        "query" => {
            let (mut index, mut addr) = (None, None);
            let mut itemsets: Vec<Vec<u32>> = Vec::new();
            let (mut top, mut recommend, mut expr) = (None, None, None);
            let (mut explain, mut stats, mut shutdown) = (false, false, false);
            let mut protocol_version = 1u64;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--index" => index = Some(cur.value(flag)?.to_string()),
                    "--addr" => addr = Some(cur.value(flag)?.to_string()),
                    "--itemset" => itemsets.push(parse_itemset(cur.value(flag)?)?),
                    "--top" => {
                        top =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--top must be an integer: {e}"))
                            })?)
                    }
                    "--recommend" => recommend = Some(parse_itemset(cur.value(flag)?)?),
                    "--expr" => expr = Some(cur.value(flag)?.to_string()),
                    "--explain" => explain = true,
                    "--stats" => stats = true,
                    "--shutdown" => shutdown = true,
                    "--protocol-version" => {
                        let v: u64 = cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--protocol-version must be an integer: {e}"))
                        })?;
                        if !(1..=plt_serve::MAX_PROTOCOL_VERSION).contains(&v) {
                            return err(format!(
                                "--protocol-version must be between 1 and {}",
                                plt_serve::MAX_PROTOCOL_VERSION
                            ));
                        }
                        protocol_version = v;
                    }
                    other => return err(format!("unknown flag {other:?} for query")),
                }
            }
            if explain && expr.is_none() {
                return err("--explain requires --expr");
            }
            match (index, addr) {
                (Some(_), Some(_)) => err("query takes --index or --addr, not both"),
                (Some(index), None) => {
                    if top.is_some()
                        || recommend.is_some()
                        || expr.is_some()
                        || stats
                        || shutdown
                        || protocol_version != 1
                    {
                        return err(
                            "--top/--recommend/--expr/--stats/--shutdown/--protocol-version require --addr (server mode)",
                        );
                    }
                    if itemsets.is_empty() {
                        return err("query requires at least one --itemset");
                    }
                    Ok(Command::Query { index, itemsets })
                }
                (None, Some(addr)) => {
                    if itemsets.is_empty()
                        && top.is_none()
                        && recommend.is_none()
                        && expr.is_none()
                        && !stats
                        && !shutdown
                    {
                        return err(
                            "server query needs at least one of --itemset/--top/--recommend/--expr/--stats/--shutdown",
                        );
                    }
                    Ok(Command::QueryServer {
                        addr,
                        itemsets,
                        top,
                        recommend,
                        expr,
                        explain,
                        stats,
                        shutdown,
                        protocol_version,
                    })
                }
                (None, None) => err("query requires --index or --addr"),
            }
        }
        "serve" => {
            let (mut input, mut min_sup, mut window) = (None, None, None);
            let mut addr = "127.0.0.1:7878".to_string();
            let mut min_conf = 0.5;
            let (mut fault_seed, mut deadline_ms) = (None, None);
            let mut data_dir = None;
            let mut server_model = plt_serve::ServerModel::default();
            let mut rebuild_mode = plt_serve::RebuildMode::default();
            let (mut sketch_eps, mut sketch_delta) = (None, 0.01);
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--input" => input = Some(cur.value(flag)?.to_string()),
                    "--min-sup" => min_sup = Some(parse_min_sup(cur.value(flag)?)?),
                    "--addr" => addr = cur.value(flag)?.to_string(),
                    "--min-conf" => {
                        let v: f64 = cur
                            .value(flag)?
                            .parse()
                            .map_err(|e| ParseError(format!("--min-conf must be a number: {e}")))?;
                        if !(0.0..=1.0).contains(&v) {
                            return err("--min-conf must be in [0,1]");
                        }
                        min_conf = v;
                    }
                    "--window" => {
                        window =
                            Some(cur.value(flag)?.parse().map_err(|e| {
                                ParseError(format!("--window must be an integer: {e}"))
                            })?)
                    }
                    "--fault-seed" => {
                        fault_seed = Some(cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--fault-seed must be an integer: {e}"))
                        })?)
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--deadline-ms must be an integer: {e}"))
                        })?)
                    }
                    "--data-dir" => data_dir = Some(cur.value(flag)?.to_string()),
                    "--server-model" => {
                        server_model =
                            plt_serve::ServerModel::parse(cur.value(flag)?).map_err(ParseError)?
                    }
                    "--rebuild-mode" => {
                        rebuild_mode = cur.value(flag)?.parse().map_err(ParseError)?
                    }
                    "--sketch-eps" => {
                        let v: f64 = cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--sketch-eps must be a number: {e}"))
                        })?;
                        if !(v > 0.0 && v < 1.0) {
                            return err("--sketch-eps must be in (0,1)");
                        }
                        sketch_eps = Some(v);
                    }
                    "--sketch-delta" => {
                        let v: f64 = cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--sketch-delta must be a number: {e}"))
                        })?;
                        if !(v > 0.0 && v < 1.0) {
                            return err("--sketch-delta must be in (0,1)");
                        }
                        sketch_delta = v;
                    }
                    other => return err(format!("unknown flag {other:?} for serve")),
                }
            }
            if sketch_eps.is_none() && sketch_delta != 0.01 {
                return err("--sketch-delta requires --sketch-eps");
            }
            Ok(Command::Serve {
                input: input.ok_or(ParseError("serve requires --input".into()))?,
                min_sup: min_sup.ok_or(ParseError("serve requires --min-sup".into()))?,
                addr,
                min_conf,
                window,
                fault_seed,
                deadline_ms,
                data_dir,
                server_model,
                rebuild_mode,
                sketch_eps,
                sketch_delta,
            })
        }
        "store" => {
            let action = cur.next_flag();
            if action != Some("inspect") {
                return err("store supports one action: store inspect --data-dir <dir>");
            }
            let mut data_dir = None;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--data-dir" => data_dir = Some(cur.value(flag)?.to_string()),
                    other => return err(format!("unknown flag {other:?} for store inspect")),
                }
            }
            Ok(Command::StoreInspect {
                data_dir: data_dir.ok_or(ParseError("store inspect requires --data-dir".into()))?,
            })
        }
        "gen" => {
            let (mut kind, mut transactions, mut output) = (None, None, None);
            let mut seed = 42u64;
            while let Some(flag) = cur.next_flag() {
                match flag {
                    "--kind" => {
                        kind = Some(match cur.value(flag)? {
                            "quest" => GenKind::Quest,
                            "dense" => GenKind::Dense,
                            "basket" => GenKind::Basket,
                            other => return err(format!("unknown dataset kind {other:?}")),
                        })
                    }
                    "--transactions" => {
                        transactions = Some(cur.value(flag)?.parse().map_err(|e| {
                            ParseError(format!("--transactions must be an integer: {e}"))
                        })?)
                    }
                    "--output" => output = Some(cur.value(flag)?.to_string()),
                    "--seed" => {
                        seed = cur
                            .value(flag)?
                            .parse()
                            .map_err(|e| ParseError(format!("--seed must be an integer: {e}")))?
                    }
                    other => return err(format!("unknown flag {other:?} for gen")),
                }
            }
            Ok(Command::Gen {
                kind: kind.ok_or(ParseError("gen requires --kind".into()))?,
                transactions: transactions
                    .ok_or(ParseError("gen requires --transactions".into()))?,
                output: output.ok_or(ParseError("gen requires --output".into()))?,
                seed,
            })
        }
        other => err(format!("unknown subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mine_with_defaults() {
        let c = parse(&argv(&["mine", "--input", "x.dat", "--min-sup", "0.01"])).unwrap();
        assert_eq!(
            c,
            Command::Mine {
                input: "x.dat".into(),
                min_sup: MinSup::Relative(0.01),
                algo: Algo::Conditional,
                engine: Engine::Arena,
                kernel: Kernel::Auto,
                condense: Condense::All,
                limit: None,
                metrics_json: None,
            }
        );
    }

    #[test]
    fn parses_kernel_flag() {
        for (name, kernel) in [
            ("auto", Kernel::Auto),
            ("simd", Kernel::Simd),
            ("scalar", Kernel::Scalar),
        ] {
            let c = parse(&argv(&[
                "mine",
                "--input",
                "x",
                "--min-sup",
                "2",
                "--kernel",
                name,
            ]))
            .unwrap();
            match c {
                Command::Mine { kernel: k, .. } => assert_eq!(k, kernel, "{name}"),
                _ => panic!(),
            }
        }
        assert!(parse(&argv(&[
            "mine",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--kernel",
            "avx512",
        ]))
        .is_err());
    }

    #[test]
    fn parses_metrics_json_flag() {
        let c = parse(&argv(&[
            "mine",
            "--input",
            "x.dat",
            "--min-sup",
            "2",
            "--metrics-json",
            "out/metrics.json",
        ]))
        .unwrap();
        match c {
            Command::Mine { metrics_json, .. } => {
                assert_eq!(metrics_json.as_deref(), Some("out/metrics.json"));
            }
            _ => panic!(),
        }
        // The flag requires a value.
        assert!(parse(&argv(&[
            "mine",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--metrics-json",
        ]))
        .is_err());
    }

    #[test]
    fn parses_engine_flag() {
        for (name, engine) in [("arena", Engine::Arena), ("map", Engine::Map)] {
            let c = parse(&argv(&[
                "mine",
                "--input",
                "x",
                "--min-sup",
                "2",
                "--engine",
                name,
            ]))
            .unwrap();
            match c {
                Command::Mine { engine: e, .. } => assert_eq!(e, engine, "{name}"),
                _ => panic!(),
            }
        }
        assert!(parse(&argv(&[
            "mine",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--engine",
            "bogus",
        ]))
        .is_err());
    }

    #[test]
    fn parses_absolute_support() {
        let c = parse(&argv(&["mine", "--input", "x", "--min-sup", "25"])).unwrap();
        match c {
            Command::Mine { min_sup, .. } => assert_eq!(min_sup, MinSup::Absolute(25)),
            _ => panic!(),
        }
    }

    #[test]
    fn min_sup_resolution() {
        assert_eq!(MinSup::Relative(0.01).resolve(1000), 10);
        assert_eq!(MinSup::Relative(0.001).resolve(100), 1);
        assert_eq!(MinSup::Absolute(5).resolve(1000), 5);
    }

    #[test]
    fn rejects_bad_min_sup() {
        for bad in ["0", "0.0", "1.5", "-3", "abc"] {
            assert!(
                parse(&argv(&["mine", "--input", "x", "--min-sup", bad])).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn parses_all_algorithms() {
        for (name, algo) in [
            ("conditional", Algo::Conditional),
            ("plt", Algo::Conditional),
            ("topdown", Algo::TopDown),
            ("hybrid", Algo::Hybrid),
            ("parallel", Algo::Parallel),
            ("apriori", Algo::Apriori),
            ("fp-growth", Algo::FpGrowth),
            ("eclat", Algo::Eclat),
            ("declat", Algo::DEclat),
            ("h-mine", Algo::HMine),
            ("ais", Algo::Ais),
            ("partition", Algo::Partition),
            ("dic", Algo::Dic),
            ("sampling", Algo::Sampling),
            ("toivonen", Algo::Sampling),
        ] {
            let c = parse(&argv(&[
                "mine",
                "--input",
                "x",
                "--min-sup",
                "2",
                "--algo",
                name,
            ]))
            .unwrap();
            match c {
                Command::Mine { algo: a, .. } => assert_eq!(a, algo, "{name}"),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn parses_rules_and_gen() {
        let c = parse(&argv(&[
            "rules",
            "--input",
            "x",
            "--min-sup",
            "0.02",
            "--min-conf",
            "0.7",
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Rules { top: Some(5), .. }));

        let c = parse(&argv(&[
            "gen",
            "--kind",
            "dense",
            "--transactions",
            "100",
            "--output",
            "o.dat",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Gen {
                kind: GenKind::Dense,
                transactions: 100,
                output: "o.dat".into(),
                seed: 7,
            }
        );
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&argv(&["serve", "--input", "x.dat", "--min-sup", "2"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                input: "x.dat".into(),
                min_sup: MinSup::Absolute(2),
                addr: "127.0.0.1:7878".into(),
                min_conf: 0.5,
                window: None,
                fault_seed: None,
                deadline_ms: None,
                data_dir: None,
                server_model: plt_serve::ServerModel::Threads,
                rebuild_mode: plt_serve::RebuildMode::Incremental,
                sketch_eps: None,
                sketch_delta: 0.01,
            }
        );
        let c = parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "0.1",
            "--addr",
            "0.0.0.0:0",
            "--min-conf",
            "0.8",
            "--window",
            "500",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                window: Some(500),
                ..
            }
        ));
    }

    #[test]
    fn parses_serve_fault_flags() {
        let c = parse(&argv(&[
            "serve",
            "--input",
            "x.dat",
            "--min-sup",
            "2",
            "--fault-seed",
            "42",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                fault_seed: Some(42),
                deadline_ms: Some(250),
                ..
            }
        ));
        assert!(parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--fault-seed",
            "nope",
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--deadline-ms",
            "-1",
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve_data_dir() {
        let c = parse(&argv(&[
            "serve",
            "--input",
            "x.dat",
            "--min-sup",
            "2",
            "--data-dir",
            "/tmp/plt-data",
        ]))
        .unwrap();
        match c {
            Command::Serve { data_dir, .. } => {
                assert_eq!(data_dir.as_deref(), Some("/tmp/plt-data"));
            }
            _ => panic!(),
        }
        // The flag requires a value.
        assert!(parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--data-dir",
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve_server_model() {
        for (spelling, model) in [
            ("threads", plt_serve::ServerModel::Threads),
            ("reactor", plt_serve::ServerModel::Reactor),
        ] {
            let c = parse(&argv(&[
                "serve",
                "--input",
                "x.dat",
                "--min-sup",
                "2",
                "--server-model",
                spelling,
            ]))
            .unwrap();
            assert!(matches!(
                c,
                Command::Serve { server_model, .. } if server_model == model
            ));
        }
        // Unknown spellings and a missing value are parse errors.
        assert!(parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--server-model",
            "fibers",
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "serve",
            "--input",
            "x",
            "--min-sup",
            "2",
            "--server-model",
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve_approx_flags() {
        let c = parse(&argv(&[
            "serve",
            "--input",
            "x.dat",
            "--min-sup",
            "2",
            "--rebuild-mode",
            "sampled",
            "--sketch-eps",
            "0.05",
            "--sketch-delta",
            "0.001",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                rebuild_mode,
                sketch_eps,
                sketch_delta,
                ..
            } => {
                assert_eq!(
                    rebuild_mode,
                    plt_serve::RebuildMode::Sampled(plt_serve::SampledRebuild::default())
                );
                assert_eq!(sketch_eps, Some(0.05));
                assert_eq!(sketch_delta, 0.001);
            }
            _ => panic!(),
        }
        // Bad mode, out-of-range epsilon, and a dangling delta all fail.
        for bad in [
            vec!["--rebuild-mode", "psychic"],
            vec!["--sketch-eps", "0"],
            vec!["--sketch-eps", "1.5"],
            vec!["--sketch-delta", "0.1"],
        ] {
            let mut args = vec!["serve", "--input", "x", "--min-sup", "2"];
            args.extend(bad.iter().copied());
            assert!(parse(&argv(&args)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_query_protocol_version() {
        let c = parse(&argv(&[
            "query",
            "--addr",
            "127.0.0.1:7878",
            "--stats",
            "--protocol-version",
            "2",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::QueryServer {
                protocol_version: 2,
                ..
            }
        ));
        // Unsupported versions and index mode are rejected.
        assert!(parse(&argv(&[
            "query",
            "--addr",
            "y",
            "--stats",
            "--protocol-version",
            "3"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "query",
            "--addr",
            "y",
            "--stats",
            "--protocol-version",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "query",
            "--index",
            "x.pltc",
            "--itemset",
            "1",
            "--protocol-version",
            "2"
        ]))
        .is_err());
    }

    #[test]
    fn parses_store_inspect() {
        let c = parse(&argv(&["store", "inspect", "--data-dir", "/tmp/d"])).unwrap();
        assert_eq!(
            c,
            Command::StoreInspect {
                data_dir: "/tmp/d".into(),
            }
        );
        // The action and the directory are both required.
        assert!(parse(&argv(&["store"])).is_err());
        assert!(parse(&argv(&["store", "inspect"])).is_err());
        assert!(parse(&argv(&["store", "compact", "--data-dir", "/tmp/d"])).is_err());
        assert!(parse(&argv(&["store", "inspect", "--bogus", "x"])).is_err());
    }

    #[test]
    fn parses_query_server_mode() {
        let c = parse(&argv(&[
            "query",
            "--addr",
            "127.0.0.1:7878",
            "--itemset",
            "1 2",
            "--top",
            "5",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::QueryServer {
                addr: "127.0.0.1:7878".into(),
                itemsets: vec![vec![1, 2]],
                top: Some(5),
                recommend: None,
                expr: None,
                explain: false,
                stats: true,
                shutdown: false,
                protocol_version: 1,
            }
        );
        // A query-language expression with provenance.
        let c = parse(&argv(&[
            "query",
            "--addr",
            "127.0.0.1:7878",
            "--expr",
            "TOP 5 WHERE support >= 0.2",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::QueryServer {
                addr: "127.0.0.1:7878".into(),
                itemsets: vec![],
                top: None,
                recommend: None,
                expr: Some("TOP 5 WHERE support >= 0.2".into()),
                explain: true,
                stats: false,
                shutdown: false,
                protocol_version: 1,
            }
        );
        // --explain without --expr is meaningless.
        assert!(parse(&argv(&["query", "--addr", "y", "--explain"])).is_err());
        // Server-only flags without --addr are rejected.
        assert!(parse(&argv(&["query", "--index", "x.pltc", "--top", "5"])).is_err());
        assert!(parse(&argv(&["query", "--index", "x.pltc", "--expr", "TOP 5"])).is_err());
        // Both sources are rejected.
        assert!(parse(&argv(&[
            "query",
            "--index",
            "x",
            "--addr",
            "y",
            "--itemset",
            "1"
        ]))
        .is_err());
        // Server mode needs at least one action.
        assert!(parse(&argv(&["query", "--addr", "y"])).is_err());
    }

    #[test]
    fn parses_mine_incremental() {
        let c = parse(&argv(&[
            "mine-incremental",
            "--input",
            "base.dat",
            "--delta",
            "delta.dat",
            "--min-sup",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::MineIncremental {
                input: "base.dat".into(),
                delta: "delta.dat".into(),
                min_sup: MinSup::Absolute(2),
                shards: plt_shard::DEFAULT_SHARD_COUNT,
                limit: None,
                verify_full: false,
            }
        );
        let c = parse(&argv(&[
            "mine-incremental",
            "--input",
            "b",
            "--delta",
            "d",
            "--min-sup",
            "0.01",
            "--shards",
            "8",
            "--limit",
            "10",
            "--verify-full",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::MineIncremental {
                shards: 8,
                limit: Some(10),
                verify_full: true,
                ..
            }
        ));
        // Both inputs are required; zero shards are rejected.
        assert!(parse(&argv(&[
            "mine-incremental",
            "--input",
            "b",
            "--min-sup",
            "2"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "mine-incremental",
            "--delta",
            "d",
            "--min-sup",
            "2"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "mine-incremental",
            "--input",
            "b",
            "--delta",
            "d",
            "--min-sup",
            "2",
            "--shards",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&argv(&["mine", "--min-sup", "2"])).is_err());
        assert!(parse(&argv(&["rules", "--input", "x", "--min-sup", "2"])).is_err());
        assert!(parse(&argv(&["gen", "--kind", "quest"])).is_err());
        assert!(parse(&argv(&[])).is_err());
    }

    #[test]
    fn error_display_includes_usage() {
        let e = parse(&argv(&["nope"])).unwrap_err();
        assert!(e.to_string().contains("usage:"));
    }
}
