//! Native closed-itemset mining over the PLT — pattern growth in the
//! CLOSET style (Pei, Han & Mao 2000), adapted to position vectors.
//!
//! The post-processing filter in the crate root first materialises *all*
//! frequent itemsets; on dense data that family is exponentially larger
//! than its closed subset, which is the entire motivation for closed
//! mining. The native miner never materialises it:
//!
//! * it runs the paper's conditional recursion (vectors grouped by sum,
//!   highest rank peeled first, prefixes folded back);
//! * **closure extension**: any item occurring in *every* transaction of
//!   a conditional database belongs to the closure of the suffix — it is
//!   absorbed into the output immediately and removed from the conditional
//!   structure, collapsing the `2^k` redundant branches below it;
//! * **subsumption check**: a candidate is emitted only if no previously
//!   emitted closed itemset with the same support contains it.
//!
//! The correctness bar: output ≡ `closed_itemsets(complete result)` —
//! property-tested against exactly that.

use std::collections::BTreeMap;

use plt_core::construct::{construct, ConstructOptions};
use plt_core::hash::FxHashMap;
use plt_core::item::{Item, Itemset, Rank, Support};
use plt_core::miner::MiningResult;
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;
use plt_core::ranking::RankPolicy;

/// Vectors grouped by sum — the conditional-PLT working form.
type SumGroups = BTreeMap<Rank, FxHashMap<PositionVector, Support>>;

/// The native closed-itemset miner.
///
/// # Examples
///
/// ```
/// use plt_closed::ClosedMiner;
///
/// // Five identical transactions: one closed itemset, not 2^3 − 1.
/// let db = vec![vec![1, 2, 3]; 5];
/// let closed = ClosedMiner::default().mine(&db, 2);
/// assert_eq!(closed.len(), 1);
/// assert_eq!(closed.support(&[1, 2, 3]), Some(5));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
}

impl ClosedMiner {
    /// Mines the closed frequent itemsets of a database.
    pub fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let plt = construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        self.mine_plt(&plt)
    }

    /// Mines an already-constructed PLT (no prefixes).
    pub fn mine_plt(&self, plt: &Plt) -> MiningResult {
        let mut groups: SumGroups = SumGroups::new();
        for (v, e) in plt.iter() {
            *groups
                .entry(e.sum)
                .or_default()
                .entry(v.clone())
                .or_insert(0) += e.freq;
        }
        let mut state = State {
            plt,
            found: FxHashMap::default(),
            result: MiningResult::new(plt.min_support(), plt.num_transactions()),
        };
        let mut suffix = Vec::new();
        mine_closed(groups, &mut suffix, &mut state);
        state.result
    }
}

struct State<'a> {
    plt: &'a Plt,
    /// Closed itemsets found so far, grouped by support for the
    /// subsumption check (rank-space, sorted ascending).
    found: FxHashMap<Support, Vec<Vec<Rank>>>,
    result: MiningResult,
}

impl State<'_> {
    /// Records `ranks` (sorted ascending) as closed with `support`, unless
    /// an already-found closed set with identical support subsumes it.
    fn emit(&mut self, ranks: &[Rank], support: Support) {
        debug_assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        if let Some(peers) = self.found.get(&support) {
            if peers.iter().any(|p| is_subset(ranks, p)) {
                return;
            }
        }
        self.found.entry(support).or_default().push(ranks.to_vec());
        let items = self.plt.ranking().items_for_ranks(ranks);
        self.result.insert(Itemset::from_sorted(items), support);
    }
}

fn is_subset(needle: &[Rank], haystack: &[Rank]) -> bool {
    let mut j = 0;
    for &x in needle {
        loop {
            if j == haystack.len() {
                return false;
            }
            match haystack[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// The closed-mining recursion. `suffix` holds the (global) ranks fixed so
/// far, kept sorted ascending for emission.
fn mine_closed(mut groups: SumGroups, suffix: &mut Vec<Rank>, state: &mut State<'_>) {
    while let Some((&j, _)) = groups.iter().next_back() {
        let group = groups.remove(&j).expect("key just observed");
        let support: Support = group.values().sum();

        // Fold prefixes back; collect the conditional database.
        let mut conditional: Vec<(PositionVector, Support)> = Vec::new();
        for (v, f) in group {
            if let Some(prefix) = v.parent() {
                *groups
                    .entry(prefix.sum())
                    .or_default()
                    .entry(prefix.clone())
                    .or_insert(0) += f;
                conditional.push((prefix, f));
            }
        }
        if support < state.plt.min_support() {
            continue;
        }

        // Local frequencies within CD_j.
        let mut counts: FxHashMap<Rank, Support> = FxHashMap::default();
        for (v, f) in &conditional {
            for r in v.ranks_iter() {
                *counts.entry(r).or_insert(0) += f;
            }
        }

        // Closure extension: ranks present in every supporting
        // transaction belong to the closure of suffix ∪ {j}.
        let mut closure: Vec<Rank> = counts
            .iter()
            .filter(|&(_, &c)| c == support)
            .map(|(&r, _)| r)
            .collect();
        closure.push(j);

        // Candidate = suffix ∪ closure, sorted for emission.
        let mut candidate: Vec<Rank> = suffix
            .iter()
            .copied()
            .chain(closure.iter().copied())
            .collect();
        candidate.sort_unstable();
        state.emit(&candidate, support);

        // Conditional structure: keep locally frequent ranks that are NOT
        // in the closure (closure ranks are implied on every branch).
        let keep = |r: Rank| {
            counts.get(&r).copied().unwrap_or(0) >= state.plt.min_support() && counts[&r] != support
        };
        let mut cgroups: SumGroups = SumGroups::new();
        let mut kept: Vec<Rank> = Vec::new();
        for (v, f) in &conditional {
            kept.clear();
            kept.extend(v.ranks_iter().filter(|&r| keep(r)));
            if kept.is_empty() {
                continue;
            }
            let filtered = PositionVector::from_ranks(&kept).expect("increasing ranks");
            *cgroups
                .entry(filtered.sum())
                .or_default()
                .entry(filtered)
                .or_insert(0) += f;
        }
        if !cgroups.is_empty() {
            // Recurse with the full candidate as the new suffix: every
            // closed set below carries the closure items too.
            let saved = suffix.len();
            suffix.extend_from_slice(&closure);
            mine_closed(cgroups, suffix, state);
            suffix.truncate(saved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_itemsets;
    use plt_core::miner::{BruteForceMiner, Miner};
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn reference(db: &[Vec<Item>], min_sup: Support) -> MiningResult {
        closed_itemsets(&BruteForceMiner.mine(db, min_sup))
    }

    #[test]
    fn matches_post_processing_on_table1() {
        let expect = reference(&table1(), 2);
        let got = ClosedMiner::default().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn min_support_one_on_table1() {
        let expect = reference(&table1(), 1);
        let got = ClosedMiner::default().mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn closure_extension_collapses_constant_columns() {
        // Item 9 appears in every transaction: every closed set containing
        // any item also contains 9, and {9} itself is the top closure.
        let db: Vec<Vec<Item>> = vec![vec![1, 9], vec![1, 2, 9], vec![2, 9], vec![1, 2, 9]];
        let got = ClosedMiner::default().mine(&db, 1);
        let expect = reference(&db, 1);
        assert_eq!(got.sorted(), expect.sorted());
        assert!(got.contains(&[9]));
        assert!(!got.contains(&[1])); // {1} closed? sup({1})=3, sup({1,9})=3 → not closed
        assert!(got.contains(&[1, 9]));
    }

    #[test]
    fn dense_data_stays_small() {
        // 10 identical transactions: exactly ONE closed itemset (the full
        // set), versus 2^5 − 1 frequent itemsets.
        let db = vec![vec![1, 2, 3, 4, 5]; 10];
        let got = ClosedMiner::default().mine(&db, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got.support(&[1, 2, 3, 4, 5]), Some(10));
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(ClosedMiner::default().mine(&[], 1).is_empty());
        assert!(ClosedMiner::default().mine(&table1(), 10).is_empty());
    }

    #[test]
    fn rank_policies_agree() {
        let expect = reference(&table1(), 2);
        for policy in [
            RankPolicy::Lexicographic,
            RankPolicy::FrequencyAscending,
            RankPolicy::FrequencyDescending,
        ] {
            let got = ClosedMiner {
                rank_policy: policy,
            }
            .mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "{policy:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The native closed miner equals brute-force + post-processing on
        /// random databases.
        #[test]
        fn prop_matches_post_processing(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..7),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = reference(&db, min_support);
            let got = ClosedMiner::default().mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
