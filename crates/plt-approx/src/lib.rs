//! # plt-approx — the approximate answering tier
//!
//! Two complementary mechanisms trade bounded error for latency and
//! memory on the serving path:
//!
//! * [`IndicatorSketch`] — a deterministic Bernoulli sample of the
//!   serving window with explicit ε/δ parameters. It answers
//!   `SUPPORT OF {X} APPROX` in `O(sketch)` without touching the
//!   snapshot, with a stated absolute error bound derived from
//!   Hoeffding's inequality (`m = ⌈ln(2/δ)/(2ε²)⌉` samples, memory
//!   independent of the window size). It implements
//!   [`plt_query::SupportSketch`], so attaching one to a query source
//!   makes the planner's `sketch_probe` operator eligible for
//!   `APPROX`-tier support queries.
//! * [`SampledRebuild`] — Toivonen-style sampled re-mining
//!   (`plt_baselines::SamplingMiner`) as a fast-path snapshot rebuild:
//!   mine a sample at lowered support, verify the negative border
//!   exactly, fall back to a full re-mine on a violation. Always exact;
//!   only the latency is probabilistic.
//!
//! ```
//! use plt_approx::{IndicatorSketch, SketchConfig};
//! use plt_query::SupportSketch;
//!
//! let mut sk = IndicatorSketch::new(SketchConfig {
//!     epsilon: 0.1,
//!     delta: 0.01,
//!     capacity: 100,
//!     seed: 7,
//! });
//! for t in [&[1u32, 2, 3][..], &[1, 2], &[2, 3], &[1, 2]] {
//!     sk.observe(t);
//! }
//! let (support, bound) = sk.estimate(&[1, 2]);
//! assert!(support.abs_diff(3) <= bound);
//! ```

pub mod rebuild;
pub mod sketch;

pub use plt_baselines::SamplingOutcome;
pub use rebuild::SampledRebuild;
pub use sketch::{Estimate, IndicatorSketch, SketchConfig};
