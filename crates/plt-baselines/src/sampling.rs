//! Toivonen's sampling algorithm (VLDB'96) — mine a random sample at a
//! lowered threshold, then verify against the full database in one pass.
//!
//! The completeness argument: let `S` be the itemsets frequent in the
//! sample (the candidates) and suppose some globally frequent `X ∉ S`;
//! take `X` minimal. All of `X`'s proper subsets are globally frequent
//! and, by minimality, in `S` — so `X` lies on the **negative border**
//! `Bd⁻(S)` (not in `S`, every immediate subset in `S`). Hence: count the
//! exact global supports of `S ∪ Bd⁻(S)`; if *no* border itemset turns
//! out frequent, the frequent candidates are exactly the global answer.
//! If one does, the sample missed something — this implementation retries
//! with a larger sample, and after `max_attempts` falls back to an exact
//! miner, so the result is always exact (the sampling is a performance
//! gamble, never a correctness one).

use plt_core::hash::FxHashSet;
use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_data::transaction::TransactionDb;
use plt_data::vertical::VerticalDb;

use crate::eclat::EclatMiner;

/// The sampling miner.
#[derive(Debug, Clone, Copy)]
pub struct SamplingMiner {
    /// Fraction of the database to sample (without replacement).
    pub sample_fraction: f64,
    /// Threshold slack: the sample is mined at
    /// `relative_support · (1 − slack)` to reduce the miss probability.
    pub support_slack: f64,
    /// RNG seed (deterministic sampling).
    pub seed: u64,
    /// Failed-border retries before falling back to exact mining.
    pub max_attempts: usize,
}

impl Default for SamplingMiner {
    fn default() -> Self {
        SamplingMiner {
            sample_fraction: 0.25,
            support_slack: 0.25,
            seed: 0x7017_0e4e,
            max_attempts: 3,
        }
    }
}

/// How a [`SamplingMiner::mine_with_outcome`] run actually went — the
/// result is always exact either way; this reports which path produced
/// it so callers (the serving rebuild path, tests) can observe the
/// gamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingOutcome {
    /// Sample-and-verify attempts made (0 when the small-database
    /// short-circuit skipped sampling entirely).
    pub attempts: usize,
    /// Attempts falsified by a frequent negative-border itemset.
    pub border_violations: usize,
    /// Whether the run gave up on sampling and re-mined exactly.
    pub fell_back: bool,
}

impl Miner for SamplingMiner {
    fn name(&self) -> &'static str {
        "sampling-toivonen"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        self.mine_with_outcome(transactions, min_support).0
    }
}

impl SamplingMiner {
    /// [`Miner::mine`] plus the [`SamplingOutcome`] describing whether a
    /// verified sample or the exact fallback produced the answer.
    pub fn mine_with_outcome(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
    ) -> (MiningResult, SamplingOutcome) {
        assert!(min_support >= 1, "minimum support must be at least 1");
        assert!((0.0..=1.0).contains(&self.sample_fraction));
        assert!((0.0..1.0).contains(&self.support_slack));
        let n = transactions.len();
        let mut outcome = SamplingOutcome {
            attempts: 0,
            border_violations: 0,
            fell_back: false,
        };
        // Sampling tiny databases is pointless; go exact.
        if n < 40 {
            outcome.fell_back = true;
            return (
                EclatMiner::default().mine(transactions, min_support),
                outcome,
            );
        }
        let rel = min_support as f64 / n as f64;

        // The verification index is attempt-invariant: build it once.
        let db = TransactionDb::from_sorted(transactions.to_vec());
        let vertical = VerticalDb::from_horizontal(&db);

        let mut fraction = self.sample_fraction;
        let slack = self.support_slack;
        for attempt in 0..self.max_attempts {
            outcome.attempts = attempt + 1;
            let sample = deterministic_sample(
                transactions,
                ((fraction * n as f64).ceil() as usize).clamp(1, n),
                self.seed.wrapping_add(attempt as u64),
            );
            let lowered = (((rel * (1.0 - slack)) * sample.len() as f64).floor() as Support).max(1);
            let local = EclatMiner::default().mine(&sample, lowered);
            let candidates: Vec<Itemset> = local.iter().map(|(s, _)| s.clone()).collect();
            if let Some(result) =
                self.verify(&db, &vertical, transactions.len(), min_support, &candidates)
            {
                return (result, outcome);
            }
            // Border failure: draw a larger sample and retry. The slack
            // stays put — lowering the threshold further inflates the
            // candidate set (and its border) combinatorially, while a
            // bigger sample shrinks the miss probability directly; this
            // is Toivonen's own escalation.
            outcome.border_violations += 1;
            fraction = (fraction * 2.0).min(1.0);
        }
        outcome.fell_back = true;
        (
            EclatMiner::default().mine(transactions, min_support),
            outcome,
        )
    }
    /// Counts `candidates ∪ Bd⁻(candidates)` exactly; returns the final
    /// result when no border itemset is frequent, `None` on a miss.
    fn verify(
        &self,
        db: &TransactionDb,
        vertical: &VerticalDb,
        num_transactions: usize,
        min_support: Support,
        candidates: &[Itemset],
    ) -> Option<MiningResult> {
        let candidate_set: FxHashSet<&Itemset> = candidates.iter().collect();

        let border = negative_border(candidates, &candidate_set, db);

        let count = |itemset: &Itemset| -> Support {
            let mut items = itemset.items().iter();
            let first = *items.next().expect("non-empty itemset");
            let mut tids = vertical.tids(first).to_vec();
            for &item in items {
                if tids.is_empty() {
                    break;
                }
                tids = VerticalDb::intersect(&tids, vertical.tids(item));
            }
            tids.len() as Support
        };

        // Any frequent border itemset falsifies the sample.
        for b in &border {
            if count(b) >= min_support {
                return None;
            }
        }
        let mut result = MiningResult::new(min_support, num_transactions as u64);
        for c in candidates {
            let support = count(c);
            if support >= min_support {
                result.insert(c.clone(), support);
            }
        }
        Some(result)
    }
}

/// Deterministic sample without replacement: a seeded partial
/// Fisher–Yates over the index space.
fn deterministic_sample(transactions: &[Vec<Item>], size: usize, seed: u64) -> Vec<Vec<Item>> {
    // A tiny splitmix-style PRNG keeps `rand` out of the non-dev
    // dependency set of this crate.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut idx: Vec<usize> = (0..transactions.len()).collect();
    let size = size.min(idx.len());
    for i in 0..size {
        let j = i + (next() as usize) % (idx.len() - i);
        idx.swap(i, j);
    }
    idx[..size]
        .iter()
        .map(|&i| transactions[i].clone())
        .collect()
}

/// `Bd⁻(S)`: itemsets not in `S` whose immediate subsets are all in `S`.
/// Level 1 is every database item missing from `S`; level `k ≥ 2` comes
/// from the Apriori join of `S_{k−1}`. Public so the approximate-serving
/// layer can exhibit and test border violations directly.
pub fn negative_border(
    candidates: &[Itemset],
    candidate_set: &FxHashSet<&Itemset>,
    db: &TransactionDb,
) -> Vec<Itemset> {
    let mut border = Vec::new();
    let in_s = |items: &[Item]| {
        let probe = Itemset::from_sorted(items.to_vec());
        candidate_set.contains(&probe)
    };

    // Level 1.
    for item in db.items() {
        if !in_s(&[item]) {
            border.push(Itemset::from_sorted(vec![item]));
        }
    }

    // Levels >= 2: join candidates of size k−1.
    let mut by_size: Vec<Vec<&Itemset>> = Vec::new();
    for c in candidates {
        let k = c.len();
        if by_size.len() < k {
            by_size.resize_with(k, Vec::new);
        }
        by_size[k - 1].push(c);
    }
    for level in &mut by_size {
        level.sort();
    }
    for level in &by_size {
        for (i, a) in level.iter().enumerate() {
            for b in &level[i + 1..] {
                let (ia, ib) = (a.items(), b.items());
                let k = ia.len();
                if ia[..k - 1] != ib[..k - 1] {
                    break; // sorted: once prefixes diverge, no more joins
                }
                let mut y = ia.to_vec();
                y.push(ib[k - 1]);
                if in_s(&y) {
                    continue;
                }
                // All immediate subsets in S?
                let all_in = (0..y.len()).all(|drop| {
                    let sub: Vec<Item> = y
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != drop)
                        .map(|(_, &v)| v)
                        .collect();
                    in_s(&sub)
                });
                if all_in {
                    border.push(Itemset::from_sorted(y));
                }
            }
        }
    }
    border.sort();
    border.dedup();
    border
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn structured_db(n: usize) -> Vec<Vec<Item>> {
        (0..n as u32)
            .map(|i| {
                let mut t = vec![i % 5, 5 + (i % 3)];
                if i % 2 == 0 {
                    t.push(8);
                }
                if i % 7 == 0 {
                    t.push(9 + (i % 4));
                }
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect()
    }

    #[test]
    fn exact_on_structured_database() {
        let db = structured_db(500);
        let expect = BruteForceMiner.mine(&db, 25);
        let got = SamplingMiner::default().mine(&db, 25);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn exact_even_with_hostile_parameters() {
        // A tiny, heavily slack-free sample forces border failures and the
        // retry/fallback path; the answer must still be exact.
        let db = structured_db(300);
        let miner = SamplingMiner {
            sample_fraction: 0.05,
            support_slack: 0.0,
            seed: 1,
            max_attempts: 2,
        };
        let expect = BruteForceMiner.mine(&db, 10);
        let got = miner.mine(&db, 10);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn small_databases_short_circuit() {
        let db = vec![vec![1, 2], vec![1, 2], vec![2, 3]];
        let expect = BruteForceMiner.mine(&db, 2);
        let got = SamplingMiner::default().mine(&db, 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn negative_border_of_toy_family() {
        // S = {1}, {2}, {3}, {1,2}, {1,3} over items {1,2,3,4}:
        // border = {4} (missing item), {2,3} (both subsets in S).
        // {1,2,3} is NOT in the border: its subset {2,3} ∉ S.
        let candidates: Vec<Itemset> = [vec![1], vec![2], vec![3], vec![1, 2], vec![1, 3]]
            .into_iter()
            .map(Itemset::from_sorted)
            .collect();
        let set: FxHashSet<&Itemset> = candidates.iter().collect();
        let db = TransactionDb::new(vec![vec![1, 2, 3, 4]]);
        let border = negative_border(&candidates, &set, &db);
        assert_eq!(
            border,
            vec![
                Itemset::from_sorted(vec![2, 3]),
                Itemset::from_sorted(vec![4])
            ]
        );
    }

    #[test]
    fn outcome_reports_the_path_taken() {
        // Healthy parameters: a verified sample, no fallback.
        let db = structured_db(500);
        let (got, outcome) = SamplingMiner::default().mine_with_outcome(&db, 25);
        assert_eq!(got.sorted(), BruteForceMiner.mine(&db, 25).sorted());
        assert!(outcome.attempts >= 1);
        assert!(!outcome.fell_back);
        // Hostile parameters: border violations force the exact fallback.
        let miner = SamplingMiner {
            sample_fraction: 0.02,
            support_slack: 0.0,
            seed: 3,
            max_attempts: 1,
        };
        let (got, outcome) = miner.mine_with_outcome(&db, 2);
        assert_eq!(got.sorted(), BruteForceMiner.mine(&db, 2).sorted());
        if outcome.fell_back {
            assert_eq!(outcome.border_violations, outcome.attempts);
        }
        // Small databases short-circuit and say so.
        let tiny = vec![vec![1, 2], vec![2, 3]];
        let (_, outcome) = SamplingMiner::default().mine_with_outcome(&tiny, 1);
        assert!(outcome.fell_back);
        assert_eq!(outcome.attempts, 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let db = structured_db(400);
        let a = SamplingMiner::default().mine(&db, 20);
        let b = SamplingMiner::default().mine(&db, 20);
        assert_eq!(a.sorted(), b.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Sampling is exact on random databases regardless of parameters
        /// (the border check + fallback guarantee).
        #[test]
        fn prop_always_exact(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                40..120,
            ),
            min_support in 2u64..8,
            fraction in 0.1f64..0.9,
            seed in 0u64..1000,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let miner = SamplingMiner {
                sample_fraction: fraction,
                support_slack: 0.2,
                seed,
                max_attempts: 2,
            };
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = miner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
