//! `experiments` — regenerates every paper exhibit and every extended
//! experiment as evaluation-section-style tables.
//!
//! ```text
//! experiments [--exp <id>[,<id>…]] [--full] [--json-out <path>]
//!
//!   ids: t1 f1 f2 f3 f4 f5 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x12 x13 x14 x15 x16 x17 x18 paper all
//!        (default: paper — the exhibits that come straight from the text)
//!   --full: evaluation-scale workloads instead of the quick ones
//!   --json-out: also write x12..x18's machine-readable record to this path
//! ```

use std::io::Write;

use plt_bench::experiments::{self, Scale};
use plt_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden helper mode: X16's idle-connection herd runs in a child
    // process so its sockets draw on a separate fd budget.
    #[cfg(target_os = "linux")]
    if args.first().map(String::as_str) == Some("--x16-herd") {
        let addr = args.get(1).unwrap_or_else(|| usage("missing herd addr"));
        let count: usize = args
            .get(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage("missing herd count"));
        experiments::x16_idle_herd_child(addr, count);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage("missing --exp value"));
                ids.extend(list.split(',').map(str::to_owned));
            }
            "--full" => scale = Scale::Full,
            "--json-out" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --json-out value"));
                json_out = Some(path.clone());
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.push("paper".into());
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut expanded: Vec<String> = Vec::new();
    for id in ids {
        match id.as_str() {
            "paper" => expanded.extend(["t1", "f1", "f2", "f3", "f4", "f5"].map(str::to_owned)),
            "all" => expanded.extend(
                [
                    "t1", "f1", "f2", "f3", "f4", "f5", "x1", "x2", "x3", "x4", "x5", "x6", "x7",
                    "x8", "x9", "x10", "x12", "x13", "x14", "x15", "x16", "x17", "x18",
                ]
                .map(str::to_owned),
            ),
            _ => expanded.push(id),
        }
    }

    for id in expanded {
        run_one(&mut out, &id, scale, json_out.as_deref());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [--exp t1|f1..f5|x1..x10|x12..x18|paper|all[,..]] [--full] \
         [--json-out <path>]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn run_one(out: &mut impl Write, id: &str, scale: Scale, json_out: Option<&str>) {
    match id {
        "t1" => {
            writeln!(out, "--- E-T1 (paper Table 1 scan) ---").unwrap();
            writeln!(out, "{}", figures::exp_t1()).unwrap();
        }
        "f1" => {
            writeln!(out, "--- E-F1 (paper Figure 1) ---").unwrap();
            writeln!(out, "{}", figures::exp_f1().1).unwrap();
        }
        "f2" => {
            writeln!(out, "--- E-F2 (paper Figure 2) ---").unwrap();
            writeln!(out, "{}", figures::exp_f2().1).unwrap();
        }
        "f3" => {
            writeln!(out, "--- E-F3 (paper Figure 3) ---").unwrap();
            writeln!(out, "{}", figures::exp_f3().1).unwrap();
        }
        "f4" => {
            writeln!(out, "--- E-F4 (paper Figure 4) ---").unwrap();
            writeln!(out, "{}", figures::exp_f4().1).unwrap();
        }
        "f5" => {
            writeln!(out, "--- E-F5 (paper Figure 5) ---").unwrap();
            writeln!(out, "{}", figures::exp_f5().3).unwrap();
        }
        "x1" => writeln!(out, "{}", experiments::x1_sparse_sweep(scale)).unwrap(),
        "x2" => writeln!(out, "{}", experiments::x2_dense_sweep(scale)).unwrap(),
        "x3" => writeln!(out, "{}", experiments::x3_scalability(scale)).unwrap(),
        "x4" => writeln!(out, "{}", experiments::x4_topdown_crossover(scale)).unwrap(),
        "x5" => writeln!(out, "{}", experiments::x5_parallel(scale)).unwrap(),
        "x6" => writeln!(out, "{}", experiments::x6_compression(scale)).unwrap(),
        "x7" => writeln!(out, "{}", experiments::x7_subset_check(scale)).unwrap(),
        "x8" => writeln!(out, "{}", experiments::x8_construction(scale)).unwrap(),
        "x9" => writeln!(out, "{}", experiments::x9_rank_policy(scale)).unwrap(),
        "x10" => writeln!(out, "{}", experiments::x10_zipf_sweep(scale)).unwrap(),
        "x12" => {
            let cells = experiments::x12_engine_cells(scale);
            writeln!(out, "{}", experiments::x12_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x12_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x13" => {
            let cells = experiments::x13_incremental_cells(scale);
            writeln!(out, "{}", experiments::x13_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x13_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x14" => {
            let cells = experiments::x14_simd_cells(scale);
            let kernels = experiments::x14_kernel_cells(scale);
            writeln!(out, "{}", experiments::x14_table(&cells, &kernels)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x14_json(&cells, &kernels, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x15" => {
            let cells = experiments::x15_storage_cells(scale);
            writeln!(out, "{}", experiments::x15_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x15_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x16" => {
            let cells = experiments::x16_serve_cells(scale);
            writeln!(out, "{}", experiments::x16_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x16_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x17" => {
            let cells = experiments::x17_query_cells(scale);
            writeln!(out, "{}", experiments::x17_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x17_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "x18" => {
            let cells = experiments::x18_approx_cells(scale);
            writeln!(out, "{}", experiments::x18_table(&cells)).unwrap();
            if let Some(path) = json_out {
                let json = experiments::x18_json(&cells, scale);
                match plt_bench::write_json_out(path, &json) {
                    Ok(()) => writeln!(out, "wrote {path}").unwrap(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        other => usage(&format!("unknown experiment {other:?}")),
    }
}
