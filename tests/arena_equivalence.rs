//! Differential suite for the arena conditional engine: on random and
//! generated databases, the arena path must produce the *exact* frequent
//! family (itemsets and supports) of the legacy map engine, the top-down
//! miner, and the FP-growth baseline — sequentially, in parallel, and
//! under pool reuse.

use std::collections::BTreeSet;

use plt::baselines::FpGrowthMiner;
use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::Miner;
use plt::core::subset::{NaiveChecker, SubsetChecker};
use plt::data::{DenseConfig, DenseGenerator, QuestConfig, QuestGenerator};
use plt::parallel::ParallelPltMiner;
use plt::{ArenaPool, CondEngine, ConditionalMiner, PositionVector, RankPolicy, TopDownMiner};
use proptest::prelude::*;

/// Everything that must agree with the arena engine.
fn references() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(ConditionalMiner::with_engine(CondEngine::Map)),
        Box::new(TopDownMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(ParallelPltMiner::with_engine(CondEngine::Map)),
    ]
}

fn assert_arena_agrees(db: &[Vec<u32>], min_support: u64, label: &str) {
    let arena = ConditionalMiner::default().mine(db, min_support);
    arena
        .check_anti_monotone()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let expect = arena.sorted();
    for miner in references() {
        assert_eq!(
            miner.mine(db, min_support).sorted(),
            expect,
            "{label}: arena disagrees with {}",
            miner.name()
        );
    }
    let par = ParallelPltMiner::default().mine(db, min_support);
    assert_eq!(par.sorted(), expect, "{label}: parallel arena disagrees");
}

#[test]
fn arena_agrees_on_sparse_quest_data() {
    let db = QuestGenerator::new(QuestConfig::t5i2(700))
        .generate()
        .into_transactions();
    assert_arena_agrees(&db, 7, "quest 1%");
    assert_arena_agrees(&db, 35, "quest 5%");
}

#[test]
fn arena_agrees_on_dense_data() {
    let db = DenseGenerator::new(DenseConfig {
        num_transactions: 350,
        num_items: 12,
        density_hi: 0.85,
        density_lo: 0.2,
        seed: 0xa12e,
    })
    .generate()
    .into_transactions();
    assert_arena_agrees(&db, 175, "dense 50%");
    assert_arena_agrees(&db, 70, "dense 20%");
    assert_arena_agrees(&db, 35, "dense 10%");
}

#[test]
fn arena_agrees_under_every_rank_policy() {
    let db = QuestGenerator::new(QuestConfig::t5i2(400))
        .generate()
        .into_transactions();
    for policy in [
        RankPolicy::Lexicographic,
        RankPolicy::FrequencyAscending,
        RankPolicy::FrequencyDescending,
    ] {
        let arena = ConditionalMiner {
            rank_policy: policy,
            engine: CondEngine::Arena,
        };
        let map = ConditionalMiner {
            rank_policy: policy,
            engine: CondEngine::Map,
        };
        assert_eq!(
            arena.mine(&db, 8).sorted(),
            map.mine(&db, 8).sorted(),
            "{policy:?}"
        );
    }
}

#[test]
fn one_pool_across_heterogeneous_databases() {
    // The parallel workers reuse one pool across many conditional
    // databases; mimic that lifecycle across whole PLTs of very different
    // shapes and make sure no state leaks between runs.
    let mut pool = ArenaPool::new();
    let sparse = QuestGenerator::new(QuestConfig::t5i2(300))
        .generate()
        .into_transactions();
    let dense = DenseGenerator::new(DenseConfig {
        num_transactions: 200,
        num_items: 10,
        density_hi: 0.9,
        density_lo: 0.3,
        seed: 7,
    })
    .generate()
    .into_transactions();
    for db in [&sparse, &dense, &sparse, &dense] {
        for min_support in [3u64, 20, 60] {
            let plt = construct(db, min_support, ConstructOptions::conditional()).unwrap();
            let reused = pool.mine_plt(&plt);
            let fresh =
                plt::core::Mine::mine_plt(&ConditionalMiner::with_engine(CondEngine::Map), &plt);
            assert_eq!(reused.sorted(), fresh.sorted(), "min_support {min_support}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sparse-ish databases: wide universe, short transactions.
    #[test]
    fn prop_arena_matches_references_sparse(
        db in proptest::collection::vec(
            proptest::collection::btree_set(0u32..40, 1..8),
            1..50,
        ),
        min_support in 1u64..5,
    ) {
        let db: Vec<Vec<u32>> = db.into_iter().map(|t| t.into_iter().collect()).collect();
        assert_arena_agrees(&db, min_support, "prop sparse");
    }

    /// Random dense databases: narrow universe, long transactions.
    #[test]
    fn prop_arena_matches_references_dense(
        db in proptest::collection::vec(
            proptest::collection::btree_set(0u32..9, 2..9),
            1..40,
        ),
        min_support in 1u64..6,
    ) {
        let db: Vec<Vec<u32>> = db.into_iter().map(|t| t.into_iter().collect()).collect();
        assert_arena_agrees(&db, min_support, "prop dense");
    }
}

// ---------------------------------------------------------------------------
// Generalised Lemma 4.1.3: position-vector subset derivations vs rank-set
// oracles. The `(k−1)`-subset machinery in `subset.rs` works entirely in
// position-vector space (drop the last position, or sum a consecutive
// pair); these properties pin it to the obvious definition — dropping one
// rank from the sorted rank set — on random vectors.
// ---------------------------------------------------------------------------

/// Drop-one oracle over a sorted rank slice: the rank sequence with
/// element `drop` removed.
fn drop_one(ranks: &[u32], drop: usize) -> Vec<u32> {
    ranks
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != drop)
        .map(|(_, &r)| r)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `level_down_subsets` (parent + consecutive merges) yields exactly
    /// the `k` vectors obtained by deleting each rank in turn — no more,
    /// no fewer, no duplicates (Lemma 4.1.2 makes rank sets and vectors
    /// interchangeable as identities).
    #[test]
    fn prop_level_down_matches_drop_one_rank_oracle(
        ranks in proptest::collection::btree_set(1u32..64, 1..10),
    ) {
        let ranks: Vec<u32> = ranks.into_iter().collect();
        let k = ranks.len();
        let v = PositionVector::from_ranks(&ranks).unwrap();

        let derived: BTreeSet<Vec<u32>> =
            v.level_down_subsets().map(|s| s.ranks()).collect();
        let mut oracle = BTreeSet::new();
        if k >= 2 {
            for drop in 0..k {
                oracle.insert(drop_one(&ranks, drop));
            }
        }
        prop_assert_eq!(derived.len(), if k >= 2 { k } else { 0 });
        prop_assert_eq!(derived, oracle);
    }

    /// `SubsetChecker` membership and the Apriori prune test
    /// (`all_level_down_subsets_present`) agree with a brute-force oracle
    /// holding plain rank sets, for an arbitrary stored family and
    /// arbitrary candidates.
    #[test]
    fn prop_subset_checker_agrees_with_rank_set_oracle(
        family in proptest::collection::btree_set(
            proptest::collection::btree_set(1u32..16, 1..5),
            1..30,
        ),
        candidates in proptest::collection::vec(
            proptest::collection::btree_set(1u32..16, 1..5),
            1..20,
        ),
    ) {
        let mut checker = SubsetChecker::new();
        let mut oracle: BTreeSet<Vec<u32>> = BTreeSet::new();
        for ranks in &family {
            let ranks: Vec<u32> = ranks.iter().copied().collect();
            checker.insert(PositionVector::from_ranks(&ranks).unwrap());
            oracle.insert(ranks);
        }
        prop_assert_eq!(checker.len(), oracle.len());

        for cand in candidates {
            let ranks: Vec<u32> = cand.into_iter().collect();
            let v = PositionVector::from_ranks(&ranks).unwrap();
            prop_assert_eq!(
                checker.contains(&v),
                oracle.contains(&ranks),
                "contains({:?})", &ranks
            );
            let brute = ranks.len() == 1
                || (0..ranks.len()).all(|d| oracle.contains(&drop_one(&ranks, d)));
            prop_assert_eq!(
                checker.all_level_down_subsets_present(&v),
                brute,
                "all_level_down({:?})", &ranks
            );
        }
    }

    /// On mined families the two production checkers agree with each
    /// other, and the family is level-down closed (anti-monotonicity):
    /// every mined itemset passes the prune test in both representations.
    #[test]
    fn prop_mined_family_is_level_down_closed(
        db in proptest::collection::vec(
            proptest::collection::btree_set(0u32..10, 1..6),
            1..30,
        ),
        min_support in 1u64..4,
    ) {
        let db: Vec<Vec<u32>> = db.into_iter().map(|t| t.into_iter().collect()).collect();
        let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
        let ranking = plt.ranking().clone();
        let result = ConditionalMiner::default().mine(&db, min_support);
        let checker = SubsetChecker::from_result(&result, &ranking);
        let naive = NaiveChecker::from_result(&result);
        prop_assert_eq!(checker.len(), naive.len());
        for (itemset, _) in result.iter() {
            let v = PositionVector::canonical_for(itemset.items(), &ranking)
                .expect("mined itemsets are fully ranked");
            prop_assert!(
                checker.all_level_down_subsets_present(&v),
                "vector prune rejects mined {}", itemset
            );
            prop_assert!(
                naive.all_level_down_subsets_present(itemset.items()),
                "naive prune rejects mined {}", itemset
            );
        }
    }
}
