//! Unified miner interface, mining results, and the brute-force reference
//! miner used as ground truth in tests.

use crate::hash::FxHashMap;
use crate::item::{Item, Itemset, Support};

/// The outcome of a frequent-itemset mining run: every frequent itemset
/// with its (absolute) support.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningResult {
    supports: FxHashMap<Itemset, Support>,
    min_support: Support,
    num_transactions: u64,
}

impl MiningResult {
    /// Creates an empty result with run metadata.
    pub fn new(min_support: Support, num_transactions: u64) -> Self {
        MiningResult {
            supports: FxHashMap::default(),
            min_support,
            num_transactions,
        }
    }

    /// Records a frequent itemset. Re-recording the same itemset must use
    /// the same support (debug-asserted); miners never legitimately produce
    /// conflicting counts.
    pub fn insert(&mut self, itemset: Itemset, support: Support) {
        debug_assert!(!itemset.is_empty(), "the empty itemset is never reported");
        let prev = self.supports.insert(itemset, support);
        debug_assert!(
            prev.is_none() || prev == Some(support),
            "conflicting supports for an itemset"
        );
    }

    /// Support of `items`, if the itemset is frequent.
    pub fn support(&self, items: &[Item]) -> Option<Support> {
        self.supports.get(&Itemset::from(items)).copied()
    }

    /// True if the itemset is in the frequent set.
    pub fn contains(&self, items: &[Item]) -> bool {
        self.support(items).is_some()
    }

    /// Number of frequent itemsets.
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// True when nothing was frequent.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// The minimum support of the run.
    pub fn min_support(&self) -> Support {
        self.min_support
    }

    /// The number of transactions mined.
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Iterates over `(itemset, support)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, Support)> {
        self.supports.iter().map(|(k, &v)| (k, v))
    }

    /// All frequent itemsets of exactly `k` items.
    pub fn of_size(&self, k: usize) -> impl Iterator<Item = (&Itemset, Support)> {
        self.iter().filter(move |(s, _)| s.len() == k)
    }

    /// Size of the largest frequent itemset.
    pub fn max_size(&self) -> usize {
        self.supports.keys().map(Itemset::len).max().unwrap_or(0)
    }

    /// Deterministically ordered view (by size, then lexicographically) for
    /// display and golden tests.
    pub fn sorted(&self) -> Vec<(Itemset, Support)> {
        let mut v: Vec<(Itemset, Support)> =
            self.supports.iter().map(|(k, &s)| (k.clone(), s)).collect();
        v.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Verifies the anti-monotone property internally: every non-empty
    /// subset of a frequent itemset must be frequent with at least the same
    /// support. Used by tests and debug assertions; `O(Σ 2^k)`. Violations
    /// are reported as [`PltError::AntiMonotoneViolation`]
    /// (crate::error::PltError::AntiMonotoneViolation).
    pub fn check_anti_monotone(&self) -> crate::error::Result<()> {
        for (itemset, support) in self.iter() {
            for sub in itemset.subsets() {
                match self.support(sub.items()) {
                    None => {
                        return Err(crate::error::PltError::AntiMonotoneViolation {
                            subset: sub,
                            superset: itemset.clone(),
                            subset_support: None,
                            superset_support: support,
                        })
                    }
                    Some(s) if s < support => {
                        return Err(crate::error::PltError::AntiMonotoneViolation {
                            subset: sub,
                            superset: itemset.clone(),
                            subset_support: Some(s),
                            superset_support: support,
                        })
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

impl MiningResult {
    /// Merges another result into this one (used by the parallel miners,
    /// whose per-partition results are disjoint by construction). Shared
    /// itemsets must agree on support.
    pub fn merge(&mut self, other: MiningResult) {
        for (itemset, support) in other.supports {
            self.insert(itemset, support);
        }
    }
}

impl FromIterator<(Itemset, Support)> for MiningResult {
    fn from_iter<I: IntoIterator<Item = (Itemset, Support)>>(iter: I) -> Self {
        let mut r = MiningResult::new(0, 0);
        for (s, sup) in iter {
            r.insert(s, sup);
        }
        r
    }
}

/// A frequent-itemset miner over a horizontal transaction database.
///
/// The interface is deliberately concrete (`&[Vec<Item>]`) so miners are
/// object-safe and interchangeable inside the benchmark harness.
pub trait Miner {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Mines all itemsets with support `>= min_support` (absolute count).
    ///
    /// # Panics
    /// Implementations may panic on `min_support == 0`; every provided
    /// miner treats it as a programming error.
    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult;

    /// Like [`Miner::mine`], reporting spans and counters into `obs`.
    ///
    /// The default wraps the whole run in a single `mine/total` span;
    /// miners with internal phases override it to attribute time to
    /// `construct/*` and `mine/*` sub-spans and to flush engine counters.
    /// With `Obs::none()` this is exactly `mine` (the handle is inert),
    /// so implementations need no disabled-path special-casing.
    fn mine_with_obs(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
        obs: &mut plt_obs::Obs,
    ) -> MiningResult {
        obs.time("mine/total", || self.mine(transactions, min_support))
    }
}

/// A frequent-itemset miner over an already-constructed [`Plt`]
/// (`crate::plt::Plt`).
///
/// This is the single PLT-level entry point: one obs-taking method, plus a
/// convenience wrapper for callers without an observability pipeline. It is
/// object-safe, so services and benchmarks dispatch engines through
/// `Box<dyn Mine>` instead of per-type match arms. All four PLT miners
/// implement it: `ConditionalMiner`, `TopDownMiner`, `HybridMiner`
/// (plt-core) and `ParallelPltMiner` (plt-parallel).
///
/// Note: types implementing both [`Miner`] and [`Mine`] have two `mine`
/// methods of different arity; when both traits are in scope on a concrete
/// receiver, disambiguate with `Mine::mine(&miner, &plt, &mut obs)`.
/// `Box<dyn Mine>` receivers never hit the ambiguity.
pub trait Mine {
    /// Mines every frequent itemset of `plt` (at the PLT's construction
    /// `min_support`), reporting spans and counters into `obs`. With
    /// `Obs::none()` the handle is inert and this costs nothing extra.
    fn mine(&self, plt: &crate::plt::Plt, obs: &mut plt_obs::Obs) -> MiningResult;

    /// Convenience wrapper: [`Mine::mine`] with observability disabled.
    fn mine_plt(&self, plt: &crate::plt::Plt) -> MiningResult {
        self.mine(plt, &mut plt_obs::Obs::none())
    }
}

/// Ground-truth miner: enumerates every subset of every transaction and
/// counts exactly. Exponential in transaction length — tests only.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceMiner;

impl Miner for BruteForceMiner {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut counts: FxHashMap<Itemset, Support> = FxHashMap::default();
        for t in transactions {
            let t = Itemset::from(t.as_slice());
            assert!(
                t.len() <= 20,
                "brute-force miner limited to transactions of <= 20 items"
            );
            for sub in t.subsets() {
                *counts.entry(sub).or_insert(0) += 1;
            }
        }
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        for (itemset, support) in counts {
            if support >= min_support {
                result.insert(itemset, support);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn brute_force_on_paper_table1() {
        let r = BruteForceMiner.mine(&table1(), 2);
        // Hand-derived supports (DESIGN.md E-F4).
        assert_eq!(r.support(&[0]), Some(4));
        assert_eq!(r.support(&[1]), Some(5));
        assert_eq!(r.support(&[2]), Some(5));
        assert_eq!(r.support(&[3]), Some(4));
        assert_eq!(r.support(&[0, 1]), Some(4));
        assert_eq!(r.support(&[0, 2]), Some(3));
        assert_eq!(r.support(&[0, 3]), Some(2));
        assert_eq!(r.support(&[1, 2]), Some(4));
        assert_eq!(r.support(&[1, 3]), Some(3));
        assert_eq!(r.support(&[2, 3]), Some(3));
        assert_eq!(r.support(&[0, 1, 2]), Some(3));
        assert_eq!(r.support(&[0, 1, 3]), Some(2));
        assert_eq!(r.support(&[1, 2, 3]), Some(2));
        assert_eq!(r.support(&[0, 2, 3]), None); // support 1
        assert_eq!(r.support(&[0, 1, 2, 3]), None); // support 1
        assert_eq!(r.support(&[4]), None); // E, support 1
        assert_eq!(r.len(), 13);
        assert_eq!(r.max_size(), 3);
        r.check_anti_monotone().unwrap();
    }

    #[test]
    fn result_sorted_is_deterministic() {
        let r = BruteForceMiner.mine(&table1(), 2);
        let a = r.sorted();
        let b = r.sorted();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| {
            w[0].0.len() < w[1].0.len() || (w[0].0.len() == w[1].0.len() && w[0].0 < w[1].0)
        }));
    }

    #[test]
    fn of_size_filters() {
        let r = BruteForceMiner.mine(&table1(), 2);
        assert_eq!(r.of_size(1).count(), 4);
        assert_eq!(r.of_size(2).count(), 6);
        assert_eq!(r.of_size(3).count(), 3);
        assert_eq!(r.of_size(4).count(), 0);
    }

    #[test]
    fn min_support_one_counts_everything() {
        let r = BruteForceMiner.mine(&table1(), 1);
        assert_eq!(r.support(&[0, 1, 2, 3]), Some(1));
        assert_eq!(r.support(&[4]), Some(1));
        r.check_anti_monotone().unwrap();
    }

    #[test]
    fn high_min_support_yields_empty() {
        let r = BruteForceMiner.mine(&table1(), 7);
        assert!(r.is_empty());
        assert_eq!(r.max_size(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_min_support_panics() {
        BruteForceMiner.mine(&table1(), 0);
    }

    #[test]
    fn check_anti_monotone_detects_violations() {
        let mut r = MiningResult::new(1, 10);
        r.insert(Itemset::from([1, 2]), 5);
        // {1} and {2} missing → violation.
        assert!(r.check_anti_monotone().is_err());
        r.insert(Itemset::from([1]), 5);
        r.insert(Itemset::from([2]), 3); // support below superset → violation
        assert!(r.check_anti_monotone().is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let r: MiningResult = vec![(Itemset::from([1]), 3u64), (Itemset::from([2]), 2)]
            .into_iter()
            .collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r.support(&[1]), Some(3));
    }
}
