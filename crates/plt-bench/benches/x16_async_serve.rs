//! X16 — async serving benchmark: request round-trip and pipelined
//! batch throughput through a live TCP server, reactor vs
//! thread-per-connection.
//!
//! Unlike X11 (which calls the engine in-process), every iteration here
//! crosses the wire: frame encode, socket write, server decode,
//! dispatch, reply frame, client decode. The gap between the two models
//! is scheduling and transport, not mining. The full grid — idle
//! ceiling and 64/512/4096-client load — lives in `experiments --exp
//! x16`, which emits the committed `BENCH_serve.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::miner::Miner;
use plt_core::ConditionalMiner;
use plt_rules::RuleConfig;
use plt_serve::{serve, Client, Engine, Request, ServerConfig, ServerModel, Snapshot};

fn start(model: ServerModel) -> plt_serve::ServerHandle {
    let db = datasets::sparse_small(2_000);
    let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
    let result = ConditionalMiner::default().mine(&db, 2);
    let engine = Arc::new(Engine::new(Snapshot::build(
        1,
        plt,
        &result,
        RuleConfig::default(),
    )));
    serve(
        "127.0.0.1:0",
        engine,
        None,
        ServerConfig {
            server_model: model,
            max_connections: 4_096,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn models() -> Vec<ServerModel> {
    if cfg!(target_os = "linux") {
        vec![ServerModel::Threads, ServerModel::Reactor]
    } else {
        vec![ServerModel::Threads]
    }
}

fn bench(c: &mut Criterion) {
    for model in models() {
        let handle = start(model);
        let mut group = c.benchmark_group(format!("x16/{}", model.as_str()));
        group.sample_size(10);

        let mut client = Client::connect(handle.addr()).expect("connect");
        // One request in flight: the wire round-trip floor.
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("rtt", "support"), |b| {
            b.iter(|| criterion::black_box(client.support(&[1, 2]).expect("support")))
        });

        // A pipelined batch: eight frames in flight on one connection.
        let batch: Vec<Request> = (0..64)
            .map(|_| Request::Support { items: vec![1, 2] })
            .collect();
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_function(BenchmarkId::new("pipeline", "64reqs_window8"), |b| {
            b.iter(|| criterion::black_box(client.pipeline(&batch, 8).expect("pipeline")))
        });

        group.finish();
        drop(client);
        handle.shutdown();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
