//! Parallel PLT construction.
//!
//! Both of Algorithm 1's scans are associative folds, so they parallelise
//! by chunk:
//!
//! * scan 1 — item counting: each chunk folds a local `item → count` map;
//!   maps merge by summing (Rayon `fold` + `reduce`);
//! * scan 2 — vector insertion: each chunk builds a local [`Plt`] over the
//!   shared ranking; PLTs merge with [`Plt::absorb`] (frequencies sum).
//!
//! The merged structure is byte-for-byte the sequential one because PLT
//! partitions are multiset maps — insertion order never matters.

use rayon::prelude::*;

use plt_core::construct::ConstructOptions;
use plt_core::error::Result;
use plt_core::hash::FxHashMap;
use plt_core::item::{Item, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;
use plt_core::ranking::ItemRanking;

/// Transactions per parallel chunk. Large enough to amortise the local-map
/// allocations, small enough to load-balance skewed databases.
const CHUNK: usize = 2_048;

/// Parallel Algorithm 1. Semantically identical to
/// [`plt_core::construct::construct`]; errors (duplicate items) surface
/// from whichever chunk hits them first.
pub fn par_construct(
    transactions: &[Vec<Item>],
    min_support: Support,
    options: ConstructOptions,
) -> Result<Plt> {
    // Scan 1: parallel item counting.
    let counts = transactions
        .par_chunks(CHUNK)
        .fold(FxHashMap::<Item, Support>::default, |mut acc, chunk| {
            for t in chunk {
                for &item in t {
                    *acc.entry(item).or_insert(0) += 1;
                }
            }
            acc
        })
        .reduce(FxHashMap::default, |mut a, b| {
            for (item, c) in b {
                *a.entry(item).or_insert(0) += c;
            }
            a
        });
    let frequent: Vec<(Item, Support)> = counts
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .collect();
    let ranking = ItemRanking::from_frequent_items(frequent, options.rank_policy);

    // Scan 2: parallel chunked insertion, merged by absorption.
    let plt = transactions
        .par_chunks(CHUNK)
        .map(|chunk| -> Result<Plt> {
            let mut local = Plt::new(ranking.clone(), min_support)?;
            for t in chunk {
                insert(&mut local, t, options.with_prefixes)?;
            }
            Ok(local)
        })
        .try_reduce(
            || Plt::new(ranking.clone(), min_support).expect("validated min support"),
            |mut a, b| {
                a.absorb(b);
                Ok(a)
            },
        )?;
    Ok(plt)
}

fn insert(plt: &mut Plt, transaction: &[Item], with_prefixes: bool) -> Result<()> {
    if !with_prefixes {
        plt.insert_transaction(transaction)?;
        return Ok(());
    }
    plt.note_transaction();
    let ranks = plt.ranking().project(transaction);
    if let Some(w) = ranks.windows(2).find(|w| w[0] == w[1]) {
        return Err(plt_core::error::PltError::DuplicateItem {
            item: plt.ranking().item(w[0]),
        });
    }
    for end in 1..=ranks.len() {
        let v = PositionVector::from_ranks(&ranks[..end]).expect("valid projection");
        plt.insert_vector(v, 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::construct;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn parallel_equals_sequential_small() {
        for opts in [
            ConstructOptions::conditional(),
            ConstructOptions::top_down(),
        ] {
            let seq = construct(&table1(), 2, opts).unwrap();
            let par = par_construct(&table1(), 2, opts).unwrap();
            assert_eq!(par.num_transactions(), seq.num_transactions());
            assert_eq!(par.num_vectors(), seq.num_vectors());
            for (v, e) in seq.iter() {
                assert_eq!(par.vector_frequency(v), e.freq, "{v}");
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_across_chunk_boundaries() {
        // More transactions than one chunk to force a real merge.
        let db: Vec<Vec<Item>> = (0..3 * CHUNK)
            .map(|i| {
                let a = (i % 7) as Item;
                let b = 7 + (i % 5) as Item;
                let c = 12 + (i % 3) as Item;
                vec![a, b, c]
            })
            .collect();
        let seq = construct(&db, 50, ConstructOptions::conditional()).unwrap();
        let par = par_construct(&db, 50, ConstructOptions::conditional()).unwrap();
        assert_eq!(par.num_vectors(), seq.num_vectors());
        assert_eq!(par.total_frequency(), seq.total_frequency());
        for (v, e) in seq.iter() {
            assert_eq!(par.vector_frequency(v), e.freq);
        }
    }

    #[test]
    fn duplicate_items_error_out() {
        let db = vec![vec![1, 1, 2]];
        assert!(par_construct(&db, 1, ConstructOptions::conditional()).is_err());
        assert!(par_construct(&db, 1, ConstructOptions::top_down()).is_err());
    }

    #[test]
    fn empty_database() {
        let plt = par_construct(&[], 1, ConstructOptions::conditional()).unwrap();
        assert_eq!(plt.num_vectors(), 0);
    }
}
