//! Vertical database layout: each item maps to the sorted list of
//! transaction identifiers (TIDs) containing it.
//!
//! This is the layout Eclat-family miners intersect; the paper's related
//! work (§3) contrasts it with the horizontal layout the PLT is built from.

use crate::transaction::{Item, TransactionDb};

/// A transaction identifier: the index of the transaction in the source
/// horizontal database.
pub type Tid = u32;

/// Vertical layout: per-item TID lists.
#[derive(Debug, Clone, Default)]
pub struct VerticalDb {
    /// `(item, sorted tids)` pairs, sorted by item.
    columns: Vec<(Item, Vec<Tid>)>,
    num_transactions: usize,
}

impl VerticalDb {
    /// Converts a horizontal database. `O(total items)`.
    pub fn from_horizontal(db: &TransactionDb) -> VerticalDb {
        let mut map: std::collections::BTreeMap<Item, Vec<Tid>> = std::collections::BTreeMap::new();
        for (tid, t) in db.transactions().iter().enumerate() {
            for &item in t {
                map.entry(item).or_default().push(tid as Tid);
            }
        }
        VerticalDb {
            columns: map.into_iter().collect(),
            num_transactions: db.len(),
        }
    }

    /// Number of transactions in the source database.
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.columns.len()
    }

    /// The TID list of `item` (empty slice when absent).
    pub fn tids(&self, item: Item) -> &[Tid] {
        match self.columns.binary_search_by_key(&item, |c| c.0) {
            Ok(i) => &self.columns[i].1,
            Err(_) => &[],
        }
    }

    /// Support of a single item.
    pub fn item_support(&self, item: Item) -> u64 {
        self.tids(item).len() as u64
    }

    /// Iterates `(item, tids)` in item order.
    pub fn columns(&self) -> impl Iterator<Item = (Item, &[Tid])> {
        self.columns.iter().map(|(i, t)| (*i, t.as_slice()))
    }

    /// Sorted-merge intersection of two TID lists — the Eclat join.
    ///
    /// Allocates the result; hot loops should prefer
    /// [`intersect_into`](VerticalDb::intersect_into) with a reused
    /// scratch buffer.
    pub fn intersect(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
        let mut out = Vec::new();
        VerticalDb::intersect_into(a, b, &mut out);
        out
    }

    /// Sorted-merge intersection written into `out` (cleared first) —
    /// the allocation-free Eclat join: callers thread one scratch buffer
    /// through the whole equivalence-class recursion instead of paying a
    /// `Vec` per candidate.
    pub fn intersect_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
        out.clear();
        out.reserve(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Sorted-merge difference `a \ b` — the diffset primitive
    /// (Zaki & Gouda, the paper's reference \[16\]).
    ///
    /// Allocates the result; hot loops should prefer
    /// [`difference_into`](VerticalDb::difference_into).
    pub fn difference(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
        let mut out = Vec::new();
        VerticalDb::difference_into(a, b, &mut out);
        out
    }

    /// Sorted-merge difference written into `out` (cleared first) — the
    /// allocation-free diffset primitive.
    pub fn difference_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
        out.clear();
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![3]])
    }

    #[test]
    fn conversion_builds_sorted_tid_lists() {
        let v = VerticalDb::from_horizontal(&db());
        assert_eq!(v.num_transactions(), 4);
        assert_eq!(v.num_items(), 3);
        assert_eq!(v.tids(1), &[0, 1]);
        assert_eq!(v.tids(2), &[0, 1, 2]);
        assert_eq!(v.tids(3), &[0, 2, 3]);
        assert_eq!(v.tids(9), &[] as &[Tid]);
        assert_eq!(v.item_support(2), 3);
    }

    #[test]
    fn intersection_is_pairwise_support() {
        let v = VerticalDb::from_horizontal(&db());
        let t12 = VerticalDb::intersect(v.tids(1), v.tids(2));
        assert_eq!(t12, vec![0, 1]);
        let t13 = VerticalDb::intersect(v.tids(1), v.tids(3));
        assert_eq!(t13, vec![0]);
        assert_eq!(VerticalDb::intersect(&[], v.tids(1)), Vec::<Tid>::new());
    }

    #[test]
    fn difference_is_diffset() {
        let v = VerticalDb::from_horizontal(&db());
        // diffset(3 | 2) = tids(2) \ tids(3) = {1}
        assert_eq!(VerticalDb::difference(v.tids(2), v.tids(3)), vec![1]);
        assert_eq!(VerticalDb::difference(v.tids(3), v.tids(2)), vec![3]);
        assert_eq!(VerticalDb::difference(&[], &[1]), Vec::<Tid>::new());
        assert_eq!(VerticalDb::difference(&[5], &[]), vec![5]);
    }

    #[test]
    fn columns_iterate_in_item_order() {
        let v = VerticalDb::from_horizontal(&db());
        let items: Vec<Item> = v.columns().map(|(i, _)| i).collect();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn empty_database() {
        let v = VerticalDb::from_horizontal(&TransactionDb::default());
        assert_eq!(v.num_items(), 0);
        assert_eq!(v.num_transactions(), 0);
    }
}
