//! The parallel PLT miner.
//!
//! Pipeline: parallel construction → one projection pass (flat per-item
//! conditional databases) → per-item tasks on the Rayon pool, each running
//! the sequential conditional miner on its own conditional database →
//! tree-shaped `reduce` merge. Task `j` emits exactly the frequent
//! itemsets whose highest-ranked item is `j`, so the per-task results
//! partition the answer and the merge is conflict-free.
//!
//! Each worker folds its items through a private [`ArenaPool`], so the
//! arena storage (position buffers, buckets, scratch arrays) is warmed
//! once per worker and reused across every item that worker processes —
//! steady-state mining allocates nothing.

use rayon::prelude::*;

use plt_core::arena::{ArenaPool, MineStats};
use plt_core::conditional::{mine_conditional, CondEngine};
use plt_core::construct::ConstructOptions;
use plt_core::item::{Item, Itemset, Rank, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_core::plt::Plt;
use plt_core::ranking::RankPolicy;

use crate::construct::par_construct;
use crate::projection::project_all;

/// Parallel conditional PLT miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelPltMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
    /// Working-set layout for the per-item conditional miners.
    pub engine: CondEngine,
    /// Kernel backend pinned onto every worker for the duration of its
    /// fold (`None` = inherit the process-global/auto selection). Pinning
    /// happens once per worker fold state, so the per-call dispatch in
    /// the hot loops reads a warm thread-local.
    pub kernel: Option<plt_simd::Backend>,
}

impl ParallelPltMiner {
    /// Miner with a specific rank policy.
    ///
    /// Prefer constructing miners through `plt-shard`'s `MinerBuilder`,
    /// which configures every engine through one path.
    pub fn with_policy(rank_policy: RankPolicy) -> Self {
        ParallelPltMiner {
            rank_policy,
            ..Default::default()
        }
    }

    /// Miner with a specific engine.
    ///
    /// Prefer constructing miners through `plt-shard`'s `MinerBuilder`,
    /// which configures every engine through one path.
    pub fn with_engine(engine: CondEngine) -> Self {
        ParallelPltMiner {
            engine,
            ..Default::default()
        }
    }

    /// The same miner with a pinned kernel backend (`None` = auto).
    pub fn with_kernel(mut self, kernel: Option<plt_simd::Backend>) -> Self {
        self.kernel = kernel;
        self
    }
}

/// The PLT-level entry point: the projection pass and the fan-out are
/// reported as `mine/project` and `mine/items` spans, and the per-worker
/// arena counters are merged at reduce time and flushed into the recorder
/// (with a `parallel.workers` gauge for the pool width).
impl plt_core::miner::Mine for ParallelPltMiner {
    fn mine(&self, plt: &Plt, obs: &mut plt_obs::Obs) -> MiningResult {
        let projections = obs.time("mine/project", || project_all(plt));
        let n = plt.ranking().len() as Rank;
        let engine = self.engine;
        let kernel = self.kernel;
        let empty = || MiningResult::new(plt.min_support(), plt.num_transactions());
        let t0 = obs.start();
        let (result, stats) = (1..=n)
            .into_par_iter()
            // Per-worker fold: the (pool, local-result) accumulator lives
            // on one worker for its whole run of items, so every item it
            // mines reuses the same warmed arena storage. The kernel
            // backend is pinned (or unpinned) on the worker thread here,
            // once per fold state rather than per kernel call; rayon
            // workers persist across runs, so `None` must clear any pin a
            // previous run left behind.
            .fold(
                || {
                    plt_simd::set_thread_backend(kernel);
                    (ArenaPool::new(), empty())
                },
                |(mut pool, mut local), j| {
                    let support = projections.support(j);
                    if support >= plt.min_support() {
                        let item = plt.ranking().item(j);
                        local.insert(Itemset::from_sorted(vec![item]), support);
                        let cd = projections.conditional(j);
                        if !cd.is_empty() {
                            local.merge(match engine {
                                CondEngine::Arena => pool.mine_conditional(cd.iter(), plt, &[j]),
                                CondEngine::Map => mine_conditional(&cd.to_vectors(), plt, &[j]),
                            });
                        }
                    }
                    (pool, local)
                },
            )
            // The pool hands its accumulated engine counters over as the
            // worker's fold state retires.
            .map(|(mut pool, local)| (local, pool.take_stats()))
            // Tree-shaped merge on the pool instead of a sequential loop
            // on the calling thread.
            .reduce(
                || (empty(), MineStats::default()),
                |(mut a, mut sa), (b, sb)| {
                    a.merge(b);
                    sa.merge(&sb);
                    (a, sa)
                },
            );
        obs.stop("mine/items", t0);
        stats.record(obs);
        obs.gauge("parallel.workers", rayon::current_num_threads() as u64);
        result
    }
}

impl Miner for ParallelPltMiner {
    fn name(&self) -> &'static str {
        "plt-parallel"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        let plt = par_construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        plt_core::miner::Mine::mine_plt(self, &plt)
    }

    fn mine_with_obs(
        &self,
        transactions: &[Vec<Item>],
        min_support: Support,
        obs: &mut plt_obs::Obs,
    ) -> MiningResult {
        let t0 = obs.start();
        let plt = par_construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        obs.stop("construct/parallel", t0);
        plt_core::miner::Mine::mine(self, &plt, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::conditional::ConditionalMiner;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_sequential_conditional_miner() {
        let seq = ConditionalMiner::default().mine(&table1(), 2);
        let par = ParallelPltMiner::default().mine(&table1(), 2);
        assert_eq!(par.sorted(), seq.sorted());
    }

    #[test]
    fn map_engine_matches_arena_engine() {
        let arena = ParallelPltMiner::default().mine(&table1(), 2);
        let map = ParallelPltMiner::with_engine(CondEngine::Map).mine(&table1(), 2);
        assert_eq!(map.sorted(), arena.sorted());
    }

    #[test]
    fn single_thread_pool_matches_too() {
        let seq = ConditionalMiner::default().mine(&table1(), 2);
        let par = crate::run_with_threads(1, || ParallelPltMiner::default().mine(&table1(), 2));
        assert_eq!(par.sorted(), seq.sorted());
    }

    #[test]
    fn per_worker_stats_merge_into_recorder() {
        let mut rec = plt_obs::MetricsRecorder::new();
        let miner = ParallelPltMiner::default();
        let with_obs = miner.mine_with_obs(&table1(), 2, &mut plt_obs::Obs::new(&mut rec));
        assert_eq!(with_obs.sorted(), miner.mine(&table1(), 2).sorted());
        assert_eq!(rec.span_count("mine/project"), 1);
        assert_eq!(rec.span_count("mine/items"), 1);
        assert!(rec.gauge_value("parallel.workers") >= 1);
        // Table 1 has non-trivial conditional databases, so the merged
        // per-worker arena counters must be non-zero.
        assert!(rec.counter_value("arena.vectors_folded") > 0);
        assert!(rec.gauge_value("arena.bytes_peak") > 0);
    }

    #[test]
    fn pinned_kernel_backends_agree() {
        // The same database mined with every worker pinned to each
        // backend; answers must match (Simd degrades to Scalar when the
        // CPU or build lacks it, so this is safe in every configuration).
        let auto = ParallelPltMiner::default().mine(&table1(), 2);
        for backend in [plt_simd::Backend::Scalar, plt_simd::Backend::Simd] {
            let pinned = ParallelPltMiner::default()
                .with_kernel(Some(backend))
                .mine(&table1(), 2);
            assert_eq!(pinned.sorted(), auto.sorted(), "{backend:?}");
        }
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(ParallelPltMiner::default().mine(&[], 1).is_empty());
        assert!(ParallelPltMiner::default().mine(&table1(), 10).is_empty());
    }

    #[test]
    fn larger_synthetic_agreement() {
        // A few thousand structured transactions; parallel result must be
        // identical to sequential.
        let db: Vec<Vec<Item>> = (0..4_000u32)
            .map(|i| {
                let mut t = vec![i % 11, 11 + (i % 7), 18 + (i % 5)];
                if i % 3 == 0 {
                    t.push(23 + (i % 2));
                }
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let seq = ConditionalMiner::default().mine(&db, 100);
        let par = ParallelPltMiner::default().mine(&db, 100);
        assert_eq!(par.sorted(), seq.sorted());
        assert!(!par.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Parallel mining agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..14, 1..7),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = ParallelPltMiner::default().mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
