//! DIC — Dynamic Itemset Counting (Brin, Motwani, Ullman & Tsur,
//! SIGMOD'97; the paper's reference on reducing Apriori's pass count).
//!
//! DIC treats the database as a circular stream processed in blocks of
//! `M` transactions and starts counting an itemset *as soon as* all of its
//! immediate subsets look frequent, instead of waiting for a pass
//! boundary. Using the original's metaphor:
//!
//! * a **dashed** itemset is still being counted (has not yet seen the
//!   whole database since its counter started);
//! * a **solid** itemset has seen every transaction exactly once;
//! * an itemset is **suspected frequent** ("box") once its running count
//!   reaches the threshold — suspicion can only be confirmed, never
//!   retracted, because counts only grow.
//!
//! After each block, itemsets that just became suspected trigger the
//! creation of counters for their extensions whose immediate subsets are
//! all suspected. The algorithm stops when no dashed counters remain; an
//! itemset is frequent iff its (exact, complete) count meets the
//! threshold.

use plt_core::hash::{FxHashMap, FxHashSet};
use plt_core::item::{sorted_subset, Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};

/// The DIC miner.
#[derive(Debug, Clone, Copy)]
pub struct DicMiner {
    /// Block size `M` — how many transactions are processed between
    /// candidate-introduction points (the original used ~15000; scale to
    /// your database).
    pub block_size: usize,
}

impl Default for DicMiner {
    fn default() -> Self {
        DicMiner { block_size: 100 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Counter {
    count: Support,
    /// Transactions this counter has yet to see before going solid.
    remaining: usize,
}

impl Miner for DicMiner {
    fn name(&self) -> &'static str {
        "dic"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        assert!(self.block_size >= 1);
        let n = transactions.len();
        let mut result = MiningResult::new(min_support, n as u64);
        if n == 0 {
            return result;
        }

        // Counters start with every 1-itemset, dashed.
        let mut counters: FxHashMap<Vec<Item>, Counter> = FxHashMap::default();
        {
            let mut items: FxHashSet<Item> = FxHashSet::default();
            for t in transactions {
                items.extend(t.iter().copied());
            }
            for item in items {
                counters.insert(
                    vec![item],
                    Counter {
                        count: 0,
                        remaining: n,
                    },
                );
            }
        }
        let mut suspected: FxHashSet<Vec<Item>> = FxHashSet::default();
        let mut suspected_items: Vec<Item> = Vec::new();
        let mut pos = 0usize;

        loop {
            let dashed: Vec<Vec<Item>> = counters
                .iter()
                .filter(|(_, c)| c.remaining > 0)
                .map(|(k, _)| k.clone())
                .collect();
            if dashed.is_empty() {
                break;
            }
            // Process one block: each dashed counter sees the next
            // min(remaining, M) transactions of the circular stream.
            for key in &dashed {
                let c = counters.get_mut(key).expect("dashed key exists");
                let take = c.remaining.min(self.block_size);
                for i in 0..take {
                    if sorted_subset(key, &transactions[(pos + i) % n]) {
                        c.count += 1;
                    }
                }
                c.remaining -= take;
            }
            pos = (pos + self.block_size) % n;

            // Promotion + candidate introduction.
            let mut newly: Vec<Vec<Item>> = counters
                .iter()
                .filter(|(k, c)| c.count >= min_support && !suspected.contains(*k))
                .map(|(k, _)| k.clone())
                .collect();
            newly.sort();
            while let Some(x) = newly.pop() {
                if !suspected.insert(x.clone()) {
                    continue;
                }
                if x.len() == 1 {
                    suspected_items.push(x[0]);
                }
                // Try every single-item extension whose subsets are all
                // suspected.
                for &j in &suspected_items {
                    if x.binary_search(&j).is_ok() {
                        continue;
                    }
                    let mut y = x.clone();
                    let at = y.partition_point(|&v| v < j);
                    y.insert(at, j);
                    if counters.contains_key(&y) {
                        continue;
                    }
                    let all_suspected = (0..y.len()).all(|drop| {
                        let sub: Vec<Item> = y
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != drop)
                            .map(|(_, &v)| v)
                            .collect();
                        suspected.contains(&sub)
                    });
                    if all_suspected {
                        counters.insert(
                            y,
                            Counter {
                                count: 0,
                                remaining: n,
                            },
                        );
                    }
                }
            }
        }

        for (items, c) in counters {
            debug_assert_eq!(c.remaining, 0);
            if c.count >= min_support {
                result.insert(Itemset::from_sorted(items), c.count);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_for_various_block_sizes() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for m in [1, 2, 3, 5, 6, 100] {
            let got = DicMiner { block_size: m }.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "block size {m}");
        }
    }

    #[test]
    fn block_not_dividing_database_length() {
        // n = 6, M = 4: counters go solid mid-block; the partial-take path
        // must count exactly n transactions per counter.
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = DicMiner { block_size: 4 }.mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(DicMiner::default().mine(&[], 1).is_empty());
        assert!(DicMiner::default().mine(&table1(), 10).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// DIC agrees with brute force across random databases and block
        /// sizes.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
            block in 1usize..12,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = DicMiner { block_size: block }.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
