//! Error type shared across the PLT crates.

use std::fmt;

/// Errors that can arise while building or querying a PLT.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PltError {
    /// A transaction contained a duplicate item. Transactions are sets; the
    /// construction routines reject duplicates rather than silently deduping
    /// so that support counts cannot be skewed by malformed input.
    DuplicateItem {
        /// The offending item.
        item: u32,
    },
    /// A position vector contained a zero position. Positions are rank
    /// deltas of a strictly increasing rank sequence, so every position is
    /// at least 1.
    ZeroPosition,
    /// An empty position vector or itemset was supplied where a non-empty
    /// one is required.
    Empty,
    /// A rank sequence was not strictly increasing.
    UnsortedRanks,
    /// An item was not part of the ranking (i.e. it is infrequent or was
    /// never seen during construction).
    UnknownItem {
        /// The item that has no rank.
        item: u32,
    },
    /// A minimum support of zero was supplied. Support thresholds are
    /// absolute counts and must be at least 1.
    ZeroMinSupport,
    /// A removal referenced a transaction whose vector is not stored (it
    /// was never inserted, or already removed).
    NotPresent,
    /// A query expression was rejected by the query layer (plt-query):
    /// a lexical/syntax error, a semantic error (wrong field for the
    /// query kind, unknown item), or a resource limit (overlong
    /// expression, predicate nesting too deep). The message names the
    /// offending token or limit.
    Query {
        /// Human-readable description of the rejection.
        message: String,
    },
    /// A mining result violated the anti-monotone property: a subset of a
    /// frequent itemset was missing, or had a smaller support than its
    /// superset. Produced by [`MiningResult::check_anti_monotone`]
    /// (`crate::miner::MiningResult::check_anti_monotone`); a correct miner
    /// never produces such a family.
    AntiMonotoneViolation {
        /// The offending subset.
        subset: crate::item::Itemset,
        /// The frequent superset whose subset is missing or undercounted.
        superset: crate::item::Itemset,
        /// Support of the subset, `None` when it is missing entirely.
        subset_support: Option<u64>,
        /// Support of the superset.
        superset_support: u64,
    },
}

impl fmt::Display for PltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PltError::DuplicateItem { item } => {
                write!(f, "transaction contains duplicate item {item}")
            }
            PltError::ZeroPosition => write!(f, "position vectors must hold positions >= 1"),
            PltError::Empty => write!(f, "empty itemset or position vector"),
            PltError::UnsortedRanks => write!(f, "rank sequence must be strictly increasing"),
            PltError::UnknownItem { item } => write!(f, "item {item} has no rank"),
            PltError::ZeroMinSupport => write!(f, "minimum support must be at least 1"),
            PltError::NotPresent => write!(f, "transaction vector is not stored in the PLT"),
            PltError::Query { message } => write!(f, "query: {message}"),
            PltError::AntiMonotoneViolation {
                subset,
                superset,
                subset_support,
                superset_support,
            } => match subset_support {
                None => write!(f, "{subset} missing though superset {superset} is frequent"),
                Some(s) => write!(
                    f,
                    "{subset} has support {s} < superset {superset}'s {superset_support}"
                ),
            },
        }
    }
}

impl std::error::Error for PltError {}

/// Convenience alias used throughout the PLT crates.
pub type Result<T> = std::result::Result<T, PltError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(PltError::DuplicateItem { item: 7 }
            .to_string()
            .contains('7'));
        assert!(PltError::UnknownItem { item: 9 }.to_string().contains('9'));
        assert!(!PltError::ZeroPosition.to_string().is_empty());
        assert!(!PltError::Empty.to_string().is_empty());
        assert!(!PltError::UnsortedRanks.to_string().is_empty());
        assert!(!PltError::ZeroMinSupport.to_string().is_empty());
        let q = PltError::Query {
            message: "unexpected token `}`".into(),
        };
        assert!(q.to_string().starts_with("query: "));
        assert!(q.to_string().contains("unexpected token"));
        let missing = PltError::AntiMonotoneViolation {
            subset: crate::item::Itemset::from([1u32, 2]),
            superset: crate::item::Itemset::from([1u32, 2, 3]),
            subset_support: None,
            superset_support: 4,
        };
        assert!(missing.to_string().contains("missing"));
        let undercount = PltError::AntiMonotoneViolation {
            subset: crate::item::Itemset::from([1u32]),
            superset: crate::item::Itemset::from([1u32, 2]),
            subset_support: Some(2),
            superset_support: 4,
        };
        assert!(undercount.to_string().contains("support 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: E) {}
        assert_err(PltError::Empty);
    }
}
