//! Web-access-pattern mining — the paper's second motivating domain
//! ("association rules have been applied to other domains such as medical
//! data and web page access habits").
//!
//! Models browsing sessions over a site: each session is the set of pages
//! visited. The workload is Quest-style sparse data (sessions draw from a
//! pool of correlated "navigation patterns") with pages given readable
//! names. Mining finds the page bundles users visit together; the
//! compressed PLT demonstrates the storage story for a large click log.
//!
//! ```text
//! cargo run --example web_clicks
//! ```

use plt::compress::CompressedPlt;
use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::Miner;
use plt::data::{DbStats, ItemCatalog, QuestConfig, QuestGenerator, TransactionDb};
use plt::ConditionalMiner;

/// Names the page ids of the synthetic site: sections × article index.
fn page_name(id: u32) -> String {
    const SECTIONS: &[&str] = &["home", "news", "sports", "tech", "shop", "forum"];
    format!("/{}/{}", SECTIONS[(id as usize) % SECTIONS.len()], id / 6)
}

fn main() {
    // ~40k page-views across 4000 sessions over a 300-page site.
    let sessions = QuestGenerator::new(QuestConfig {
        num_transactions: 4_000,
        avg_transaction_len: 9.0,
        avg_pattern_len: 4.0,
        num_patterns: 120,
        num_items: 300,
        seed: 0xc1_1c_c5,
        ..Default::default()
    })
    .generate();
    println!("click log: {}", DbStats::of(&sessions));

    let min_support = sessions.absolute_support(0.01);
    let result = ConditionalMiner::default().mine(sessions.transactions(), min_support);
    println!(
        "\npage bundles visited together by >= 1% of sessions: {}",
        result.len()
    );

    let mut catalog = ItemCatalog::new();
    for &page in &TransactionDb::from_sorted(sessions.transactions().to_vec()).items() {
        catalog.intern(&page_name(page));
    }

    let mut bundles: Vec<_> = result.iter().filter(|(s, _)| s.len() >= 2).collect();
    bundles.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    println!("\ntop multi-page bundles:");
    for (itemset, support) in bundles.iter().take(10) {
        let pages: Vec<String> = itemset.items().iter().map(|&p| page_name(p)).collect();
        println!(
            "  {}  sessions={} ({:.1}%)",
            pages.join(" + "),
            support,
            100.0 * *support as f64 / sessions.len() as f64
        );
    }

    // Storage story: the click log as a compressed, indexed PLT.
    let plt = construct(
        sessions.transactions(),
        min_support,
        ConstructOptions::conditional(),
    )
    .expect("well-formed sessions");
    let raw_items: usize = sessions.transactions().iter().map(Vec::len).sum();
    let report = CompressedPlt::report(&plt, raw_items);
    println!(
        "\nstorage: raw log {} KiB -> PLT table {} KiB -> compressed {} KiB \
         (ratio vs raw: {:.2})",
        report.raw_db_bytes / 1024,
        report.plt_table_bytes / 1024,
        report.compressed_data_bytes / 1024,
        report.ratio_vs_raw(),
    );
}
