//! Cross-structure invariant suite for the streaming substrate: the
//! intended deployment drives a [`LossyCounter`] (whole-stream sketch)
//! and a [`SlidingWindow`] (exact recent past) from the same arriving
//! transactions. These properties interleave inserts, window slides, and
//! reranks arbitrarily and check, *at every step*:
//!
//! * Lossy Counting error: estimates never exceed truth and undercount
//!   by at most ⌈εN⌉ — untracked items included (estimate 0 forces their
//!   true count under the bound, i.e. no frequent item is ever dropped);
//! * the window never exceeds its capacity, and at the end its exact
//!   mining result equals batch-mining the retained suffix.

use std::collections::BTreeMap;

use plt_core::miner::{BruteForceMiner, Miner};
use plt_core::ranking::RankPolicy;
use plt_stream::{LossyCounter, SlidingWindow};
use proptest::prelude::*;

/// Folds one transaction into an exact count table.
fn count_into(truth: &mut BTreeMap<u32, u64>, row: &[u32]) {
    for &item in row {
        *truth.entry(item).or_insert(0) += 1;
    }
}

/// Checks the Lossy Counting bound against exact counts; `Err` carries
/// the violating item with both counts.
fn lossy_bound_holds(
    lc: &LossyCounter,
    truth: &BTreeMap<u32, u64>,
    step: usize,
) -> Result<(), String> {
    let bound = (lc.epsilon() * lc.observed() as f64).ceil() as u64;
    for (&item, &count) in truth {
        let est = lc.estimate(item);
        if est > count {
            return Err(format!(
                "step {step}: overcount on item {item}: estimate {est} > true {count}"
            ));
        }
        if count - est > bound {
            return Err(format!(
                "step {step}: item {item} undercounts by {} > εN = {bound} \
                 (true {count}, estimate {est}, N {})",
                count - est,
                lc.observed()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary interleavings of lossy observations, window pushes
    /// (slides once full), and reranks: the εN bound holds after every
    /// single operation, and the window stays exact.
    #[test]
    fn prop_lossy_error_bounded_under_arbitrary_interleavings(
        ops in proptest::collection::vec(0u8..4, 20..120),
        rows in proptest::collection::vec(
            proptest::collection::btree_set(0u32..14, 1..6),
            20..120,
        ),
        eps_thousandths in 5u64..120,
        capacity in 3usize..12,
    ) {
        let epsilon = eps_thousandths as f64 / 1000.0;
        let rows: Vec<Vec<u32>> = rows
            .into_iter()
            .map(|t| t.into_iter().collect())
            .collect();

        let mut lc = LossyCounter::new(epsilon);
        let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
        let warm: Vec<Vec<u32>> = rows.iter().take(capacity).cloned().collect();
        let mut window =
            SlidingWindow::new(capacity, 2, RankPolicy::Lexicographic, &warm).unwrap();
        let mut pushed = warm;

        for (step, &op) in ops.iter().enumerate() {
            let row = rows[step % rows.len()].clone();
            match op {
                // Arrival feeding both structures — the common path.
                0 => {
                    lc.observe_transaction(&row);
                    count_into(&mut truth, &row);
                    window.push(row.clone()).unwrap();
                    pushed.push(row);
                }
                // Window slide without a lossy observation.
                1 => {
                    window.push(row.clone()).unwrap();
                    pushed.push(row);
                }
                // Vocabulary refresh mid-stream.
                2 => window.rerank().unwrap(),
                // Lossy observation without a window push.
                _ => {
                    lc.observe_transaction(&row);
                    count_into(&mut truth, &row);
                }
            }
            prop_assert!(
                window.len() <= capacity,
                "step {}: window holds {} > capacity {}",
                step, window.len(), capacity
            );
            let verdict = lossy_bound_holds(&lc, &truth, step);
            prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
        }

        // End state: the window still mines its contents exactly.
        window.rerank().unwrap();
        let lo = pushed.len().saturating_sub(capacity);
        let expect = BruteForceMiner.mine(&pushed[lo..], 2);
        prop_assert_eq!(window.mine().sorted(), expect.sorted());
    }

    /// A heavy hitter stays reportable no matter how slides and reranks
    /// interleave with its arrivals: `frequent(s)` has no false
    /// negatives (Manku & Motwani guarantee 1).
    #[test]
    fn prop_heavy_hitter_never_lost(
        filler in proptest::collection::vec(1u32..50, 50..400),
        eps_thousandths in 5u64..50,
    ) {
        let epsilon = eps_thousandths as f64 / 1000.0;
        let mut lc = LossyCounter::new(epsilon);
        let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
        // Item 0 rides along with every third filler item: a guaranteed
        // ≥ 25% heavy hitter in a stream of otherwise scattered items.
        for (i, &f) in filler.iter().enumerate() {
            let row: Vec<u32> = if i % 3 == 0 { vec![0, f] } else { vec![f] };
            lc.observe_transaction(&row);
            count_into(&mut truth, &row);
        }
        let n = lc.observed() as f64;
        let s = 0.2;
        let reported: Vec<u32> = lc.frequent(s).into_iter().map(|(i, _)| i).collect();
        for (&item, &count) in &truth {
            if count as f64 >= s * n {
                prop_assert!(
                    reported.contains(&item),
                    "missed {}x-frequent item {} (N = {}, s = {})",
                    count, item, n, s
                );
            }
        }
        prop_assert!(reported.contains(&0), "heavy hitter 0 dropped");
    }
}
