//! Base vocabulary: items, ranks, supports and itemsets.
//!
//! The paper's problem statement (§2): `I = {i_1 … i_n}` is a set of
//! distinct items, a transaction is a subset of `I`, and an itemset `X ⊆ I`
//! has *support* equal to the number of transactions that contain it
//! (the paper works with absolute counts, not ratios — see its footnote 1).

/// An item identifier as seen by the caller. Items are opaque `u32`s; any
/// denser or sparser external vocabulary should be mapped onto `u32` by the
/// data layer (`plt-data` does this for named items).
pub type Item = u32;

/// A 1-based rank assigned to each *frequent* item by the
/// [`Rank` function](crate::ranking::ItemRanking). Rank 0 is reserved for
/// the tree root (`Rank(null) = 0` in the paper).
pub type Rank = u32;

/// Absolute support count: the number of transactions containing an itemset.
pub type Support = u64;

/// An itemset: a set of items stored as a **sorted, duplicate-free**
/// `Vec<Item>`.
///
/// Itemsets are kept in item order (not rank order) at the API boundary so
/// that results are stable across [`RankPolicy`](crate::ranking::RankPolicy)
/// choices; the miners convert to rank space internally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset(Vec<Item>);

impl Itemset {
    /// Creates an itemset from arbitrary items, sorting and deduplicating.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset(items)
    }

    /// Creates an itemset from a slice already known to be sorted and
    /// duplicate-free. Debug builds verify the invariant.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "Itemset::from_sorted requires strictly increasing items"
        );
        Itemset(items)
    }

    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset(Vec::new())
    }

    /// Number of items (the paper's `k` in "k-itemset").
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if this is the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.0
    }

    /// Consumes the itemset, returning its sorted items.
    pub fn into_items(self) -> Vec<Item> {
        self.0
    }

    /// Set-containment test (`self ⊆ other`), linear in `self.len() +
    /// other.len()` thanks to the sorted representation.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        sorted_subset(&self.0, &other.0)
    }

    /// True if `item` is a member.
    pub fn contains(&self, item: Item) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Union of two itemsets.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Itemset(out)
    }

    /// Intersection of two itemsets.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Itemset(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() {
            if j >= other.0.len() || self.0[i] < other.0[j] {
                out.push(self.0[i]);
                i += 1;
            } else if self.0[i] > other.0[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        Itemset(out)
    }

    /// Returns a new itemset with `item` inserted (no-op if present).
    pub fn with(&self, item: Item) -> Itemset {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                Itemset(v)
            }
        }
    }

    /// Iterates over all non-empty proper and improper subsets of the
    /// itemset. Exponential; intended for tests and the brute-force
    /// reference miner only.
    pub fn subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        let n = self.0.len();
        assert!(n < 64, "subset enumeration limited to < 64 items");
        (1u64..(1u64 << n)).map(move |mask| {
            let items = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| self.0[i])
                .collect();
            Itemset(items)
        })
    }
}

impl From<Vec<Item>> for Itemset {
    fn from(items: Vec<Item>) -> Self {
        Itemset::new(items)
    }
}

impl From<&[Item]> for Itemset {
    fn from(items: &[Item]) -> Self {
        Itemset::new(items.to_vec())
    }
}

impl<const N: usize> From<[Item; N]> for Itemset {
    fn from(items: [Item; N]) -> Self {
        Itemset::new(items.to_vec())
    }
}

impl std::fmt::Display for Itemset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl IntoIterator for Itemset {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Containment test between two sorted duplicate-free slices
/// (`needle ⊆ haystack`). Shared by [`Itemset`] and the miners, which work
/// on raw sorted slices in their hot paths.
pub fn sorted_subset(needle: &[Item], haystack: &[Item]) -> bool {
    let mut j = 0;
    for &x in needle {
        loop {
            if j == haystack.len() {
                return false;
            }
            match haystack[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = Itemset::new(vec![3, 1, 2, 3, 1]);
        assert_eq!(s.items(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_behaviour() {
        let e = Itemset::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset_of(&Itemset::from([1, 2])));
    }

    #[test]
    fn subset_relation() {
        let small = Itemset::from([1, 3]);
        let big = Itemset::from([1, 2, 3, 4]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(big.is_subset_of(&big));
        assert!(!Itemset::from([5]).is_subset_of(&big));
    }

    #[test]
    fn union_intersection_difference() {
        let a = Itemset::from([1, 2, 4]);
        let b = Itemset::from([2, 3, 4, 5]);
        assert_eq!(a.union(&b).items(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).items(), &[2, 4]);
        assert_eq!(a.difference(&b).items(), &[1]);
        assert_eq!(b.difference(&a).items(), &[3, 5]);
    }

    #[test]
    fn with_inserts_in_order() {
        let a = Itemset::from([1, 4]);
        assert_eq!(a.with(2).items(), &[1, 2, 4]);
        assert_eq!(a.with(4).items(), &[1, 4]);
        assert_eq!(a.with(9).items(), &[1, 4, 9]);
        assert_eq!(a.with(0).items(), &[0, 1, 4]);
    }

    #[test]
    fn subsets_enumerates_the_power_set_minus_empty() {
        let a = Itemset::from([1, 2, 3]);
        let subs: Vec<Itemset> = a.subsets().collect();
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&Itemset::from([1])));
        assert!(subs.contains(&Itemset::from([1, 3])));
        assert!(subs.contains(&Itemset::from([1, 2, 3])));
        assert!(!subs.contains(&Itemset::empty()));
    }

    #[test]
    fn contains_member() {
        let a = Itemset::from([2, 5, 9]);
        assert!(a.contains(5));
        assert!(!a.contains(4));
    }

    #[test]
    fn display_formats_as_braced_list() {
        assert_eq!(Itemset::from([3, 1]).to_string(), "{1,3}");
        assert_eq!(Itemset::empty().to_string(), "{}");
    }

    #[test]
    fn sorted_subset_edge_cases() {
        assert!(sorted_subset(&[], &[]));
        assert!(sorted_subset(&[], &[1]));
        assert!(!sorted_subset(&[1], &[]));
        assert!(sorted_subset(&[2, 4], &[1, 2, 3, 4, 5]));
        assert!(!sorted_subset(&[2, 6], &[1, 2, 3, 4, 5]));
    }

    #[test]
    fn from_sorted_accepts_valid_input() {
        let s = Itemset::from_sorted(vec![1, 5, 7]);
        assert_eq!(s.items(), &[1, 5, 7]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_sorted_rejects_unsorted_in_debug() {
        let _ = Itemset::from_sorted(vec![5, 1]);
    }
}
