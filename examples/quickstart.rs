//! Quickstart: the paper's own walkthrough, end to end.
//!
//! Builds the PLT for Table 1 of the paper, mines it with both of the
//! paper's approaches, and prints the frequent itemsets and the
//! association rules they induce.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::Miner;
use plt::rules::{generate_rules, sort_rules, RuleConfig};
use plt::{ConditionalMiner, TopDownMiner};

fn main() {
    // Table 1 of the paper: items A..F as 0..5.
    let db: Vec<Vec<u32>> = vec![
        vec![0, 1, 2],    // ABC
        vec![0, 1, 2],    // ABC
        vec![0, 1, 2, 3], // ABCD
        vec![0, 1, 3, 4], // ABDE
        vec![1, 2, 3],    // BCD
        vec![2, 3, 5],    // CDF
    ];
    let letter = |i: u32| (b'A' + i as u8) as char;
    let min_support = 2;

    // The structure itself: partitions of position vectors.
    let plt =
        construct(&db, min_support, ConstructOptions::conditional()).expect("well-formed database");
    println!("PLT for Table 1 (min_sup = {min_support}):");
    println!("{}", plt.render_matrices());

    // Mine with the conditional (pattern-growth) approach...
    let conditional = ConditionalMiner::default().mine(&db, min_support);
    // ...and confirm the top-down approach agrees.
    let topdown = TopDownMiner::default().mine(&db, min_support);
    assert_eq!(conditional.sorted(), topdown.sorted());

    println!("frequent itemsets ({}):", conditional.len());
    for (itemset, support) in conditional.sorted() {
        let names: String = itemset.items().iter().map(|&i| letter(i)).collect();
        println!("  {{{names}}}  support={support}");
    }

    // Association rules at 70% confidence.
    let mut rules = generate_rules(
        &conditional,
        RuleConfig {
            min_confidence: 0.7,
        },
    );
    sort_rules(&mut rules);
    println!("\nrules (confidence >= 0.7):");
    for rule in &rules {
        let fmt = |s: &plt::Itemset| -> String { s.items().iter().map(|&i| letter(i)).collect() };
        println!(
            "  {{{}}} => {{{}}}  conf={:.2} lift={:.2} sup={}",
            fmt(&rule.antecedent),
            fmt(&rule.consequent),
            rule.confidence,
            rule.lift,
            rule.support,
        );
    }
}
