//! Read-only memory mapping without external crates.
//!
//! Segment files are immutable once published (the manifest only ever
//! references sealed files), so a private read-only mapping is safe: no
//! writer exists to mutate the pages under us. On Unix we call `mmap(2)`
//! directly through the C ABI — the two constants used are part of the
//! Linux/POSIX ABI and stable. Elsewhere (or for empty files, which
//! `mmap` rejects) we fall back to reading the file into a `Vec`, which
//! keeps every caller correct, just not lazily paged.

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only view of an entire file: mmap-backed where possible,
/// heap-backed otherwise. Deref to `&[u8]` via [`Mmap::as_slice`].
pub struct Mmap {
    backing: Backing,
}

enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// The mapping is read-only and never mutated; sharing the raw pointer
// across threads is the whole point of serving lookups from segments.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Maps `path` read-only. Empty files produce an empty heap view
    /// (zero-length `mmap` is an `EINVAL` on Linux).
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        Self::map_file(&file, len)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            // MAP_FAILED: fall back to a heap copy rather than error out —
            // some filesystems (and seccomp profiles) refuse mmap.
            return Self::read_owned(file, len);
        }
        Ok(Mmap {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn map_file(file: &File, len: usize) -> io::Result<Mmap> {
        Self::read_owned(file, len)
    }

    fn read_owned(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Mmap {
            backing: Backing::Owned(buf),
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(v) => v.as_slice(),
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the view is an actual memory mapping (vs a heap copy) —
    /// exposed so tests can assert the fast path is taken on Linux.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("plt-mmap-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("basic", b"hello segment");
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), b"hello segment");
        #[cfg(target_os = "linux")]
        assert!(map.is_mapped(), "expected a real mapping on linux");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_empty_view() {
        let path = tmp("empty", b"");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/plt-store-mmap")).is_err());
    }

    #[test]
    fn view_survives_file_deletion() {
        // POSIX semantics: the mapping holds the inode alive.
        let path = tmp("unlink", b"still here");
        let map = Mmap::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.as_slice(), b"still here");
    }
}
