//! X4 — top-down vs conditional on dense short transactions, plus the
//! canonical-vs-naive propagation ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::miner::Miner;
use plt_core::topdown::{all_subset_supports, all_subset_supports_naive};
use plt_core::{ConditionalMiner, TopDownMiner};

fn bench(c: &mut Criterion) {
    let n = 600usize;
    let db = datasets::dense(n, 12);
    for rel in [0.5, 0.1, 0.01] {
        let min_sup = ((rel * n as f64).ceil() as u64).max(1);
        let mut group = c.benchmark_group(format!("x4/minsup_{:.0}pct", rel * 100.0));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("conditional"), &db, |b, db| {
            b.iter(|| ConditionalMiner::default().mine(db, min_sup))
        });
        group.bench_with_input(BenchmarkId::from_parameter("top-down"), &db, |b, db| {
            b.iter(|| TopDownMiner::default().mine(db, min_sup))
        });
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter("propagation-canonical"),
            &plt,
            |b, plt| b.iter(|| all_subset_supports(plt)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter("propagation-naive"),
            &plt,
            |b, plt| b.iter(|| all_subset_supports_naive(plt)),
        );
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
