//! Helpers shared by the differential integration tests: the complete
//! frequent family as a comparable map, plus a human-replayable diff for
//! reporting disagreements (the vendored proptest shim does not shrink,
//! so failures must carry everything needed to replay them by hand).

#![allow(dead_code)]

use std::collections::BTreeMap;

use plt::core::miner::MiningResult;

/// The complete frequent family as an itemset → support map.
pub fn support_map(result: &MiningResult) -> BTreeMap<Vec<u32>, u64> {
    result
        .iter()
        .map(|(itemset, support)| (itemset.items().to_vec(), support))
        .collect()
}

/// Human-replayable diff between two support maps: what is missing, what
/// is extra, and where supports differ (first few entries of each).
pub fn diff_support_maps(
    reference: &BTreeMap<Vec<u32>, u64>,
    got: &BTreeMap<Vec<u32>, u64>,
) -> Option<String> {
    let mut lines = Vec::new();
    for (itemset, &sup) in reference {
        match got.get(itemset) {
            None => lines.push(format!("  missing {itemset:?} (support {sup})")),
            Some(&g) if g != sup => {
                lines.push(format!("  support mismatch {itemset:?}: {sup} vs {g}"))
            }
            Some(_) => {}
        }
    }
    for (itemset, &sup) in got {
        if !reference.contains_key(itemset) {
            lines.push(format!("  extra {itemset:?} (support {sup})"));
        }
    }
    if lines.is_empty() {
        return None;
    }
    let shown = lines.len().min(8);
    let mut msg = lines[..shown].join("\n");
    if lines.len() > shown {
        msg.push_str(&format!("\n  ... ({} more)", lines.len() - shown));
    }
    Some(msg)
}
