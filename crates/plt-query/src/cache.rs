//! Generation-aware LRU plan cache.
//!
//! Keys are the **printed normalized AST** ([`Query::cache_key`]
//! (crate::ast::Query::cache_key)), so two expressions that differ only
//! in whitespace, keyword case, item order, or commutative AND/OR
//! operand order hit the same entry. Each entry remembers the snapshot
//! generation it was planned against; a lookup under a different
//! generation evicts the entry and reports a miss — snapshot swaps
//! invalidate lazily, with no publish-side hook.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::plan::Plan;

/// Monotonic counters exposed on the `stats` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Entries dropped because their generation no longer matched.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    plan: Plan,
    generation: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    clock: u64,
    counters: CacheCounters,
}

/// A thread-safe LRU cache of compiled plans.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up the plan for `key` under `generation`. A stored plan
    /// from another generation is removed and counted as an
    /// invalidation (and a miss).
    pub fn lookup(&self, key: &str, generation: u64) -> Option<Plan> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                entry.last_used = tick;
                let plan = entry.plan;
                inner.counters.hits += 1;
                Some(plan)
            }
            Some(_) => {
                inner.map.remove(key);
                inner.counters.invalidations += 1;
                inner.counters.misses += 1;
                None
            }
            None => {
                inner.counters.misses += 1;
                None
            }
        }
    }

    /// Stores a plan, evicting the least-recently-used entry at
    /// capacity.
    pub fn insert(&self, key: String, generation: u64, plan: Plan) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.counters.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                generation,
                last_used: tick,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction/invalidation counters.
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().unwrap().counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PhysOp;

    fn plan(op: PhysOp, cost: f64) -> Plan {
        Plan { op, cost }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup("TOP 5", 1).is_none());
        cache.insert("TOP 5".into(), 1, plan(PhysOp::ExtTraverse, 10.0));
        let got = cache.lookup("TOP 5", 1).unwrap();
        assert_eq!(got.op, PhysOp::ExtTraverse);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn generation_mismatch_invalidates() {
        let cache = PlanCache::new(4);
        cache.insert("TOP 5".into(), 1, plan(PhysOp::ExtTraverse, 10.0));
        // New generation: the stale plan is dropped, not served.
        assert!(cache.lookup("TOP 5", 2).is_none());
        assert_eq!(cache.len(), 0);
        let c = cache.counters();
        assert_eq!(c.invalidations, 1);
        assert_eq!(c.misses, 1);
        // Re-planned under the new generation, it hits again.
        cache.insert("TOP 5".into(), 2, plan(PhysOp::FullScan, 5.0));
        assert!(cache.lookup("TOP 5", 2).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, plan(PhysOp::FullScan, 1.0));
        cache.insert("b".into(), 1, plan(PhysOp::FullScan, 2.0));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup("a", 1).is_some());
        cache.insert("c".into(), 1, plan(PhysOp::FullScan, 3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", 1).is_some());
        assert!(cache.lookup("b", 1).is_none());
        assert!(cache.lookup("c", 1).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, plan(PhysOp::FullScan, 1.0));
        cache.insert("b".into(), 1, plan(PhysOp::FullScan, 2.0));
        cache.insert("a".into(), 1, plan(PhysOp::FullScan, 9.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.lookup("a", 1).unwrap().cost, 9.0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), 1, plan(PhysOp::FullScan, 1.0));
        assert!(cache.lookup("a", 1).is_none());
        assert!(cache.is_empty());
    }
}
