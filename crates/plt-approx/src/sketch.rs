//! The itemset-frequency indicator sketch.
//!
//! A uniform Bernoulli sample of the serving window, held as raw
//! transactions, answers `SUPPORT OF {X}` by counting the indicator
//! `1[X ⊆ t]` over the sample and scaling to the window. Hoeffding's
//! inequality on the mean of `m` i.i.d. indicators gives
//!
//! ```text
//! Pr[ |p̂ − p| > ε ] ≤ 2·exp(−2·m·ε²)
//! ```
//!
//! so `m = ⌈ln(2/δ) / (2ε²)⌉` samples suffice for an additive error of
//! `ε·N` with probability `1 − δ` — the classic sample-complexity bound
//! for ±1-valued queries (cf. Price, arXiv:1410.2640, where the same
//! `ln(1/δ)/ε²` shape is the baseline that sketch lower bounds are
//! measured against). Crucially `m` is independent of the window size:
//! the sketch's memory is `O(ln(1/δ)/ε²)` transactions while the exact
//! snapshot holds all `N`.
//!
//! Two refinements:
//!
//! * **Sampling is deterministic.** Whether arrival `seq` is kept is a
//!   hash of `(seq, seed)`, so replaying a stream reproduces the sketch
//!   bit-for-bit — the property tests pin exact outcomes forever.
//! * **Singletons ride the lossy counter.** Until the window first
//!   evicts, the sketch also feeds a [`LossyCounter`], whose singleton
//!   estimates carry a *deterministic* undercount bound of `ε` times
//!   the item occurrences observed (no δ). A singleton answers from
//!   the counter only while that bound is at least as tight as the
//!   sample's Hoeffding bound (on long transactions it needn't be).
//!   Eviction invalidates the counter (it cannot forget), so the
//!   sketch falls back to the sample for singletons from then on.

use std::collections::VecDeque;

use plt_core::item::{Item, Support};
use plt_query::SupportSketch;
use plt_stream::LossyCounter;

/// Sketch parameters. `epsilon`/`delta` state the guarantee: answers are
/// within `±⌈ε·N⌉` of the true window support with probability `1 − δ`
/// (per query, over the sampling randomness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Additive error, as a fraction of the window size. In `(0, 1]`.
    pub epsilon: f64,
    /// Failure probability. In `(0, 1)`.
    pub delta: f64,
    /// Window capacity the sketch mirrors (FIFO, like the serving
    /// pipeline's `ShardConfig::capacity`).
    pub capacity: usize,
    /// Sampling seed; fixed seed ⇒ fully deterministic sketch.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        SketchConfig {
            epsilon: 0.05,
            delta: 0.01,
            capacity: 100_000,
            seed: 0x5ee_d5ee,
        }
    }
}

impl SketchConfig {
    /// The Hoeffding sample size `⌈ln(2/δ) / (2ε²)⌉` for this ε/δ.
    pub fn target_samples(&self) -> usize {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }
}

/// The sketch. Feed every window arrival through [`observe`]
/// (`IndicatorSketch::observe`); it mirrors the pipeline's FIFO
/// eviction internally, so no eviction callback is needed.
#[derive(Debug, Clone)]
pub struct IndicatorSketch {
    config: SketchConfig,
    /// Arrivals observed over the sketch lifetime.
    seq: u64,
    /// Kept `(seq, transaction)` pairs, oldest first.
    kept: VecDeque<(u64, Vec<Item>)>,
    /// Bytes held by kept transactions (item payload only).
    kept_bytes: usize,
    /// `keep(seq) ⇔ hash(seq, seed) < threshold`; `u64::MAX` ⇒ keep all.
    threshold: u64,
    /// Singleton fast path, valid until the first eviction.
    lossy: LossyCounter,
    lossy_valid: bool,
}

/// One answer: the support estimate and its stated absolute bound.
pub type Estimate = (Support, Support);

impl IndicatorSketch {
    pub fn new(config: SketchConfig) -> IndicatorSketch {
        assert!(
            config.epsilon > 0.0 && config.epsilon <= 1.0,
            "epsilon must be in (0, 1]"
        );
        assert!(
            config.delta > 0.0 && config.delta < 1.0,
            "delta must be in (0, 1)"
        );
        assert!(config.capacity >= 1, "capacity must be at least 1");
        let m = config.target_samples();
        // Keep rate m/capacity, mapped onto the hash's u64 range.
        let threshold = if m >= config.capacity {
            u64::MAX
        } else {
            ((m as f64 / config.capacity as f64) * u64::MAX as f64) as u64
        };
        IndicatorSketch {
            lossy: LossyCounter::new(config.epsilon.min(0.5)),
            config,
            seq: 0,
            kept: VecDeque::new(),
            kept_bytes: 0,
            threshold,
            lossy_valid: true,
        }
    }

    /// Observes one window arrival. Unsorted or duplicated items are
    /// normalized first; the pipeline's already-canonical transactions
    /// skip the copy.
    pub fn observe(&mut self, transaction: &[Item]) {
        if !transaction.windows(2).all(|w| w[0] < w[1]) {
            let mut t = transaction.to_vec();
            t.sort_unstable();
            t.dedup();
            return self.observe_sorted(&t);
        }
        self.observe_sorted(transaction)
    }

    fn observe_sorted(&mut self, transaction: &[Item]) {
        self.seq += 1;
        if self.keeps(self.seq) {
            self.kept_bytes += std::mem::size_of_val(transaction);
            self.kept.push_back((self.seq, transaction.to_vec()));
        }
        if self.lossy_valid {
            self.lossy.observe_transaction(transaction);
        }
        // Mirror the pipeline's FIFO: seqs ≤ seq − capacity have left
        // the window. The lossy counter cannot forget, so the first
        // eviction retires the singleton fast path.
        if self.seq > self.config.capacity as u64 {
            self.lossy_valid = false;
            let horizon = self.seq - self.config.capacity as u64;
            while self.kept.front().is_some_and(|(s, _)| *s <= horizon) {
                let (_, t) = self.kept.pop_front().expect("front checked");
                self.kept_bytes -= std::mem::size_of_val(t.as_slice());
            }
        }
    }

    /// Whether arrival `seq` is sampled: splitmix64 of `(seq, seed)`
    /// against the keep threshold.
    fn keeps(&self, seq: u64) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        let mut z = seq ^ self.config.seed;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) < self.threshold
    }

    /// Current window size: arrivals still inside the FIFO.
    pub fn window_len(&self) -> u64 {
        self.seq.min(self.config.capacity as u64)
    }

    /// Transactions currently held by the sample.
    pub fn kept_len(&self) -> usize {
        self.kept.len()
    }

    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Whether the sample IS the window (keep rate saturated at 1) —
    /// estimates are then exact and the stated bound is 0.
    pub fn is_exhaustive(&self) -> bool {
        self.threshold == u64::MAX
    }

    /// The ε realized by the *actual* sample size via Hoeffding
    /// (`sqrt(ln(2/δ) / 2m)`), which the stated bound is computed from:
    /// with a healthy sample it sits at or under the configured ε.
    pub fn realized_epsilon(&self) -> f64 {
        if self.is_exhaustive() {
            return 0.0;
        }
        let m = self.kept.len().max(1) as f64;
        ((2.0 / self.config.delta).ln() / (2.0 * m)).sqrt()
    }

    fn estimate_impl(&self, items: &[Item]) -> Estimate {
        let n = self.window_len();
        if n == 0 || items.is_empty() {
            return (0, 0);
        }
        // Singleton fast path: deterministic lossy-counting bound,
        // honest only before the first eviction. The counter's stream
        // is item *occurrences* — a k-item transaction advances it k
        // times — so the εN undercount guarantee is stated over
        // `observed()`, not the transaction count. On long transactions
        // that bound can exceed the sample's Hoeffding bound, so the
        // sketch answers with whichever path states the tighter one.
        let lossy = (items.len() == 1 && self.lossy_valid).then(|| {
            let est = self.lossy.estimate(items[0]);
            let bound =
                ((self.lossy.epsilon() * self.lossy.observed() as f64).ceil() as Support).min(n);
            (est, bound)
        });
        let sample_bound = if self.is_exhaustive() {
            0
        } else {
            ((self.realized_epsilon() * n as f64).ceil() as Support).min(n)
        };
        if let Some((est, bound)) = lossy {
            if bound <= sample_bound {
                return (est, bound);
            }
        }
        let mut probe = items.to_vec();
        probe.sort_unstable();
        probe.dedup();
        let matches = self
            .kept
            .iter()
            .filter(|(_, t)| is_subset(&probe, t))
            .count() as u64;
        if self.is_exhaustive() {
            // The sample is the whole window: exact, bound 0.
            return (matches, 0);
        }
        let m = self.kept.len() as u64;
        if m == 0 {
            // Nothing sampled yet: the vacuous answer.
            return (0, n);
        }
        let est = ((matches as f64 / m as f64) * n as f64).round() as Support;
        (est.min(n), sample_bound)
    }
}

/// `a ⊆ b` for sorted, deduplicated slices (linear merge).
fn is_subset(a: &[Item], b: &[Item]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl SupportSketch for IndicatorSketch {
    fn estimate(&self, items: &[Item]) -> Estimate {
        self.estimate_impl(items)
    }

    fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    fn cost(&self) -> usize {
        self.kept.len()
    }

    fn memory_bytes(&self) -> usize {
        self.kept_bytes
            + self.kept.len() * std::mem::size_of::<(u64, Vec<Item>)>()
            + self.lossy.tracked() * std::mem::size_of::<(Item, (u64, u64))>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(i: u64) -> Vec<Item> {
        let mut t = vec![(i % 5) as Item, 5 + (i % 3) as Item];
        if i.is_multiple_of(2) {
            t.push(8);
        }
        t.sort_unstable();
        t
    }

    fn exact_support(window: &[Vec<Item>], items: &[Item]) -> Support {
        window.iter().filter(|t| is_subset(items, t)).count() as Support
    }

    #[test]
    fn subset_check_is_correct() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn exhaustive_sketches_are_exact_with_zero_bound() {
        // target_samples >= capacity ⇒ the sketch keeps everything.
        let mut sk = IndicatorSketch::new(SketchConfig {
            epsilon: 0.05,
            delta: 0.01,
            capacity: 200,
            seed: 1,
        });
        assert!(sk.is_exhaustive());
        let mut window: VecDeque<Vec<Item>> = VecDeque::new();
        for i in 0..500 {
            let t = txn(i);
            sk.observe(&t);
            window.push_back(t);
            if window.len() > 200 {
                window.pop_front();
            }
        }
        let w: Vec<Vec<Item>> = window.iter().cloned().collect();
        for probe in [vec![0], vec![8], vec![0, 8], vec![5, 8], vec![99]] {
            let (est, bound) = sk.estimate_impl(&probe);
            assert_eq!(bound, 0, "{probe:?}");
            assert_eq!(est, exact_support(&w, &probe), "{probe:?}");
        }
    }

    #[test]
    fn sampled_sketch_stays_within_its_stated_bound() {
        // δ = 1e-6 makes the per-query failure probability negligible;
        // the fixed seed then pins the outcome deterministically.
        let mut sk = IndicatorSketch::new(SketchConfig {
            epsilon: 0.1,
            delta: 1e-6,
            capacity: 20_000,
            seed: 42,
        });
        assert!(!sk.is_exhaustive());
        let mut window: VecDeque<Vec<Item>> = VecDeque::new();
        for i in 0..30_000u64 {
            let t = txn(i);
            sk.observe(&t);
            window.push_back(t);
            if window.len() > 20_000 {
                window.pop_front();
            }
        }
        assert_eq!(sk.window_len(), 20_000);
        assert!(sk.kept_len() < 10_000, "sample should be much smaller");
        let w: Vec<Vec<Item>> = window.iter().cloned().collect();
        for probe in [vec![0], vec![0, 8], vec![5, 8], vec![0, 5, 8], vec![99]] {
            let (est, bound) = sk.estimate_impl(&probe);
            let exact = exact_support(&w, &probe);
            assert!(
                est.abs_diff(exact) <= bound,
                "{probe:?}: est {est} exact {exact} bound {bound}"
            );
            assert!(bound <= (0.1f64 * 20_000.0).ceil() as u64 + 1);
        }
    }

    #[test]
    fn lossy_singleton_path_retires_on_first_eviction() {
        let cfg = SketchConfig {
            epsilon: 0.1,
            delta: 0.01,
            capacity: 50,
            seed: 7,
        };
        let mut sk = IndicatorSketch::new(cfg);
        for i in 0..50 {
            sk.observe(&txn(i));
        }
        assert!(sk.lossy_valid);
        let (est, bound) = sk.estimate_impl(&[8]);
        // Lossy estimates never exceed the truth; undercount ≤ εN.
        assert!(est <= 25 && est + bound >= 25, "est {est} bound {bound}");
        sk.observe(&txn(50)); // first eviction
        assert!(!sk.lossy_valid);
    }

    #[test]
    fn eviction_mirrors_the_fifo_window() {
        let mut sk = IndicatorSketch::new(SketchConfig {
            epsilon: 0.3,
            delta: 0.1,
            capacity: 10,
            seed: 9,
        });
        for i in 0..1000 {
            sk.observe(&txn(i));
            assert!(sk.kept_len() as u64 <= sk.window_len());
            if let Some((s, _)) = sk.kept.front() {
                assert!(*s > sk.seq.saturating_sub(10), "stale seq {s}");
            }
        }
    }

    #[test]
    fn replays_are_bit_identical() {
        let cfg = SketchConfig {
            epsilon: 0.1,
            delta: 0.01,
            capacity: 500,
            seed: 11,
        };
        let (mut a, mut b) = (IndicatorSketch::new(cfg), IndicatorSketch::new(cfg));
        for i in 0..2000 {
            a.observe(&txn(i));
            b.observe(&txn(i));
        }
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.estimate_impl(&[0, 8]), b.estimate_impl(&[0, 8]));
    }

    #[test]
    fn memory_stays_bounded_by_the_target() {
        let cfg = SketchConfig {
            epsilon: 0.1,
            delta: 0.01,
            capacity: 100_000,
            seed: 3,
        };
        let mut sk = IndicatorSketch::new(cfg);
        for i in 0..200_000u64 {
            sk.observe(&txn(i));
        }
        // Binomial concentration: kept ≈ m_target, never ≫ it.
        assert!(sk.kept_len() < 3 * cfg.target_samples());
        assert!(sk.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_is_rejected() {
        IndicatorSketch::new(SketchConfig {
            epsilon: 0.0,
            ..SketchConfig::default()
        });
    }

    #[test]
    fn empty_and_unseen_probes() {
        let mut sk = IndicatorSketch::new(SketchConfig::default());
        assert_eq!(sk.estimate_impl(&[1]), (0, 0)); // empty window
        sk.observe(&[1, 2]);
        assert_eq!(sk.estimate_impl(&[]), (0, 0));
        let (est, _) = sk.estimate_impl(&[7, 9]);
        assert_eq!(est, 0);
    }
}
