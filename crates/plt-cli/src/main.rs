//! Thin process wrapper around the testable [`plt_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(msg) = plt_cli::run(&argv, &mut out) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
