//! The extended quantitative experiments X1..X8 (see `DESIGN.md` §3).
//!
//! Each experiment is a pure function from a [`Scale`] to a [`Table`];
//! the `experiments` binary prints them and `EXPERIMENTS.md` records a
//! run. The Criterion benches in `benches/` measure the same code paths
//! with statistical rigour; these functions exist to produce the
//! evaluation-section-style tables in one shot.

use std::time::Duration;

use plt_baselines::apriori::AprioriMiner;
use plt_baselines::fpgrowth::{build_fp_tree, FpGrowthMiner};
use plt_baselines::{AisMiner, DicMiner, EclatMiner, HMineMiner, PartitionMiner, TidRepr};
use plt_compress::CompressedPlt;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::item::{Item, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_core::posvec::PositionVector;
use plt_core::ranking::{ItemRanking, RankPolicy};
use plt_core::subset::{NaiveChecker, SubsetChecker};
use plt_core::topdown::{all_subset_supports, all_subset_supports_naive};
use plt_core::{CondEngine, ConditionalMiner, HybridMiner, TopDownMiner};
use plt_data::vertical::VerticalDb;
use plt_data::TransactionDb;
use plt_parallel::{par_construct, run_with_threads, ParallelEclatMiner, ParallelPltMiner};
use plt_shard::{Delta, ShardConfig, ShardedPipeline};

use crate::{datasets, fmt_duration, time_best, Table};

/// Dispatches a PLT-level miner through the `Mine` trait object without
/// importing `Mine` into this module (its `mine` method would collide with
/// `Miner::mine` on the concrete miner types used elsewhere here).
fn mine_plt(miner: &dyn plt_core::Mine, plt: &plt_core::Plt) -> MiningResult {
    plt_core::Mine::mine_plt(miner, plt)
}

/// Workload scale: `Quick` finishes in seconds (CI / laptops); `Full`
/// approximates evaluation-section sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale run.
    Quick,
    /// Minutes-scale run.
    Full,
}

impl Scale {
    fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    fn runs(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3,
        }
    }
}

/// The miner roster shared by the sweep experiments.
fn roster() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(ConditionalMiner::default()),
        Box::new(ParallelPltMiner::default()),
        Box::new(AprioriMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
        Box::new(EclatMiner::with_diffsets()),
        Box::new(HMineMiner),
        Box::new(AisMiner),
        Box::new(PartitionMiner::default()),
        Box::new(DicMiner { block_size: 500 }),
    ]
}

/// Runs every miner over one `(db, min_sup)` cell, appending a row per
/// miner and asserting that all miners agree on the number of frequent
/// itemsets (a live correctness check inside the benchmark).
fn sweep_cell(
    table: &mut Table,
    label: &str,
    db: &[Vec<Item>],
    min_sup: Support,
    runs: usize,
    miners: &[Box<dyn Miner>],
) {
    let mut expected_len: Option<usize> = None;
    for miner in miners {
        let (result, elapsed) = time_best(runs, || miner.mine(db, min_sup));
        match expected_len {
            None => expected_len = Some(result.len()),
            Some(n) => assert_eq!(
                n,
                result.len(),
                "{} disagrees on |F| at {label}",
                miner.name()
            ),
        }
        table.row(vec![
            label.to_string(),
            miner.name().to_string(),
            result.len().to_string(),
            fmt_duration(elapsed),
        ]);
    }
}

/// X1 — runtime vs minimum support on sparse Quest data.
pub fn x1_sparse_sweep(scale: Scale) -> Table {
    let n = scale.pick(2_000, 10_000);
    let db = datasets::sparse(n);
    let mut table = Table::new(
        format!("X1: sparse sweep, T10.I4.D{n}"),
        &["min_sup", "miner", "|F|", "time"],
    );
    for rel in [0.02, 0.01, 0.005, 0.0025] {
        let min_sup = ((rel * n as f64).ceil() as Support).max(1);
        sweep_cell(
            &mut table,
            &format!("{:.2}%", rel * 100.0),
            &db,
            min_sup,
            scale.runs(),
            &roster(),
        );
    }
    table
}

/// X2 — runtime vs minimum support on dense data.
pub fn x2_dense_sweep(scale: Scale) -> Table {
    let n = scale.pick(600, 3_000);
    let db = datasets::dense(n, 16);
    let mut table = Table::new(
        format!("X2: dense sweep, DENSE16.D{n}"),
        &["min_sup", "miner", "|F|", "time"],
    );
    for rel in [0.9, 0.7, 0.5, 0.3] {
        let min_sup = ((rel * n as f64).ceil() as Support).max(1);
        sweep_cell(
            &mut table,
            &format!("{:.0}%", rel * 100.0),
            &db,
            min_sup,
            scale.runs(),
            &roster(),
        );
    }
    table
}

/// X3 — scalability with database size at fixed 1% support.
pub fn x3_scalability(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[500, 1_000, 2_000, 4_000],
        Scale::Full => &[2_000, 4_000, 8_000, 16_000, 32_000],
    };
    let mut table = Table::new(
        "X3: scalability, T10.I4, min_sup = 1%",
        &["|D|", "miner", "|F|", "time"],
    );
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(ConditionalMiner::default()),
        Box::new(ParallelPltMiner::default()),
        Box::new(AprioriMiner::default()),
        Box::new(FpGrowthMiner),
    ];
    for &n in sizes {
        let db = datasets::sparse(n);
        let min_sup = ((0.01 * n as f64).ceil() as Support).max(1);
        sweep_cell(
            &mut table,
            &n.to_string(),
            &db,
            min_sup,
            scale.runs(),
            &miners,
        );
    }
    table
}

/// X4 — top-down vs conditional crossover on dense short transactions,
/// including the canonical-vs-naive propagation ablation.
pub fn x4_topdown_crossover(scale: Scale) -> Table {
    let n = scale.pick(600, 2_000);
    let db = datasets::dense(n, 12);
    let mut table = Table::new(
        format!("X4: top-down crossover, DENSE12.D{n}"),
        &["min_sup", "method", "|F|", "time"],
    );
    for rel in [0.5, 0.2, 0.1, 0.05, 0.01] {
        let min_sup = ((rel * n as f64).ceil() as Support).max(1);
        let label = format!("{:.0}%", rel * 100.0);
        let runs = scale.runs();

        let (cond, t_cond) = time_best(runs, || ConditionalMiner::default().mine(&db, min_sup));
        table.row(vec![
            label.clone(),
            "conditional".into(),
            cond.len().to_string(),
            fmt_duration(t_cond),
        ]);

        let (top, t_top) = time_best(runs, || TopDownMiner::default().mine(&db, min_sup));
        assert_eq!(cond.len(), top.len(), "miners disagree at {label}");
        table.row(vec![
            label.clone(),
            "top-down".into(),
            top.len().to_string(),
            fmt_duration(t_top),
        ]);

        let (hybrid, t_hybrid) = time_best(runs, || HybridMiner::default().mine(&db, min_sup));
        assert_eq!(cond.len(), hybrid.len(), "hybrid disagrees at {label}");
        table.row(vec![
            label.clone(),
            "hybrid".into(),
            hybrid.len().to_string(),
            fmt_duration(t_hybrid),
        ]);

        // Ablation: canonical DP propagation vs naive per-vector subset
        // enumeration (same all-subsets table, different cost).
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).unwrap();
        let (_, t_canon) = time_best(runs, || all_subset_supports(&plt));
        let (_, t_naive) = time_best(runs, || all_subset_supports_naive(&plt));
        table.row(vec![
            label.clone(),
            "  propagation:canonical".into(),
            "-".into(),
            fmt_duration(t_canon),
        ]);
        table.row(vec![
            label,
            "  propagation:naive".into(),
            "-".into(),
            fmt_duration(t_naive),
        ]);
    }
    table
}

/// X5 — parallel speedup vs thread count.
pub fn x5_parallel(scale: Scale) -> Table {
    let n = scale.pick(5_000, 50_000);
    let db = datasets::sparse(n);
    let min_sup = ((0.005 * n as f64).ceil() as Support).max(1);
    let mut table = Table::new(
        format!("X5: parallel speedup, T10.I4.D{n}, min_sup = 0.5%"),
        &["threads", "miner", "|F|", "time", "speedup"],
    );
    let thread_counts = crate::thread_sweep();
    type MineFn = Box<dyn Fn(&[Vec<Item>], Support) -> MiningResult + Sync>;
    let miners: Vec<(&str, MineFn)> = vec![
        (
            "plt-parallel",
            Box::new(|db: &[Vec<Item>], ms| ParallelPltMiner::default().mine(db, ms)),
        ),
        (
            "eclat-parallel",
            Box::new(|db: &[Vec<Item>], ms| ParallelEclatMiner.mine(db, ms)),
        ),
    ];
    for (name, mine) in &miners {
        let mut base: Option<Duration> = None;
        for &threads in &thread_counts {
            let (result, elapsed) =
                run_with_threads(threads, || time_best(scale.runs(), || mine(&db, min_sup)));
            let baseline = *base.get_or_insert(elapsed);
            table.row(vec![
                threads.to_string(),
                name.to_string(),
                result.len().to_string(),
                fmt_duration(elapsed),
                format!("{:.2}x", baseline.as_secs_f64() / elapsed.as_secs_f64()),
            ]);
        }
    }
    table
}

/// X6 — structure sizes: raw DB vs PLT table vs compressed PLT vs FP-tree.
pub fn x6_compression(scale: Scale) -> Table {
    let mut table = Table::new("X6: structure sizes", &["dataset", "metric", "value"]);
    let workloads: Vec<(String, Vec<Vec<Item>>, Support)> = vec![
        {
            let n = scale.pick(2_000, 10_000);
            let db = datasets::sparse(n);
            let ms = ((0.01 * n as f64).ceil() as Support).max(1);
            (format!("T10.I4.D{n}"), db, ms)
        },
        {
            let n = scale.pick(1_000, 5_000);
            let db = datasets::dense(n, 16);
            let ms = ((0.3 * n as f64).ceil() as Support).max(1);
            (format!("DENSE16.D{n}"), db, ms)
        },
    ];
    for (name, db, min_sup) in workloads {
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).unwrap();
        let raw_items: usize = db.iter().map(Vec::len).sum();
        let report = CompressedPlt::report(&plt, raw_items);
        let (fp, _) = build_fp_tree(&db, min_sup);
        for (metric, value) in [
            ("raw DB bytes", report.raw_db_bytes.to_string()),
            ("PLT table bytes", report.plt_table_bytes.to_string()),
            (
                "compressed PLT bytes",
                report.compressed_data_bytes.to_string(),
            ),
            ("index bytes", report.compressed_index_bytes.to_string()),
            ("ratio vs raw", format!("{:.3}", report.ratio_vs_raw())),
            ("ratio vs table", format!("{:.3}", report.ratio_vs_table())),
            ("distinct PLT vectors", report.num_vectors.to_string()),
            ("FP-tree nodes", fp.node_count().to_string()),
        ] {
            table.row(vec![name.clone(), metric.to_string(), value]);
        }
    }
    table
}

/// X7 — subset-checking micro-benchmark: PLT position-vector probes vs a
/// plain itemset hash set, on a real Apriori prune workload.
pub fn x7_subset_check(scale: Scale) -> Table {
    let n = scale.pick(2_000, 10_000);
    let db = datasets::baskets(n);
    let min_sup = ((0.02 * n as f64).ceil() as Support).max(1);
    // The frequent family and a candidate prune workload: every frequent
    // k-itemset joined with every frequent item (a superset of Apriori's
    // real candidate set).
    let result = FpGrowthMiner.mine(&db, min_sup);
    let ranking = ItemRanking::scan(&db, min_sup, RankPolicy::Lexicographic);
    let mut candidates: Vec<Vec<Item>> = Vec::new();
    let singletons: Vec<Item> = result.of_size(1).map(|(s, _)| s.items()[0]).collect();
    for (itemset, _) in result.iter() {
        for &x in &singletons {
            if !itemset.contains(x) {
                let mut c = itemset.items().to_vec();
                c.push(x);
                c.sort_unstable();
                candidates.push(c);
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    let naive = NaiveChecker::from_result(&result);
    let plt_checker = SubsetChecker::from_result(&result, &ranking);
    let candidate_vectors: Vec<PositionVector> = candidates
        .iter()
        .map(|c| {
            let ranks: Vec<_> = c.iter().map(|&i| ranking.rank(i).unwrap()).collect();
            PositionVector::from_ranks(&ranks).unwrap()
        })
        .collect();

    let runs = scale.runs().max(3);
    let (kept_naive, t_naive) = time_best(runs, || {
        candidates
            .iter()
            .filter(|c| naive.all_level_down_subsets_present(c))
            .count()
    });
    let (kept_plt, t_plt) = time_best(runs, || {
        candidate_vectors
            .iter()
            .filter(|v| plt_checker.all_level_down_subsets_present(v))
            .count()
    });
    assert_eq!(kept_naive, kept_plt, "prune verdicts must agree");

    let mut table = Table::new(
        format!(
            "X7: subset checking, {} candidates over {} frequent itemsets",
            candidates.len(),
            result.len()
        ),
        &["checker", "kept", "time"],
    );
    table.row(vec![
        "naive hash set".into(),
        kept_naive.to_string(),
        fmt_duration(t_naive),
    ]);
    table.row(vec![
        "plt position vectors".into(),
        kept_plt.to_string(),
        fmt_duration(t_plt),
    ]);
    table
}

/// X8 — construction cost: PLT (sequential and parallel) vs FP-tree vs
/// vertical layout.
pub fn x8_construction(scale: Scale) -> Table {
    let n = scale.pick(5_000, 50_000);
    let db = datasets::sparse(n);
    let min_sup = ((0.01 * n as f64).ceil() as Support).max(1);
    let runs = scale.runs();
    let mut table = Table::new(
        format!("X8: construction cost, T10.I4.D{n}, min_sup = 1%"),
        &["structure", "size", "time"],
    );

    let (plt, t) = time_best(runs, || {
        construct(&db, min_sup, ConstructOptions::conditional()).unwrap()
    });
    table.row(vec![
        "PLT (sequential)".into(),
        format!("{} vectors", plt.num_vectors()),
        fmt_duration(t),
    ]);

    let (pplt, t) = time_best(runs, || {
        par_construct(&db, min_sup, ConstructOptions::conditional()).unwrap()
    });
    assert_eq!(pplt.num_vectors(), plt.num_vectors());
    table.row(vec![
        "PLT (parallel)".into(),
        format!("{} vectors", pplt.num_vectors()),
        fmt_duration(t),
    ]);

    let (plt_prefix, t) = time_best(runs, || {
        construct(&db, min_sup, ConstructOptions::top_down()).unwrap()
    });
    table.row(vec![
        "PLT (with prefixes)".into(),
        format!("{} vectors", plt_prefix.num_vectors()),
        fmt_duration(t),
    ]);

    let ((fp, _), t) = time_best(runs, || build_fp_tree(&db, min_sup));
    table.row(vec![
        "FP-tree".into(),
        format!("{} nodes", fp.node_count()),
        fmt_duration(t),
    ]);

    let tdb = TransactionDb::from_sorted(db.clone());
    let (v, t) = time_best(runs, || VerticalDb::from_horizontal(&tdb));
    table.row(vec![
        "vertical layout".into(),
        format!("{} columns", v.num_items()),
        fmt_duration(t),
    ]);

    table
}

/// X10 — power-law (retail/click-log) sweep: skew exponent vs runtime.
/// Skewed popularity stresses the frequent-item projection: the steeper
/// the head, the shorter the projected transactions.
pub fn x10_zipf_sweep(scale: Scale) -> Table {
    let n = scale.pick(2_000, 10_000);
    let mut table = Table::new(
        format!("X10: power-law sweep, ZIPF.D{n}, min_sup = 1%"),
        &["exponent", "miner", "|F|", "time"],
    );
    let min_sup = ((0.01 * n as f64).ceil() as Support).max(1);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(ConditionalMiner::default()),
        Box::new(HybridMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
        Box::new(HMineMiner),
    ];
    for exponent in [0.8, 1.1, 1.5] {
        let db = datasets::zipf(n, exponent);
        sweep_cell(
            &mut table,
            &format!("{exponent:.1}"),
            &db,
            min_sup,
            scale.runs(),
            &miners,
        );
    }
    table
}

/// X9 — rank-policy ablation: the same conditional miner under the three
/// item orders, reporting both structure shape (distinct vectors, average
/// position value — the compression driver) and mining time.
pub fn x9_rank_policy(scale: Scale) -> Table {
    let mut table = Table::new(
        "X9: rank-policy ablation (conditional miner)",
        &["dataset", "policy", "vectors", "avg pos", "|F|", "time"],
    );
    let workloads: Vec<(String, Vec<Vec<Item>>, Support)> = vec![
        {
            let n = scale.pick(2_000, 10_000);
            (
                format!("T10.I4.D{n}"),
                datasets::sparse(n),
                ((0.01 * n as f64).ceil() as Support).max(1),
            )
        },
        {
            let n = scale.pick(800, 3_000);
            (
                format!("DENSE16.D{n}"),
                datasets::dense(n, 16),
                ((0.4 * n as f64).ceil() as Support).max(1),
            )
        },
    ];
    for (name, db, min_sup) in workloads {
        let mut expected: Option<usize> = None;
        for (label, policy) in [
            ("lexicographic", RankPolicy::Lexicographic),
            ("freq-descending", RankPolicy::FrequencyDescending),
            ("freq-ascending", RankPolicy::FrequencyAscending),
        ] {
            let plt = construct(
                &db,
                min_sup,
                ConstructOptions {
                    rank_policy: policy,
                    with_prefixes: false,
                },
            )
            .expect("well-formed database");
            let (pos_sum, pos_count) = plt.iter().fold((0u64, 0u64), |(s, c), (v, _)| {
                (
                    s + v.positions().iter().map(|&p| p as u64).sum::<u64>(),
                    c + v.len() as u64,
                )
            });
            let avg_pos = pos_sum as f64 / pos_count.max(1) as f64;
            let miner = ConditionalMiner::with_policy(policy);
            let (result, elapsed) = time_best(scale.runs(), || miner.mine(&db, min_sup));
            match expected {
                None => expected = Some(result.len()),
                Some(n) => assert_eq!(n, result.len(), "policy changed the answer"),
            }
            table.row(vec![
                name.clone(),
                label.to_string(),
                plt.num_vectors().to_string(),
                format!("{avg_pos:.2}"),
                result.len().to_string(),
                fmt_duration(elapsed),
            ]);
        }
    }
    table
}

/// One X12 measurement: both conditional-mining engines over a dataset
/// cell, sequential and parallel, plus the arena engine's own counters
/// and the construction-phase breakdown for the cell's PLT.
#[derive(Debug, Clone)]
pub struct EngineCell {
    /// Dataset label, e.g. `DENSE16.D600`.
    pub dataset: String,
    /// Absolute minimum support used.
    pub min_sup: Support,
    /// Number of frequent itemsets (identical across engines — asserted).
    pub itemsets: usize,
    /// Sequential map-engine wall time.
    pub map_secs: f64,
    /// Sequential arena-engine wall time.
    pub arena_secs: f64,
    /// Parallel map-engine wall time.
    pub par_map_secs: f64,
    /// Parallel arena-engine wall time.
    pub par_arena_secs: f64,
    /// Item-ranking scan phase of construction (one untimed-loop pass).
    pub construct_rank_secs: f64,
    /// Vector-encoding phase of construction.
    pub construct_encode_secs: f64,
    /// Arena engine counters from one instrumented sequential run.
    pub arena_stats: plt_core::MineStats,
}

impl EngineCell {
    /// Sequential speedup of arena over map.
    pub fn speedup(&self) -> f64 {
        self.map_secs / self.arena_secs
    }
}

/// X12 — conditional-engine comparison: the legacy map layout vs the flat
/// arena layout, on sparse, dense, and power-law data. Raw cells; see
/// [`x12_engine_compare`] for the rendered table and [`x12_json`] for the
/// machine-readable record.
pub fn x12_engine_cells(scale: Scale) -> Vec<EngineCell> {
    let runs = scale.runs().max(2);
    let mut workloads: Vec<(String, Vec<Vec<Item>>, Support)> = Vec::new();
    {
        let n = scale.pick(2_000, 10_000);
        let db = datasets::sparse(n);
        for rel in [0.01, 0.005] {
            let ms = ((rel * n as f64).ceil() as Support).max(1);
            workloads.push((format!("T10.I4.D{n}@{:.1}%", rel * 100.0), db.clone(), ms));
        }
    }
    {
        let n = scale.pick(600, 3_000);
        let db = datasets::dense(n, 16);
        for rel in [0.5, 0.3] {
            let ms = ((rel * n as f64).ceil() as Support).max(1);
            workloads.push((format!("DENSE16.D{n}@{:.0}%", rel * 100.0), db.clone(), ms));
        }
    }
    {
        let n = scale.pick(2_000, 10_000);
        let db = datasets::zipf(n, 1.1);
        let ms = ((0.01 * n as f64).ceil() as Support).max(1);
        workloads.push((format!("ZIPF1.1.D{n}@1.0%"), db, ms));
    }

    let mut cells = Vec::new();
    for (dataset, db, min_sup) in workloads {
        // Construct once and time `mine_plt` so the cells isolate the
        // engines — construction is byte-identical either way. One
        // instrumented pass records the construction-phase breakdown and
        // the arena engine's counters; the timed runs below stay
        // recorder-free so the wall-clock numbers are undisturbed.
        let mut recorder = plt_obs::MetricsRecorder::new();
        let plt = {
            let mut obs = plt_obs::Obs::new(&mut recorder);
            let plt = plt_core::construct::construct_obs(
                &db,
                min_sup,
                ConstructOptions::conditional(),
                &mut obs,
            )
            .unwrap();
            let _ = plt_core::Mine::mine(&ConditionalMiner::default(), &plt, &mut obs);
            plt
        };
        let arena_stats = plt_core::MineStats {
            vectors_folded: recorder.counter_value("arena.vectors_folded"),
            dedup_hits: recorder.counter_value("arena.dedup_hits"),
            copy_throughs: recorder.counter_value("arena.copy_throughs"),
            single_path_shortcuts: recorder.counter_value("arena.single_path_shortcuts"),
            bytes_peak: recorder.gauge_value("arena.bytes_peak"),
            simd_calls: recorder.counter_value("kernel.simd_calls"),
            scalar_calls: recorder.counter_value("kernel.scalar_calls"),
            bitmap_intersections: recorder.counter_value("kernel.bitmap_intersections"),
        };
        let construct_rank_secs = recorder.span_total_ns("construct/rank") as f64 / 1e9;
        let construct_encode_secs = recorder.span_total_ns("construct/encode") as f64 / 1e9;
        // The engines dispatch through `Box<dyn Mine>` — the cells vary
        // only in which trait object they time.
        let map_miner: Box<dyn plt_core::Mine> =
            Box::new(ConditionalMiner::with_engine(CondEngine::Map));
        let arena_miner: Box<dyn plt_core::Mine> = Box::new(ConditionalMiner::default());
        let par_map: Box<dyn plt_core::Mine> =
            Box::new(ParallelPltMiner::with_engine(CondEngine::Map));
        let par_arena: Box<dyn plt_core::Mine> = Box::new(ParallelPltMiner::default());
        let (map_result, t_map) = time_best(runs, || mine_plt(map_miner.as_ref(), &plt));
        let (arena_result, t_arena) = time_best(runs, || mine_plt(arena_miner.as_ref(), &plt));
        assert_eq!(
            map_result.sorted(),
            arena_result.sorted(),
            "engines disagree on {dataset}"
        );
        let (pm_result, t_par_map) = time_best(runs, || mine_plt(par_map.as_ref(), &plt));
        let (pa_result, t_par_arena) = time_best(runs, || mine_plt(par_arena.as_ref(), &plt));
        assert_eq!(pm_result.len(), map_result.len(), "parallel map |F|");
        assert_eq!(pa_result.len(), map_result.len(), "parallel arena |F|");
        cells.push(EngineCell {
            dataset,
            min_sup,
            itemsets: map_result.len(),
            map_secs: t_map.as_secs_f64(),
            arena_secs: t_arena.as_secs_f64(),
            par_map_secs: t_par_map.as_secs_f64(),
            par_arena_secs: t_par_arena.as_secs_f64(),
            construct_rank_secs,
            construct_encode_secs,
            arena_stats,
        });
    }
    cells
}

/// X12 rendered as a table.
pub fn x12_table(cells: &[EngineCell]) -> Table {
    let mut table = Table::new(
        "X12: conditional engine, map vs arena",
        &[
            "dataset",
            "|F|",
            "map",
            "arena",
            "speedup",
            "par map",
            "par arena",
        ],
    );
    for c in cells {
        table.row(vec![
            c.dataset.clone(),
            c.itemsets.to_string(),
            fmt_duration(Duration::from_secs_f64(c.map_secs)),
            fmt_duration(Duration::from_secs_f64(c.arena_secs)),
            format!("{:.2}x", c.speedup()),
            fmt_duration(Duration::from_secs_f64(c.par_map_secs)),
            fmt_duration(Duration::from_secs_f64(c.par_arena_secs)),
        ]);
    }
    table
}

/// X12 — conditional-engine comparison (table form, for the binary).
pub fn x12_engine_compare(scale: Scale) -> Table {
    x12_table(&x12_engine_cells(scale))
}

/// Machine-readable record of an X12 run (the committed
/// `BENCH_conditional.json`). Hand-rolled JSON — the workspace is
/// dependency-free by design.
pub fn x12_json(cells: &[EngineCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x12_engine_compare\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"min_sup\": {}, \"itemsets\": {}, \
             \"map_secs\": {:.6}, \"arena_secs\": {:.6}, \"speedup\": {:.3}, \
             \"par_map_secs\": {:.6}, \"par_arena_secs\": {:.6}, \
             \"construct_rank_secs\": {:.6}, \"construct_encode_secs\": {:.6}, \
             \"arena\": {{\"vectors_folded\": {}, \"dedup_hits\": {}, \
             \"copy_throughs\": {}, \"single_path_shortcuts\": {}, \
             \"bytes_peak\": {}}}}}{}\n",
            c.dataset,
            c.min_sup,
            c.itemsets,
            c.map_secs,
            c.arena_secs,
            c.speedup(),
            c.par_map_secs,
            c.par_arena_secs,
            c.construct_rank_secs,
            c.construct_encode_secs,
            c.arena_stats.vectors_folded,
            c.arena_stats.dedup_hits,
            c.arena_stats.copy_throughs,
            c.arena_stats.single_path_shortcuts,
            c.arena_stats.bytes_peak,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One X13 measurement: an incremental rebuild of a delta through the
/// sharded pipeline vs a full re-mine from scratch, on one dataset and
/// one delta placement mode.
#[derive(Debug, Clone)]
pub struct IncrementalCell {
    /// Dataset label, e.g. `T10.I4.D2000`.
    pub dataset: String,
    /// Where the delta's items land: `localized` (a single rank band —
    /// the paper's partition criteria at their best) or `uniform`
    /// (spread across the whole rank space — the honest worst case).
    pub mode: &'static str,
    /// Base database size.
    pub transactions: usize,
    /// Delta size (1% of the base).
    pub delta_size: usize,
    /// Shard count of the pipeline.
    pub shards: usize,
    /// How many shards the delta dirtied.
    pub dirty_shards: usize,
    /// Frequent itemsets after the delta (identical across paths — asserted).
    pub itemsets: usize,
    /// Best wall time of `apply(delta)` on a freshly built pipeline.
    pub incremental_secs: f64,
    /// Best wall time of a full re-mine over base + delta.
    pub full_secs: f64,
}

impl IncrementalCell {
    /// How much faster the incremental rebuild is than mining from scratch.
    pub fn speedup(&self) -> f64 {
        self.full_secs / self.incremental_secs
    }
}

/// A deterministic synthetic delta transaction: `width` items taken from
/// `items` starting at `start` with the given `stride`, wrapped modulo
/// `modulo`, deduplicated. No RNG — X13 cells are exactly reproducible.
fn delta_txn(
    items: &[Item],
    start: usize,
    stride: usize,
    width: usize,
    modulo: usize,
) -> Vec<Item> {
    let mut t: Vec<Item> = (0..width)
        .map(|k| items[(start + k * stride) % modulo])
        .collect();
    t.sort_unstable();
    t.dedup();
    t
}

/// X13 — incremental vs full rebuild at a 1% delta. Raw cells; see
/// [`x13_table`] for the rendered table and [`x13_json`] for the
/// machine-readable record (the committed `BENCH_incremental.json`).
///
/// Delta transactions use only items that are already frequent in the
/// base, so the vocabulary never drifts and the cells measure the
/// dirty-shard path rather than the re-rank fallback. Each cell is run
/// in two placements: `localized` deltas fall into one rank band (few
/// dirty shards — where the ≥5× win lives), `uniform` deltas stride the
/// whole rank space (most shards dirty — the honest lower bound).
pub fn x13_incremental_cells(scale: Scale) -> Vec<IncrementalCell> {
    let runs = scale.runs().max(2);
    let shards = 16;
    let n = scale.pick(2_000, 20_000);
    let workloads: Vec<(String, Vec<Vec<Item>>)> = vec![
        (format!("T10.I4.D{n}"), datasets::sparse(n)),
        (format!("ZIPF1.1.D{n}"), datasets::zipf(n, 1.1)),
    ];

    let mut cells = Vec::new();
    for (dataset, base) in workloads {
        let min_sup = ((0.01 * n as f64).ceil() as Support).max(2);
        let config = ShardConfig {
            shard_count: shards,
            min_support: min_sup,
            ..ShardConfig::default()
        };
        // One probe build exposes the frequent-item ranking the deltas
        // are synthesized from.
        let probe = ShardedPipeline::new(&base, config).expect("probe pipeline");
        let ranking = probe.plt().ranking();
        let items: Vec<Item> = (1..=ranking.len() as u32)
            .map(|r| ranking.item(r))
            .collect();
        assert!(items.len() >= shards, "rank space too small on {dataset}");
        let delta_size = (n / 100).max(1);
        // The localized band is one shard's worth of the lowest ranks;
        // the uniform stride visits every region of the rank space.
        let band = (items.len() / shards).max(2);
        let stride = (items.len() / 8).max(1);
        let deltas: Vec<(&'static str, Vec<Vec<Item>>)> = vec![
            (
                "localized",
                (0..delta_size)
                    .map(|i| delta_txn(&items, i, 1, 6, band))
                    .collect(),
            ),
            (
                "uniform",
                (0..delta_size)
                    .map(|i| delta_txn(&items, i, stride, 8, items.len()))
                    .collect(),
            ),
        ];

        for (mode, delta) in deltas {
            let mut all = base.clone();
            all.extend(delta.iter().cloned());
            let (full_result, t_full) =
                time_best(runs, || ConditionalMiner::default().mine(&all, min_sup));

            // The pipeline must be rebuilt per run (apply mutates it);
            // only the apply itself is timed.
            let mut t_incremental = Duration::MAX;
            let mut dirty_shards = 0;
            for _ in 0..runs {
                let mut pipeline = ShardedPipeline::new(&base, config).expect("pipeline");
                let started = std::time::Instant::now();
                let report = pipeline.apply(Delta::add(delta.clone())).expect("apply");
                t_incremental = t_incremental.min(started.elapsed());
                assert!(
                    !report.reranked,
                    "a delta over frequent items must not drift ({dataset} {mode})"
                );
                dirty_shards = report.dirty_shards;
                assert_eq!(
                    pipeline.result().sorted(),
                    full_result.sorted(),
                    "incremental diverged from full re-mine on {dataset} {mode}"
                );
            }
            cells.push(IncrementalCell {
                dataset: dataset.clone(),
                mode,
                transactions: n,
                delta_size,
                shards,
                dirty_shards,
                itemsets: full_result.len(),
                incremental_secs: t_incremental.as_secs_f64(),
                full_secs: t_full.as_secs_f64(),
            });
        }
    }
    cells
}

/// X13 rendered as a table.
pub fn x13_table(cells: &[IncrementalCell]) -> Table {
    let mut table = Table::new(
        "X13: incremental (dirty shards) vs full re-mine, 1% delta",
        &[
            "dataset",
            "mode",
            "|F|",
            "dirty",
            "incremental",
            "full",
            "speedup",
        ],
    );
    for c in cells {
        table.row(vec![
            c.dataset.clone(),
            c.mode.to_string(),
            c.itemsets.to_string(),
            format!("{}/{}", c.dirty_shards, c.shards),
            fmt_duration(Duration::from_secs_f64(c.incremental_secs)),
            fmt_duration(Duration::from_secs_f64(c.full_secs)),
            format!("{:.2}x", c.speedup()),
        ]);
    }
    table
}

/// X13 — incremental rebuild comparison (table form, for the binary).
pub fn x13_incremental(scale: Scale) -> Table {
    x13_table(&x13_incremental_cells(scale))
}

/// Machine-readable record of an X13 run (the committed
/// `BENCH_incremental.json`). Hand-rolled JSON, same as [`x12_json`].
pub fn x13_json(cells: &[IncrementalCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x13_incremental\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"transactions\": {}, \
             \"delta_size\": {}, \"shards\": {}, \"dirty_shards\": {}, \
             \"itemsets\": {}, \"incremental_secs\": {:.6}, \"full_secs\": {:.6}, \
             \"speedup\": {:.3}}}{}\n",
            c.dataset,
            c.mode,
            c.transactions,
            c.delta_size,
            c.shards,
            c.dirty_shards,
            c.itemsets,
            c.incremental_secs,
            c.full_secs,
            c.speedup(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One row of X15: durable-store recovery and cold-read costs for one
/// dataset. See [`x15_table`] for the rendered table and [`x15_json`]
/// for the committed `BENCH_storage.json` record.
#[derive(Debug, Clone)]
pub struct StorageCell {
    /// Dataset label, e.g. `T10.I4.D2000`.
    pub dataset: String,
    /// Database size (every transaction journaled).
    pub transactions: usize,
    /// Delta records in the WAL when recovery replays the full tail.
    pub wal_deltas: u64,
    /// Best wall time of `open()` replaying the whole WAL (no checkpoint).
    pub recovery_wal_secs: f64,
    /// Best wall time of `open()` from a checkpoint (empty WAL tail).
    pub recovery_ckpt_secs: f64,
    /// Point lookups issued against the cold store (2-shard budget, no
    /// merged snapshot): the full frequent family, each verified.
    pub cold_lookups: usize,
    /// Mean microseconds per cold lookup.
    pub cold_lookup_us: f64,
    /// How many of those lookups were served from mmap segments.
    pub segment_lookups: u64,
    /// Live segment files after the checkpoint.
    pub segments: u64,
    /// Bytes across live segments.
    pub segment_bytes: u64,
    /// WAL bytes before the checkpoint (the replayed volume).
    pub wal_bytes: u64,
}

/// X15 — durable storage: recovery time vs WAL length, and cold-read
/// throughput from mmap segments. Ingests each dataset through the
/// durable pipeline (journaling every batch, no checkpoints), then
/// measures (a) recovery replaying the full WAL, (b) recovery from a
/// checkpoint, (c) `support_of` point lookups with a 2-shard resident
/// budget so almost every answer comes off disk. Recovered and cold
/// answers are asserted against an in-memory full re-mine.
pub fn x15_storage_cells(scale: Scale) -> Vec<StorageCell> {
    use plt_store::{DurableOptions, DurablePipeline};

    let runs = scale.runs().max(2);
    let n = scale.pick(1_500, 12_000);
    let batch = 64;
    let workloads: Vec<(String, Vec<Vec<Item>>)> = vec![
        (format!("T10.I4.D{n}"), datasets::sparse(n)),
        (format!("ZIPF1.1.D{n}"), datasets::zipf(n, 1.1)),
    ];

    let mut cells = Vec::new();
    for (dataset, db) in workloads {
        let min_sup = ((0.01 * n as f64).ceil() as Support).max(2);
        let config = ShardConfig {
            shard_count: 16,
            min_support: min_sup,
            ..ShardConfig::default()
        };
        let dir =
            std::env::temp_dir().join(format!("plt-bench-x15-{}-{dataset}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Journal-only policy: every batch lands in the WAL and stays
        // there, so the first recovery replays the entire ingest.
        let journal_only = DurableOptions {
            checkpoint_every: None,
            ..DurableOptions::default()
        };
        let mut pipeline =
            DurablePipeline::open(&dir, config, journal_only).expect("open fresh dir");
        let mut wal_deltas = 0u64;
        for chunk in db.chunks(batch) {
            pipeline.apply(Delta::add(chunk.to_vec())).expect("apply");
            wal_deltas += 1;
        }
        let wal_bytes = pipeline.store_stats().wal_bytes;
        let reference = ConditionalMiner::default().mine(&db, min_sup);
        assert_eq!(
            pipeline.result().sorted(),
            reference.sorted(),
            "durable ingest diverged from full mine on {dataset}"
        );
        drop(pipeline);

        // (a) Recovery replaying the whole WAL.
        let mut t_wal = Duration::MAX;
        for _ in 0..runs {
            let started = std::time::Instant::now();
            let recovered =
                DurablePipeline::open(&dir, config, journal_only).expect("recover from WAL");
            t_wal = t_wal.min(started.elapsed());
            assert_eq!(
                recovered.recovery().replayed_deltas,
                wal_deltas,
                "{dataset}"
            );
            assert_eq!(
                recovered.result().sorted(),
                reference.sorted(),
                "WAL recovery diverged on {dataset}"
            );
        }

        // Checkpoint, then (b) recovery with an empty tail.
        let mut pipeline =
            DurablePipeline::open(&dir, config, journal_only).expect("reopen to checkpoint");
        pipeline.checkpoint().expect("checkpoint");
        let after_ckpt = pipeline.store_stats();
        drop(pipeline);
        let mut t_ckpt = Duration::MAX;
        for _ in 0..runs {
            let started = std::time::Instant::now();
            let recovered =
                DurablePipeline::open(&dir, config, journal_only).expect("recover from ckpt");
            t_ckpt = t_ckpt.min(started.elapsed());
            assert_eq!(recovered.recovery().replayed_deltas, 0, "{dataset}");
        }

        // (c) Cold reads: a 2-shard budget with no merged snapshot, so
        // point lookups route to resident fragments or mmap segments.
        let cold = DurableOptions {
            resident_shards: Some(2),
            materialize_merged: false,
            checkpoint_every: None,
            ..DurableOptions::default()
        };
        let pipeline = DurablePipeline::open(&dir, config, cold).expect("open cold");
        let family: Vec<(Vec<Item>, Support)> = reference
            .iter()
            .map(|(itemset, support)| (itemset.items().to_vec(), support))
            .collect();
        assert!(!family.is_empty(), "{dataset} must induce frequent sets");
        let started = std::time::Instant::now();
        for (items, support) in &family {
            assert_eq!(
                pipeline.support_of(items),
                Some(*support),
                "cold lookup {items:?} on {dataset}"
            );
        }
        let cold_elapsed = started.elapsed();
        let segment_lookups = pipeline.store_stats().segment_lookups;
        drop(pipeline);
        std::fs::remove_dir_all(&dir).ok();

        cells.push(StorageCell {
            dataset,
            transactions: n,
            wal_deltas,
            recovery_wal_secs: t_wal.as_secs_f64(),
            recovery_ckpt_secs: t_ckpt.as_secs_f64(),
            cold_lookups: family.len(),
            cold_lookup_us: cold_elapsed.as_secs_f64() * 1e6 / family.len() as f64,
            segment_lookups,
            segments: after_ckpt.segments,
            segment_bytes: after_ckpt.segment_bytes,
            wal_bytes,
        });
    }
    cells
}

/// X15 rendered as a table.
pub fn x15_table(cells: &[StorageCell]) -> Table {
    let mut table = Table::new(
        "X15: durable store — recovery vs WAL length, cold reads from mmap segments",
        &[
            "dataset",
            "WAL deltas",
            "recover(WAL)",
            "recover(ckpt)",
            "cold lookup",
            "mmap hits",
            "seg bytes",
        ],
    );
    for c in cells {
        table.row(vec![
            c.dataset.clone(),
            c.wal_deltas.to_string(),
            fmt_duration(Duration::from_secs_f64(c.recovery_wal_secs)),
            fmt_duration(Duration::from_secs_f64(c.recovery_ckpt_secs)),
            format!("{:.1}us", c.cold_lookup_us),
            format!("{}/{}", c.segment_lookups, c.cold_lookups),
            c.segment_bytes.to_string(),
        ]);
    }
    table
}

/// X15 — durable-storage costs (table form, for the binary).
pub fn x15_storage(scale: Scale) -> Table {
    x15_table(&x15_storage_cells(scale))
}

/// Machine-readable record of an X15 run (the committed
/// `BENCH_storage.json`). Hand-rolled JSON, same as [`x13_json`].
pub fn x15_json(cells: &[StorageCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x15_storage\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"transactions\": {}, \"wal_deltas\": {}, \
             \"wal_bytes\": {}, \"recovery_wal_secs\": {:.6}, \
             \"recovery_ckpt_secs\": {:.6}, \"cold_lookups\": {}, \
             \"cold_lookup_us\": {:.3}, \"segment_lookups\": {}, \
             \"segments\": {}, \"segment_bytes\": {}}}{}\n",
            c.dataset,
            c.transactions,
            c.wal_deltas,
            c.wal_bytes,
            c.recovery_wal_secs,
            c.recovery_ckpt_secs,
            c.cold_lookups,
            c.cold_lookup_us,
            c.segment_lookups,
            c.segments,
            c.segment_bytes,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One X14 end-to-end measurement: the arena engine pinned to each
/// kernel backend, and Eclat over sorted tidsets vs packed bitsets, on
/// one dataset cell. The answers are asserted identical across all four
/// runs before any number is reported.
#[derive(Debug, Clone)]
pub struct SimdCell {
    /// Dataset label, e.g. `DENSE16.D600@30%`.
    pub dataset: String,
    /// Absolute minimum support used.
    pub min_sup: Support,
    /// Number of frequent itemsets (identical across runs — asserted).
    pub itemsets: usize,
    /// Arena engine with every kernel forced onto the scalar backend —
    /// this is the committed X12 baseline the issue's speedup target is
    /// measured against.
    pub arena_scalar_secs: f64,
    /// Arena engine with every kernel forced onto the SIMD backend
    /// (degrades to scalar when the build or CPU lacks it).
    pub arena_simd_secs: f64,
    /// Eclat over sorted tidsets (transaction-level, includes its own
    /// vertical-database build).
    pub eclat_tidset_secs: f64,
    /// Eclat over packed `u64` bitsets (AND + popcount joins).
    pub eclat_bitset_secs: f64,
    /// Kernel calls dispatched to the vector backend during one
    /// instrumented SIMD arena pass plus one bitset Eclat pass.
    pub simd_calls: u64,
    /// Kernel calls dispatched to the scalar backend in the same passes.
    pub scalar_calls: u64,
    /// Bitset joins performed by the instrumented bitset Eclat pass.
    pub bitmap_intersections: u64,
}

impl SimdCell {
    /// Arena speedup from the backend pin alone.
    pub fn arena_speedup(&self) -> f64 {
        self.arena_scalar_secs / self.arena_simd_secs
    }

    /// Eclat speedup from the bitset representation.
    pub fn eclat_speedup(&self) -> f64 {
        self.eclat_tidset_secs / self.eclat_bitset_secs
    }

    /// Headline: the largest backend/representation speedup the kernel
    /// layer delivers on this cell. In practice this is the bitset join
    /// kernels for Eclat (the arena engine is fold-bound, not scan-bound,
    /// so the backend pin alone moves it little — see DESIGN.md §11).
    pub fn speedup(&self) -> f64 {
        self.arena_speedup().max(self.eclat_speedup())
    }
}

/// One X14 microbenchmark: a single `plt_core::kernels` primitive timed
/// on both backends over the same synthetic input, with the results
/// checksummed and asserted equal — the differential check runs inside
/// the benchmark itself.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// Kernel name (`prefix_sum`, `filter_ge`, `and_popcount`).
    pub kernel: String,
    /// Input length in elements (words for the bitset kernel).
    pub len: usize,
    /// Best wall time on the forced scalar backend.
    pub scalar_secs: f64,
    /// Best wall time on the forced SIMD backend.
    pub simd_secs: f64,
}

impl KernelCell {
    /// Scalar-over-SIMD speedup (1.0 when the build has no SIMD).
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.simd_secs
    }
}

/// Deterministic synthetic `u32` values in `0..modulo` (xorshift; the
/// workspace carries no RNG dependency).
fn synth_u32(len: usize, seed: u64, modulo: u32) -> Vec<u32> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as u32) % modulo
        })
        .collect()
}

/// Deterministic synthetic `u64` words (same generator, full width).
fn synth_u64(len: usize, seed: u64) -> Vec<u64> {
    let mut x = seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// X14 — end-to-end kernel cells: the arena engine under each backend
/// pin and Eclat under each tidset representation, on the same sparse,
/// dense, and power-law workloads as X12. The scalar arena column is the
/// committed `BENCH_conditional.json` baseline, so `speedup()` reads
/// directly as "gain over current arena numbers".
pub fn x14_simd_cells(scale: Scale) -> Vec<SimdCell> {
    use plt_core::kernels::{self, Backend, KernelStats};

    let runs = scale.runs().max(2);
    let mut workloads: Vec<(String, Vec<Vec<Item>>, Support)> = Vec::new();
    {
        let n = scale.pick(2_000, 10_000);
        let db = datasets::sparse(n);
        let ms = ((0.01 * n as f64).ceil() as Support).max(1);
        workloads.push((format!("T10.I4.D{n}@1.0%"), db, ms));
    }
    {
        let n = scale.pick(600, 3_000);
        let db = datasets::dense(n, 16);
        let ms = ((0.3 * n as f64).ceil() as Support).max(1);
        workloads.push((format!("DENSE16.D{n}@30%"), db, ms));
    }
    {
        let n = scale.pick(2_000, 10_000);
        let db = datasets::zipf(n, 1.1);
        let ms = ((0.01 * n as f64).ceil() as Support).max(1);
        workloads.push((format!("ZIPF1.1.D{n}@1.0%"), db, ms));
    }

    let mut cells = Vec::new();
    for (dataset, db, min_sup) in workloads {
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).unwrap();
        let arena: Box<dyn plt_core::Mine> = Box::new(ConditionalMiner::default());
        // Pin the timing thread to one backend per run; both timed runs
        // mine the same PLT, so the cells isolate the kernel dispatch.
        kernels::set_thread_backend(Some(Backend::Scalar));
        let (scalar_result, t_scalar) = time_best(runs, || mine_plt(arena.as_ref(), &plt));
        kernels::set_thread_backend(Some(Backend::Simd));
        let (simd_result, t_simd) = time_best(runs, || mine_plt(arena.as_ref(), &plt));
        // One untimed instrumented pass for the dispatch counters.
        let before = KernelStats::snapshot_thread();
        let _ = mine_plt(arena.as_ref(), &plt);
        let arena_kernels = KernelStats::snapshot_thread().since(&before);
        kernels::set_thread_backend(None);
        assert_eq!(
            scalar_result.sorted(),
            simd_result.sorted(),
            "kernel backends disagree on {dataset}"
        );

        // Eclat cells run unpinned: the bitset path's joins auto-select
        // the best available backend, same as production use.
        let tidset = EclatMiner::default().with_repr(TidRepr::Tidset);
        let bitset = EclatMiner::default().with_repr(TidRepr::Bitset);
        let (tid_result, t_tid) = time_best(runs, || tidset.mine(&db, min_sup));
        let (bit_result, t_bit) = time_best(runs, || bitset.mine(&db, min_sup));
        assert_eq!(
            tid_result.sorted(),
            bit_result.sorted(),
            "Eclat representations disagree on {dataset}"
        );
        assert_eq!(
            tid_result.len(),
            scalar_result.len(),
            "Eclat and arena disagree on |F| at {dataset}"
        );
        let before = KernelStats::snapshot_thread();
        let _ = bitset.mine(&db, min_sup);
        let bit_kernels = KernelStats::snapshot_thread().since(&before);

        cells.push(SimdCell {
            dataset,
            min_sup,
            itemsets: scalar_result.len(),
            arena_scalar_secs: t_scalar.as_secs_f64(),
            arena_simd_secs: t_simd.as_secs_f64(),
            eclat_tidset_secs: t_tid.as_secs_f64(),
            eclat_bitset_secs: t_bit.as_secs_f64(),
            simd_calls: arena_kernels.simd_calls + bit_kernels.simd_calls,
            scalar_calls: arena_kernels.scalar_calls + bit_kernels.scalar_calls,
            bitmap_intersections: bit_kernels.bitmap_intersections,
        });
    }
    cells
}

/// X14 — raw kernel microcells: each `plt_core::kernels` primitive timed
/// on both backends over deterministic synthetic inputs at two sizes.
/// Each op folds its outputs into a checksum that must match across
/// backends, so every timing doubles as an equivalence check.
pub fn x14_kernel_cells(scale: Scale) -> Vec<KernelCell> {
    use plt_core::kernels::{self, Backend};

    let runs = scale.runs().max(3);
    let reps = scale.pick(64, 512);
    let mut cells = Vec::new();
    for len in [4_096usize, 65_536] {
        let deltas = synth_u32(len, 1, 7);
        let counts: Vec<u64> = synth_u32(len, 2, 1_000)
            .into_iter()
            .map(u64::from)
            .collect();
        let ids: Vec<u32> = (0..len as u32).collect();
        let words_a = synth_u64(len / 16, 3);
        let words_b = synth_u64(len / 16, 4);

        type KernelOp<'a> = (&'a str, usize, Box<dyn FnMut() -> u64>);
        let mut ops: Vec<KernelOp<'_>> = Vec::new();
        {
            let deltas = deltas.clone();
            let mut out = Vec::new();
            ops.push((
                "prefix_sum",
                len,
                Box::new(move || {
                    let mut acc = 0u64;
                    for _ in 0..reps {
                        kernels::prefix_sum_into(&deltas, &mut out);
                        acc = acc.wrapping_add(u64::from(*out.last().unwrap()));
                    }
                    acc
                }),
            ));
        }
        {
            let counts = counts.clone();
            let ids = ids.clone();
            let mut kept = Vec::new();
            ops.push((
                "filter_ge",
                len,
                Box::new(move || {
                    let mut acc = 0u64;
                    for _ in 0..reps {
                        kernels::filter_ge_into(&counts, &ids, 500, &mut kept);
                        acc = acc.wrapping_add(kept.len() as u64);
                    }
                    acc
                }),
            ));
        }
        {
            let counts = counts.clone();
            let ids = ids.clone();
            ops.push((
                "count_ge",
                len,
                Box::new(move || {
                    let mut acc = 0u64;
                    for _ in 0..reps {
                        acc = acc.wrapping_add(kernels::count_ge(&counts, &ids, 500) as u64);
                    }
                    acc
                }),
            ));
        }
        {
            let counts = counts.clone();
            let ids = ids.clone();
            ops.push((
                "sum_gather",
                len,
                Box::new(move || {
                    let mut acc = 0u64;
                    for _ in 0..reps {
                        acc = acc.wrapping_add(kernels::sum_gather(&counts, &ids));
                    }
                    acc
                }),
            ));
        }
        {
            let a = words_a.clone();
            let b = words_b.clone();
            ops.push((
                "and_popcount",
                len / 16,
                Box::new(move || {
                    let mut acc = 0u64;
                    for _ in 0..reps {
                        acc = acc.wrapping_add(kernels::and_popcount(&a, &b));
                    }
                    acc
                }),
            ));
        }

        for (kernel, cell_len, mut op) in ops {
            kernels::set_thread_backend(Some(Backend::Scalar));
            let (sum_scalar, t_scalar) = time_best(runs, &mut op);
            kernels::set_thread_backend(Some(Backend::Simd));
            let (sum_simd, t_simd) = time_best(runs, &mut op);
            kernels::set_thread_backend(None);
            assert_eq!(
                sum_scalar, sum_simd,
                "{kernel}[{cell_len}] backends disagree"
            );
            cells.push(KernelCell {
                kernel: kernel.to_string(),
                len: cell_len,
                scalar_secs: t_scalar.as_secs_f64(),
                simd_secs: t_simd.as_secs_f64(),
            });
        }
    }
    cells
}

/// X14 rendered as a table: two rows per dataset cell (arena pin, Eclat
/// representation) then one row per kernel microcell.
pub fn x14_table(cells: &[SimdCell], kernels: &[KernelCell]) -> Table {
    let mut table = Table::new(
        "X14: SIMD/bitset kernels — backend pin, Eclat representation, raw kernels",
        &["cell", "|F|/len", "scalar", "simd", "speedup", "headline"],
    );
    for c in cells {
        table.row(vec![
            format!("{} arena", c.dataset),
            c.itemsets.to_string(),
            fmt_duration(Duration::from_secs_f64(c.arena_scalar_secs)),
            fmt_duration(Duration::from_secs_f64(c.arena_simd_secs)),
            format!("{:.2}x", c.arena_speedup()),
            format!("{:.2}x", c.speedup()),
        ]);
        table.row(vec![
            format!("{} eclat", c.dataset),
            c.itemsets.to_string(),
            fmt_duration(Duration::from_secs_f64(c.eclat_tidset_secs)),
            fmt_duration(Duration::from_secs_f64(c.eclat_bitset_secs)),
            format!("{:.2}x", c.eclat_speedup()),
            String::new(),
        ]);
    }
    for k in kernels {
        table.row(vec![
            k.kernel.clone(),
            k.len.to_string(),
            fmt_duration(Duration::from_secs_f64(k.scalar_secs)),
            fmt_duration(Duration::from_secs_f64(k.simd_secs)),
            format!("{:.2}x", k.speedup()),
            String::new(),
        ]);
    }
    table
}

/// X14 — SIMD kernel comparison (table form, for the binary).
pub fn x14_simd_kernels(scale: Scale) -> Table {
    x14_table(&x14_simd_cells(scale), &x14_kernel_cells(scale))
}

/// Machine-readable record of an X14 run (the committed
/// `BENCH_simd.json`). Hand-rolled JSON, same as [`x12_json`].
pub fn x14_json(cells: &[SimdCell], kernels: &[KernelCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x14_simd_kernels\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"min_sup\": {}, \"itemsets\": {}, \
             \"arena_scalar_secs\": {:.6}, \"arena_simd_secs\": {:.6}, \
             \"arena_speedup\": {:.3}, \"eclat_tidset_secs\": {:.6}, \
             \"eclat_bitset_secs\": {:.6}, \"eclat_speedup\": {:.3}, \
             \"speedup\": {:.3}, \"kernel\": {{\"simd_calls\": {}, \
             \"scalar_calls\": {}, \"bitmap_intersections\": {}}}}}{}\n",
            c.dataset,
            c.min_sup,
            c.itemsets,
            c.arena_scalar_secs,
            c.arena_simd_secs,
            c.arena_speedup(),
            c.eclat_tidset_secs,
            c.eclat_bitset_secs,
            c.eclat_speedup(),
            c.speedup(),
            c.simd_calls,
            c.scalar_calls,
            c.bitmap_intersections,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"len\": {}, \"scalar_secs\": {:.6}, \
             \"simd_secs\": {:.6}, \"speedup\": {:.3}}}{}\n",
            k.kernel,
            k.len,
            k.scalar_secs,
            k.simd_secs,
            k.speedup(),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One X16 load measurement: `clients` concurrent connections driving
/// point queries through one serving model over real TCP sockets.
#[derive(Debug, Clone)]
pub struct ServeLoadCell {
    /// Serving model, `threads` or `reactor`.
    pub model: String,
    /// Concurrent connections held open for the whole measurement.
    pub clients: usize,
    /// Total requests answered (every reply is asserted byte-identical
    /// to the engine's local answer before it is counted).
    pub ops: usize,
    /// Wall time from the post-connect barrier to the last reply.
    pub elapsed_secs: f64,
    /// `ops / elapsed_secs`.
    pub throughput: f64,
    /// Median request latency (write of the frame to read of the reply).
    pub p50_us: f64,
    /// 99th-percentile request latency.
    pub p99_us: f64,
}

/// The X16 idle-connection ceiling probe: how many open-but-silent
/// connections one reactor holds while still answering an active client.
#[derive(Debug, Clone)]
pub struct IdleCell {
    /// Connections the probe asked for.
    pub target: usize,
    /// Client-side sockets successfully connected and held.
    pub opened: usize,
    /// The server's own `reactor.active_connections` gauge at steady
    /// state (includes the probe client's connection).
    pub active_connections: u64,
    /// Reactor threads serving the idle herd.
    pub reactors: usize,
    /// `RLIMIT_NOFILE` soft limit in effect during the probe.
    pub nofile: u64,
    /// Median latency of live queries issued while the herd is resident.
    pub probe_p50_us: f64,
    /// 99th-percentile latency of those same queries.
    pub probe_p99_us: f64,
}

/// Everything X16 measures. `idle` is `None` off Linux, where the
/// reactor model (and so the ceiling probe) does not exist.
#[derive(Debug, Clone)]
pub struct ServeCells {
    /// Idle-connection ceiling (reactor only).
    pub idle: Option<IdleCell>,
    /// Throughput/latency grid: models x client counts.
    pub load: Vec<ServeLoadCell>,
}

/// Raises the `RLIMIT_NOFILE` soft limit so the idle-connection probe
/// can hold tens of thousands of sockets — each in-process connection
/// costs two descriptors (client end + server end). Returns the soft
/// limit in effect afterwards.
#[cfg(target_os = "linux")]
fn raise_nofile(want: u64) -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        // Root may raise the hard limit too; ask for the full amount
        // first, then settle for the existing hard cap.
        let ask = Rlimit {
            cur: want,
            max: want.max(lim.max),
        };
        if setrlimit(RLIMIT_NOFILE, &ask) == 0 {
            return want;
        }
        let capped = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        if setrlimit(RLIMIT_NOFILE, &capped) == 0 {
            return lim.max;
        }
        lim.cur
    }
}

/// Connects with bounded retries: under a burst the listener's SYN
/// queue can transiently refuse, which is load — not failure. `None`
/// means the peer (or the fd budget) is genuinely exhausted.
fn x16_try_connect(addr: std::net::SocketAddr, attempts: u64) -> Option<std::net::TcpStream> {
    for attempt in 0..attempts {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            Err(_) => std::thread::sleep(Duration::from_millis(2 + attempt / 10)),
        }
    }
    None
}

/// Connects with retries, panicking if the server never answers.
fn x16_connect(addr: std::net::SocketAddr) -> std::net::TcpStream {
    x16_try_connect(addr, 200).expect("connect after retries")
}

/// Entry point for the `--x16-herd` helper process: connects `count`
/// idle sockets to `addr`, reports `held <n>` on stdout, and keeps them
/// open until stdin closes. The herd lives in its own process so its
/// client-side fds come out of a separate `RLIMIT_NOFILE` budget — the
/// measuring process only pays for the server ends.
#[cfg(target_os = "linux")]
pub fn x16_idle_herd_child(addr: &str, count: usize) -> ! {
    use std::io::{BufRead, Write};

    raise_nofile(count as u64 + 4_096);
    let addr: std::net::SocketAddr = addr.parse().expect("herd addr");
    let mut herd = Vec::with_capacity(count);
    for _ in 0..count {
        match x16_try_connect(addr, 200) {
            Some(s) => herd.push(s),
            None => break,
        }
    }
    println!("held {}", herd.len());
    std::io::stdout().flush().ok();
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    drop(herd);
    std::process::exit(0);
}

/// Spawns the idle herd. Preferred path: re-exec the current binary
/// with `--x16-herd` so the herd's fds live in a child process.
/// Fallback (binary without the flag, spawn failure): hold the herd
/// in-process, where each connection costs two fds from one budget.
#[cfg(target_os = "linux")]
fn x16_spawn_herd(
    addr: std::net::SocketAddr,
    count: usize,
) -> (usize, Option<std::process::Child>, Vec<std::net::TcpStream>) {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    if let Ok(exe) = std::env::current_exe() {
        if let Ok(mut child) = Command::new(exe)
            .arg("--x16-herd")
            .arg(addr.to_string())
            .arg(count.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
        {
            let mut line = String::new();
            if let Some(out) = child.stdout.take() {
                let mut r = std::io::BufReader::new(out);
                if r.read_line(&mut line).is_ok() {
                    if let Some(n) = line
                        .trim()
                        .strip_prefix("held ")
                        .and_then(|s| s.parse().ok())
                    {
                        return (n, Some(child), Vec::new());
                    }
                }
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    let mut herd = Vec::with_capacity(count);
    for _ in 0..count {
        match x16_try_connect(addr, 20) {
            Some(s) => herd.push(s),
            None => break,
        }
    }
    (herd.len(), None, herd)
}

/// Reads one `<len>\n<payload>\n` reply frame off a buffered socket.
fn x16_read_frame(r: &mut impl std::io::BufRead) -> std::io::Result<String> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    let len: usize = header.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad reply header {header:?}"),
        )
    })?;
    let mut payload = vec![0u8; len + 1];
    std::io::Read::read_exact(r, &mut payload)?;
    payload.pop();
    String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "reply is not utf-8"))
}

/// `p`-th percentile of an ascending latency vector, in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Drives `clients` connections through `ops_per_conn` requests each,
/// from a bounded worker pool (each worker keeps one request in flight
/// per connection it owns — send-all-then-read-all per round). Every
/// reply is asserted byte-identical to `expected`. Returns (elapsed
/// seconds, per-request latencies in nanoseconds).
fn x16_drive_load(
    addr: std::net::SocketAddr,
    clients: usize,
    ops_per_conn: usize,
    payload: &str,
    expected: &str,
) -> (f64, Vec<u64>) {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    let workers = clients.clamp(1, 16);
    let frame: Arc<Vec<u8>> = Arc::new(format!("{}\n{}\n", payload.len(), payload).into_bytes());
    let barrier = Arc::new(Barrier::new(workers + 1));
    let mut handles = Vec::new();
    for w in 0..workers {
        let count = clients / workers + usize::from(w < clients % workers);
        let frame = Arc::clone(&frame);
        let barrier = Arc::clone(&barrier);
        let expected = expected.to_string();
        handles.push(std::thread::spawn(move || {
            let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::with_capacity(count);
            for _ in 0..count {
                let stream = x16_connect(addr);
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
                let reader = BufReader::new(stream.try_clone().expect("clone socket"));
                conns.push((stream, reader));
            }
            barrier.wait();
            let mut lat = Vec::with_capacity(count * ops_per_conn);
            let mut starts = vec![std::time::Instant::now(); count];
            for _ in 0..ops_per_conn {
                for (i, (stream, _)) in conns.iter_mut().enumerate() {
                    starts[i] = std::time::Instant::now();
                    stream.write_all(&frame).expect("request write");
                }
                for (i, (_, reader)) in conns.iter_mut().enumerate() {
                    let reply = x16_read_frame(reader).expect("reply read");
                    lat.push(starts[i].elapsed().as_nanos() as u64);
                    assert_eq!(reply, expected, "reply diverged under load");
                }
            }
            lat
        }));
    }
    barrier.wait();
    let started = std::time::Instant::now();
    let mut lat = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("load worker"));
    }
    (started.elapsed().as_secs_f64(), lat)
}

/// X16 — async serving: the epoll reactor vs the thread-per-connection
/// model over real TCP sockets, plus the reactor's idle-connection
/// ceiling. The snapshot is small on purpose: the engine answers in
/// microseconds, so the transport and scheduling — not the miner — are
/// what the numbers show. Every wire reply is asserted byte-identical
/// to the engine's in-process answer before it is counted.
pub fn x16_serve_cells(scale: Scale) -> ServeCells {
    use plt_rules::RuleConfig;
    use plt_serve::{serve, Engine, Request, ServerConfig, ServerModel, Snapshot};
    use std::sync::Arc;

    let db = datasets::sparse_small(2_000);
    let min_sup = 2;
    let result = ConditionalMiner::default().mine(&db, min_sup);
    let build_engine = || {
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).expect("construct");
        Arc::new(Engine::new(Snapshot::build(
            1,
            plt,
            &result,
            RuleConfig::default(),
        )))
    };

    // Probe query: the highest-support itemset, answered from the index.
    let probe_items: Vec<Item> = result
        .iter()
        .max_by_key(|&(_, support)| support)
        .map(|(itemset, _)| itemset.items().to_vec())
        .expect("frequent family");
    let request = Request::Support {
        items: probe_items.clone(),
    };
    let payload = request.to_json().to_string();
    let expected = build_engine().handle(&request);

    // Idle-connection ceiling first: it raises RLIMIT_NOFILE for
    // everything after it.
    #[cfg(target_os = "linux")]
    let idle = {
        let target = scale.pick(2_304, 10_500);
        // The herd's client ends live in a child process with its own
        // fd budget; this process only pays one fd per accepted socket.
        let nofile = raise_nofile(target as u64 + 4_096);
        let target = target.min(nofile.saturating_sub(2_048) as usize);
        let reactors = 1;
        let handle = serve(
            "127.0.0.1:0",
            build_engine(),
            None,
            ServerConfig {
                server_model: ServerModel::Reactor,
                reactors,
                accept_backlog: 8_192,
                max_connections: target + 64,
                read_deadline: Some(Duration::from_secs(600)),
                ..ServerConfig::default()
            },
        )
        .expect("bind idle server");
        let (opened, mut herd_child, herd_local) = x16_spawn_herd(handle.addr(), target);
        // One live client among the idle herd: wait until the reactor
        // has registered everyone, then measure query latency with the
        // full herd resident in the slab.
        let mut probe = plt_serve::Client::connect(handle.addr()).expect("probe client");
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        let mut active_connections;
        loop {
            let stats = probe.stats().expect("stats under idle herd");
            active_connections = stats
                .get("reactor")
                .and_then(|r| r.get("active_connections"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            if active_connections as usize > opened || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let mut lat = Vec::with_capacity(256);
        for _ in 0..256 {
            let started = std::time::Instant::now();
            probe.support(&probe_items).expect("probe under idle herd");
            lat.push(started.elapsed().as_nanos() as u64);
        }
        lat.sort_unstable();
        let cell = IdleCell {
            target,
            opened,
            active_connections,
            reactors,
            nofile,
            probe_p50_us: percentile_us(&lat, 0.50),
            probe_p99_us: percentile_us(&lat, 0.99),
        };
        drop(probe);
        drop(herd_local);
        if let Some(child) = herd_child.as_mut() {
            drop(child.stdin.take());
            let _ = child.wait();
        }
        handle.shutdown();
        Some(cell)
    };
    #[cfg(not(target_os = "linux"))]
    let idle: Option<IdleCell> = None;

    // Throughput/latency grid: both models at each client count; the
    // thread model is the reactor's differential oracle and baseline.
    let client_counts: Vec<usize> = match scale {
        Scale::Quick => vec![32, 128],
        Scale::Full => vec![64, 512, 4_096],
    };
    let total_ops = scale.pick(6_400, 65_536);
    let models: Vec<ServerModel> = if cfg!(target_os = "linux") {
        vec![ServerModel::Threads, ServerModel::Reactor]
    } else {
        vec![ServerModel::Threads]
    };
    let mut load = Vec::new();
    for &clients in &client_counts {
        for &model in &models {
            let handle = serve(
                "127.0.0.1:0",
                build_engine(),
                None,
                ServerConfig {
                    server_model: model,
                    accept_backlog: 8_192,
                    max_connections: clients * 2 + 64,
                    read_deadline: Some(Duration::from_secs(120)),
                    ..ServerConfig::default()
                },
            )
            .expect("bind load server");
            let ops_per_conn = (total_ops / clients).max(4);
            let (elapsed, mut lat) =
                x16_drive_load(handle.addr(), clients, ops_per_conn, &payload, &expected);
            lat.sort_unstable();
            load.push(ServeLoadCell {
                model: model.as_str().to_string(),
                clients,
                ops: lat.len(),
                elapsed_secs: elapsed,
                throughput: lat.len() as f64 / elapsed,
                p50_us: percentile_us(&lat, 0.50),
                p99_us: percentile_us(&lat, 0.99),
            });
            handle.shutdown();
        }
    }

    ServeCells { idle, load }
}

/// X16 rendered as a table.
pub fn x16_table(cells: &ServeCells) -> Table {
    let mut table = Table::new(
        "X16: async serving — reactor vs thread-per-connection, idle ceiling",
        &["model", "clients", "ops", "elapsed", "ops/s", "p50", "p99"],
    );
    if let Some(idle) = &cells.idle {
        table.row(vec![
            "reactor(idle)".into(),
            idle.opened.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.1}us", idle.probe_p50_us),
            format!("{:.1}us", idle.probe_p99_us),
        ]);
    }
    for c in &cells.load {
        table.row(vec![
            c.model.clone(),
            c.clients.to_string(),
            c.ops.to_string(),
            fmt_duration(Duration::from_secs_f64(c.elapsed_secs)),
            format!("{:.0}", c.throughput),
            format!("{:.1}us", c.p50_us),
            format!("{:.1}us", c.p99_us),
        ]);
    }
    table
}

/// X16 — async serving (table form, for the binary).
pub fn x16_async_serve(scale: Scale) -> Table {
    x16_table(&x16_serve_cells(scale))
}

/// Machine-readable record of an X16 run (the committed
/// `BENCH_serve.json`). Hand-rolled JSON, same as [`x13_json`].
pub fn x16_json(cells: &ServeCells, scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x16_async_serve\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    match &cells.idle {
        Some(i) => s.push_str(&format!(
            "  \"idle\": {{\"target\": {}, \"opened\": {}, \
             \"active_connections\": {}, \"reactors\": {}, \"nofile\": {}, \
             \"probe_p50_us\": {:.3}, \"probe_p99_us\": {:.3}}},\n",
            i.target,
            i.opened,
            i.active_connections,
            i.reactors,
            i.nofile,
            i.probe_p50_us,
            i.probe_p99_us,
        )),
        None => s.push_str("  \"idle\": null,\n"),
    }
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.load.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"clients\": {}, \"ops\": {}, \
             \"elapsed_secs\": {:.6}, \"throughput_ops_s\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            c.model,
            c.clients,
            c.ops,
            c.elapsed_secs,
            c.throughput,
            c.p50_us,
            c.p99_us,
            if i + 1 < cells.load.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One X17 cell: one query expression over one dataset, the planner's
/// chosen physical operator timed against a forced naive full scan of
/// the same query. See [`x17_table`] for the rendered table and
/// [`x17_json`] for the committed `BENCH_query.json` record.
#[derive(Debug, Clone)]
pub struct QueryCell {
    /// Dataset label, e.g. `T10.I4.D2000`.
    pub dataset: String,
    /// The query expression as typed.
    pub query: String,
    /// Physical operator the cost-based planner chose.
    pub plan: String,
    /// Planner-estimated cost of the chosen plan.
    pub cost: f64,
    /// Result rows (identical between plan and naive, asserted).
    pub rows: usize,
    /// Frequent itemsets in the source (`N`, the naive scan's domain).
    pub num_itemsets: usize,
    /// Best wall time of the planner's choice, microseconds (end to
    /// end: parse, plan, execute).
    pub plan_us: f64,
    /// Best wall time of the forced `full_scan` operator, microseconds.
    pub naive_us: f64,
    /// `naive_us / plan_us`.
    pub speedup: f64,
    /// Best wall time of every applicable physical operator on this
    /// query (`full_scan` included), microseconds — the per-plan
    /// comparison behind the headline speedup.
    pub ops: Vec<(String, f64)>,
}

/// X17 — query planner vs naive scan: parses each expression, lets the
/// cost-based planner choose a physical operator, and times that choice
/// against the same query forced through the `full_scan` operator. The
/// two result sets are asserted identical (a live differential check),
/// so the speedup column measures pure plan quality. Covers all four
/// specialized operators across sparse/dense/zipf workloads.
pub fn x17_query_cells(scale: Scale) -> Vec<QueryCell> {
    use plt_query::{MemSource, PhysOp, Source};
    use plt_rules::RuleConfig;

    let runs = scale.runs().max(3);
    let n = scale.pick(2_000, 12_000);
    let dense_n = scale.pick(600, 3_000);
    let workloads: Vec<(String, Vec<Vec<Item>>, Support)> = vec![
        (
            format!("T10.I4.D{n}"),
            datasets::sparse(n),
            ((0.01 * n as f64).ceil() as Support).max(2),
        ),
        (
            format!("DENSE16.D{dense_n}"),
            datasets::dense(dense_n, 16),
            // 20%: deep enough that the lattice dwarfs both the vector
            // count and the conditional-mine cost estimate.
            ((0.2 * dense_n as f64).ceil() as Support).max(2),
        ),
        (
            format!("ZIPF1.1.D{n}"),
            datasets::zipf(n, 1.1),
            ((0.01 * n as f64).ceil() as Support).max(2),
        ),
    ];

    let mut cells = Vec::new();
    for (dataset, db, min_sup) in workloads {
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).expect("construct");
        let result = ConditionalMiner::default().mine(&db, min_sup);
        let src = MemSource::build(1, plt, &result, RuleConfig::default());
        let ranked = src.ranked();
        assert!(!ranked.is_empty(), "{dataset} must induce frequent sets");

        // A mid-ranked itemset: far enough down that the naive support
        // scan cannot shortcut, still guaranteed frequent.
        let mid = &ranked[ranked.len() / 2].0;
        let mid_items: Vec<String> = mid.items().iter().map(|i| i.to_string()).collect();
        // The least-frequent root: its supersets sit deep in the ranked
        // order, so the naive scan walks most of it.
        let rare_root = src
            .extensions_of(&[])
            .last()
            .map(|&(item, _)| item)
            .expect("at least one frequent item");

        let queries = vec![
            format!("SUPPORT OF {{{}}}", mid_items.join(", ")),
            // Selective conjunct: few rules match, so the timing
            // difference is scan length (rule_scan stops at the
            // confidence bound; the naive scan walks every rule).
            "RULES WHERE confidence >= 0.9 AND support >= 0.02".to_string(),
            format!("MINE COND {{{rare_root}}} TOP 10"),
        ];

        for expr in queries {
            // The planner's end-to-end path: parse, plan, execute.
            let ((rows, prov), t_plan) = time_best(runs, || {
                plt_query::run(&expr, &src, &mut plt_obs::Obs::none()).expect("planned query")
            });
            // Every applicable physical operator on the same query,
            // each asserted identical to the planner's answer.
            let parsed = plt_query::parse(&expr).expect("parse").normalize();
            let mut ops = Vec::new();
            let mut naive_us = 0.0;
            for &op in plt_query::applicable_ops(&parsed) {
                let ((forced, _), t) = time_best(runs, || {
                    plt_query::run_forced(&expr, &src, op).expect("forced operator")
                });
                assert_eq!(
                    forced,
                    rows,
                    "{} diverged from plan {} on {dataset}: {expr}",
                    op.as_str(),
                    prov.plan.op.as_str()
                );
                let us = t.as_secs_f64() * 1e6;
                if op == PhysOp::FullScan {
                    naive_us = us;
                }
                ops.push((op.as_str().to_string(), us));
            }
            let plan_us = t_plan.as_secs_f64() * 1e6;
            cells.push(QueryCell {
                dataset: dataset.clone(),
                query: expr,
                plan: prov.plan.op.as_str().to_string(),
                cost: prov.plan.cost,
                rows: rows.len(),
                num_itemsets: ranked.len(),
                plan_us,
                naive_us,
                speedup: naive_us / plan_us.max(1e-3),
                ops,
            });
        }
    }
    cells
}

/// X17 rendered as a table.
pub fn x17_table(cells: &[QueryCell]) -> Table {
    let mut table = Table::new(
        "X17: query planner vs naive scan — chosen physical operator per cell",
        &[
            "dataset", "query", "plan", "rows", "plan", "naive", "speedup",
        ],
    );
    for c in cells {
        table.row(vec![
            c.dataset.clone(),
            c.query.clone(),
            c.plan.clone(),
            c.rows.to_string(),
            format!("{:.1}us", c.plan_us),
            format!("{:.1}us", c.naive_us),
            format!("{:.1}x", c.speedup),
        ]);
    }
    table
}

/// X17 — planner vs naive (table form, for the binary).
pub fn x17_query(scale: Scale) -> Table {
    x17_table(&x17_query_cells(scale))
}

/// Machine-readable record of an X17 run (the committed
/// `BENCH_query.json`). Hand-rolled JSON, same as [`x15_json`].
pub fn x17_json(cells: &[QueryCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x17_query\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let ops: Vec<String> = c
            .ops
            .iter()
            .map(|(op, us)| format!("\"{op}\": {us:.3}"))
            .collect();
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"plan\": \"{}\", \
             \"cost\": {:.3}, \"rows\": {}, \"num_itemsets\": {}, \
             \"plan_us\": {:.3}, \"naive_us\": {:.3}, \"speedup\": {:.3}, \
             \"ops\": {{{}}}}}{}\n",
            c.dataset,
            c.query,
            c.plan,
            c.cost,
            c.rows,
            c.num_itemsets,
            c.plan_us,
            c.naive_us,
            c.speedup,
            ops.join(", "),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One X18 measurement: the approximate answering tier on one dataset
/// cell — the indicator sketch against exact answering, and the
/// Toivonen sampled rebuild against the exact conditional re-mine it
/// replaces. Every sketch estimate is asserted within its stated error
/// bound before any number is reported (a live correctness check, like
/// the miner-agreement assertions in the sweep cells).
#[derive(Debug, Clone)]
pub struct ApproxCell {
    /// Dataset label, e.g. `T10.I4.D4000`.
    pub dataset: String,
    /// Window size the sketch mirrors.
    pub transactions: usize,
    /// Absolute minimum support of the mined generation.
    pub min_sup: Support,
    /// Configured sketch ε (guarantee: within `±⌈ε·N⌉`, prob `1 − δ`).
    pub epsilon: f64,
    /// Configured sketch δ.
    pub delta: f64,
    /// Transactions the sketch retained (≈ the Hoeffding target).
    pub kept_samples: usize,
    /// Sketch memory, bytes.
    pub sketch_bytes: usize,
    /// Bytes of the raw window the exact paths hold.
    pub window_bytes: usize,
    /// `sketch_bytes / window_bytes` — the memory the tier saves.
    pub memory_fraction: f64,
    /// Bound-checked probes (frequent, infrequent, out-of-vocabulary).
    pub probes: usize,
    /// Worst `|estimate − exact|` across the bound-checked probes.
    pub max_abs_error: u64,
    /// Worst stated bound across the same probes.
    pub max_bound: u64,
    /// Mean microseconds per `APPROX` probe through the sketch operator
    /// (parse, plan, and the O(sample) scan included).
    pub sketch_us: f64,
    /// Mean microseconds per exact answer *at the same freshness*: a
    /// subset-count scan of the raw window, which is what the exact
    /// tier costs whenever the published snapshot cannot cover the
    /// probe (mid-rebuild, or arrivals newer than the generation).
    pub exact_us: f64,
    /// Mean microseconds per `EXACT` probe through the published
    /// snapshot's postings oracle — reported for context, not raced:
    /// that path answers a *stale* generation and carries the full
    /// window in memory.
    pub oracle_us: f64,
    /// `exact_us / sketch_us`.
    pub speedup: f64,
    /// Best wall time of one Toivonen sampled rebuild (always exact).
    pub sampled_rebuild_secs: f64,
    /// Best wall time of the exact conditional re-mine it replaces.
    pub exact_rebuild_secs: f64,
    /// `exact_rebuild_secs / sampled_rebuild_secs`.
    pub rebuild_speedup: f64,
    /// Whether the timed sampled rebuild lost the gamble and fell back.
    pub sampled_fell_back: bool,
}

/// X18 — the approximate tier: sketch memory and probe latency vs the
/// exact paths, across the sparse/dense/zipf workloads. The raced
/// comparison holds freshness fixed: the sketch answers in O(sample)
/// from the live arrival stream, and the exact answer at that same
/// freshness is a subset-count scan of the raw window. The published
/// snapshot's postings oracle is timed alongside for context — it is
/// faster on point probes but answers a stale generation and keeps the
/// whole window resident, which is exactly what the tier avoids. See
/// [`x18_table`] for the rendered table and [`x18_json`] for the
/// committed `BENCH_approx.json` record.
pub fn x18_approx_cells(scale: Scale) -> Vec<ApproxCell> {
    use plt_approx::{IndicatorSketch, SampledRebuild, SketchConfig};
    use plt_query::{MemSource, PhysOp, Rows, Source, SupportSketch};
    use plt_rules::RuleConfig;

    let runs = scale.runs().max(3);
    let n = scale.pick(4_000, 20_000);
    let dense_n = scale.pick(1_500, 6_000);
    let (epsilon, delta) = (0.1, 0.01);
    let workloads: Vec<(String, Vec<Vec<Item>>, Support)> = vec![
        (
            format!("T10.I4.D{n}"),
            datasets::sparse(n),
            ((0.01 * n as f64).ceil() as Support).max(2),
        ),
        (
            format!("DENSE16.D{dense_n}"),
            datasets::dense(dense_n, 16),
            ((0.3 * dense_n as f64).ceil() as Support).max(2),
        ),
        (
            format!("ZIPF1.1.D{n}"),
            datasets::zipf(n, 1.1),
            ((0.01 * n as f64).ceil() as Support).max(2),
        ),
    ];

    let join = |probe: &[Item]| {
        probe
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut cells = Vec::new();
    for (dataset, db, min_sup) in workloads {
        let plt = construct(&db, min_sup, ConstructOptions::conditional()).expect("construct");
        let result = ConditionalMiner::default().mine(&db, min_sup);
        let mut sketch = IndicatorSketch::new(SketchConfig {
            epsilon,
            delta,
            capacity: db.len(),
            seed: 0x18_c0de,
        });
        for t in &db {
            sketch.observe(t);
        }
        assert!(
            !sketch.is_exhaustive(),
            "{dataset}: the window must be large enough that the sketch samples"
        );
        let kept_samples = sketch.kept_len();
        let sketch_bytes = sketch.memory_bytes();
        let window_bytes: usize = db
            .iter()
            .map(|t| std::mem::size_of_val(t.as_slice()) + std::mem::size_of::<Vec<Item>>())
            .sum();
        let src =
            MemSource::build(1, plt, &result, RuleConfig::default()).with_sketch(Box::new(sketch));

        let ranked = src.ranked();
        assert!(!ranked.is_empty(), "{dataset} must induce frequent sets");
        let items: Vec<Item> = src.extensions_of(&[]).iter().map(|&(i, _)| i).collect();

        // Infrequent probes: small combinations of frequent items that
        // did not make the index, found by a deterministic stride scan.
        let mut infrequent: Vec<Vec<Item>> = Vec::new();
        'search: for width in 2..=4usize {
            let stride = (items.len() / width).max(1);
            for start in 0..items.len() {
                let mut probe: Vec<Item> = (0..width)
                    .map(|k| items[(start + k * stride) % items.len()])
                    .collect();
                probe.sort_unstable();
                probe.dedup();
                if probe.len() == width
                    && src.support_of(&probe).0 < min_sup
                    && !infrequent.contains(&probe)
                {
                    infrequent.push(probe);
                    if infrequent.len() == 8 {
                        break 'search;
                    }
                }
            }
        }
        assert!(
            !infrequent.is_empty(),
            "{dataset}: no infrequent probe found — widen the search"
        );

        // Live bound check over frequent, infrequent, and
        // out-of-vocabulary probes: every estimate must honor the bound
        // it states.
        let mut bound_probes: Vec<Vec<Item>> = vec![
            ranked[0].0.items().to_vec(),
            ranked[ranked.len() / 2].0.items().to_vec(),
            ranked[ranked.len() - 1].0.items().to_vec(),
        ];
        bound_probes.extend(infrequent.iter().cloned());
        bound_probes.push(vec![Item::MAX - 1]);
        let mut max_abs_error = 0u64;
        let mut max_bound = 0u64;
        for probe in &bound_probes {
            let exact = db
                .iter()
                .filter(|t| probe.iter().all(|i| t.contains(i)))
                .count() as u64;
            let expr = format!("SUPPORT OF {{{}}} APPROX", join(probe));
            let (rows, prov) =
                plt_query::run_forced(&expr, &src, PhysOp::SketchProbe).expect("sketch probe");
            let est = match rows {
                Rows::Support { support, .. } => support,
                other => panic!("support probe returned {other:?}"),
            };
            let bound = prov.error_bound.expect("sketch answers state a bound");
            assert!(
                est.abs_diff(exact) <= bound,
                "{dataset}: |{est} - {exact}| > {bound} on {probe:?}"
            );
            max_abs_error = max_abs_error.max(est.abs_diff(exact));
            max_bound = max_bound.max(bound);
        }

        // Latency: the same infrequent probes through the sketch
        // operator, through an exact scan of the raw window (the
        // equal-freshness baseline), and through the snapshot oracle.
        let approx_exprs: Vec<String> = infrequent
            .iter()
            .map(|p| format!("SUPPORT OF {{{}}} APPROX", join(p)))
            .collect();
        let exact_exprs: Vec<String> = infrequent
            .iter()
            .map(|p| format!("SUPPORT OF {{{}}}", join(p)))
            .collect();
        let (_, t_sketch) = time_best(runs, || {
            approx_exprs
                .iter()
                .map(|e| {
                    match plt_query::run_forced(e, &src, PhysOp::SketchProbe)
                        .expect("sketch probe")
                        .0
                    {
                        Rows::Support { support, .. } => support,
                        _ => unreachable!(),
                    }
                })
                .sum::<u64>()
        });
        let (_, t_exact) = time_best(runs, || {
            infrequent
                .iter()
                .map(|probe| {
                    db.iter()
                        .filter(|t| probe.iter().all(|i| t.contains(i)))
                        .count() as u64
                })
                .sum::<u64>()
        });
        let (_, t_oracle) = time_best(runs, || {
            exact_exprs
                .iter()
                .map(|e| {
                    match plt_query::run(e, &src, &mut plt_obs::Obs::none())
                        .expect("exact probe")
                        .0
                    {
                        Rows::Support { support, .. } => support,
                        _ => unreachable!(),
                    }
                })
                .sum::<u64>()
        });
        let sketch_us = t_sketch.as_secs_f64() * 1e6 / approx_exprs.len() as f64;
        let exact_us = t_exact.as_secs_f64() * 1e6 / infrequent.len() as f64;
        let oracle_us = t_oracle.as_secs_f64() * 1e6 / exact_exprs.len() as f64;

        // Rebuild: the Toivonen gamble vs the exact re-mine, answers
        // asserted identical (the sampled path is always exact).
        let sampler = SampledRebuild::default();
        let ((sampled_result, outcome), t_sampled) =
            time_best(runs, || sampler.mine(&db, min_sup, 1));
        let (exact_result, t_exact_rebuild) =
            time_best(runs, || ConditionalMiner::default().mine(&db, min_sup));
        assert_eq!(
            sampled_result.sorted(),
            exact_result.sorted(),
            "{dataset}: sampled rebuild must stay exact"
        );

        cells.push(ApproxCell {
            dataset,
            transactions: db.len(),
            min_sup,
            epsilon,
            delta,
            kept_samples,
            sketch_bytes,
            window_bytes,
            memory_fraction: sketch_bytes as f64 / window_bytes as f64,
            probes: bound_probes.len(),
            max_abs_error,
            max_bound,
            sketch_us,
            exact_us,
            oracle_us,
            speedup: exact_us / sketch_us.max(1e-3),
            sampled_rebuild_secs: t_sampled.as_secs_f64(),
            exact_rebuild_secs: t_exact_rebuild.as_secs_f64(),
            rebuild_speedup: t_exact_rebuild.as_secs_f64() / t_sampled.as_secs_f64().max(1e-9),
            sampled_fell_back: outcome.fell_back,
        });
    }
    cells
}

/// X18 rendered as a table.
pub fn x18_table(cells: &[ApproxCell]) -> Table {
    let mut table = Table::new(
        "X18: approximate tier — sketch memory & latency vs exact, sampled rebuild vs re-mine",
        &[
            "dataset",
            "kept",
            "memory",
            "err/bound",
            "sketch",
            "exact",
            "oracle",
            "speedup",
            "rebuild",
        ],
    );
    for c in cells {
        table.row(vec![
            c.dataset.clone(),
            format!("{}/{}", c.kept_samples, c.transactions),
            format!("{:.1}%", c.memory_fraction * 100.0),
            format!("{}/{}", c.max_abs_error, c.max_bound),
            format!("{:.1}us", c.sketch_us),
            format!("{:.1}us", c.exact_us),
            format!("{:.1}us", c.oracle_us),
            format!("{:.1}x", c.speedup),
            format!("{:.2}x", c.rebuild_speedup),
        ]);
    }
    table
}

/// X18 — approximate tier (table form, for the binary).
pub fn x18_approx(scale: Scale) -> Table {
    x18_table(&x18_approx_cells(scale))
}

/// Machine-readable record of an X18 run (the committed
/// `BENCH_approx.json`). Hand-rolled JSON, same as [`x17_json`].
pub fn x18_json(cells: &[ApproxCell], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"x18_approx\",\n");
    s.push_str(&format!(
        "  \"bench_meta\": {},\n",
        crate::bench_meta_json()
    ));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"transactions\": {}, \"min_sup\": {}, \
             \"epsilon\": {:.3}, \"delta\": {:.3}, \"kept_samples\": {}, \
             \"sketch_bytes\": {}, \"window_bytes\": {}, \"memory_fraction\": {:.4}, \
             \"probes\": {}, \"max_abs_error\": {}, \"max_bound\": {}, \
             \"sketch_us\": {:.3}, \"exact_us\": {:.3}, \"oracle_us\": {:.3}, \
             \"speedup\": {:.3}, \
             \"sampled_rebuild_secs\": {:.6}, \"exact_rebuild_secs\": {:.6}, \
             \"rebuild_speedup\": {:.3}, \"sampled_fell_back\": {}}}{}\n",
            c.dataset,
            c.transactions,
            c.min_sup,
            c.epsilon,
            c.delta,
            c.kept_samples,
            c.sketch_bytes,
            c.window_bytes,
            c.memory_fraction,
            c.probes,
            c.max_abs_error,
            c.max_bound,
            c.sketch_us,
            c.exact_us,
            c.oracle_us,
            c.speedup,
            c.sampled_rebuild_secs,
            c.exact_rebuild_secs,
            c.rebuild_speedup,
            c.sampled_fell_back,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment functions both measure and *assert* (all miners must
    // agree); running them at Quick scale is itself a meaningful
    // integration test of the whole workspace.

    #[test]
    fn sweep_cell_runs_the_full_roster_and_asserts_agreement() {
        // A miniature X1 cell: exercises every miner in the roster,
        // including the in-harness |F| agreement assertion.
        let db = crate::datasets::sparse_small(300);
        let mut table = Table::new("smoke", &["min_sup", "miner", "|F|", "time"]);
        sweep_cell(&mut table, "smoke", &db, 5, 1, &roster());
        assert_eq!(table.num_rows(), roster().len());
    }

    #[test]
    fn x4_quick_runs_and_agrees() {
        let t = x4_topdown_crossover(Scale::Quick);
        assert_eq!(t.num_rows(), 5 * 5);
    }

    #[test]
    fn x6_reports_compression() {
        let t = x6_compression(Scale::Quick);
        assert_eq!(t.num_rows(), 16);
        // The compressed PLT must beat the in-memory table on both
        // datasets (ratio vs table < 1).
        for row in 0..t.num_rows() {
            if t.cell(row, 1) == "ratio vs table" {
                let ratio: f64 = t.cell(row, 2).parse().unwrap();
                assert!(ratio < 1.0, "ratio {ratio} on {}", t.cell(row, 0));
            }
        }
    }

    #[test]
    fn x7_verdicts_agree() {
        let t = x7_subset_check(Scale::Quick);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), t.cell(1, 1));
    }

    #[test]
    fn x8_structures_build() {
        let t = x8_construction(Scale::Quick);
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn x12_engines_agree_and_emit_json() {
        let cells = x12_engine_cells(Scale::Quick);
        assert_eq!(cells.len(), 5);
        for c in &cells {
            assert!(c.itemsets > 0, "empty family on {}", c.dataset);
            assert!(c.map_secs > 0.0 && c.arena_secs > 0.0);
            assert!(
                c.construct_rank_secs > 0.0 && c.construct_encode_secs > 0.0,
                "missing construction phases on {}",
                c.dataset
            );
            assert!(
                c.arena_stats.bytes_peak > 0,
                "no arena footprint on {}",
                c.dataset
            );
        }
        let json = x12_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x12_engine_compare\""));
        assert!(json.contains("\"bench_meta\""));
        assert!(json.contains("\"rustc\""));
        assert_eq!(json.matches("\"dataset\"").count(), 5);
        assert_eq!(json.matches("\"vectors_folded\"").count(), 5);
        assert_eq!(json.matches("\"construct_rank_secs\"").count(), 5);
        assert_eq!(x12_table(&cells).num_rows(), 5);
    }

    #[test]
    fn x13_incremental_agrees_and_emits_json() {
        let cells = x13_incremental_cells(Scale::Quick);
        // 2 datasets x 2 placement modes. Correctness (incremental ==
        // full re-mine) is asserted inside the cell builder itself.
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c.itemsets > 0, "empty family on {}", c.dataset);
            assert!(c.incremental_secs > 0.0 && c.full_secs > 0.0);
            assert!(
                c.dirty_shards >= 1 && c.dirty_shards <= c.shards,
                "dirty count out of range on {} {}",
                c.dataset,
                c.mode
            );
            if c.mode == "localized" {
                assert!(
                    c.dirty_shards < c.shards,
                    "a localized delta must leave clean shards on {}",
                    c.dataset
                );
            }
        }
        let json = x13_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x13_incremental\""));
        assert!(json.contains("\"bench_meta\""));
        assert_eq!(json.matches("\"dataset\"").count(), 4);
        assert_eq!(json.matches("\"speedup\"").count(), 4);
        assert_eq!(x13_table(&cells).num_rows(), 4);
    }

    #[test]
    fn x15_storage_recovers_and_emits_json() {
        let cells = x15_storage_cells(Scale::Quick);
        // 2 datasets. Correctness (WAL recovery == full re-mine, cold
        // lookups == exact supports) is asserted inside the cell builder.
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.wal_deltas > 0 && c.wal_bytes > 0, "{}", c.dataset);
            assert!(c.recovery_wal_secs > 0.0 && c.recovery_ckpt_secs > 0.0);
            assert!(c.cold_lookups > 0 && c.cold_lookup_us > 0.0);
            assert!(
                c.segment_lookups > 0,
                "a 2-shard budget must push lookups to mmap on {}",
                c.dataset
            );
            assert!(c.segments >= 1 && c.segment_bytes > 0);
        }
        let json = x15_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x15_storage\""));
        assert!(json.contains("\"bench_meta\""));
        assert_eq!(json.matches("\"dataset\"").count(), 2);
        assert_eq!(json.matches("\"recovery_wal_secs\"").count(), 2);
        assert_eq!(x15_table(&cells).num_rows(), 2);
    }

    #[test]
    fn x17_planner_wins_every_cell_and_emits_json() {
        let cells = x17_query_cells(Scale::Quick);
        // 3 datasets × (support + rules + mine-cond). Result equality
        // between every applicable operator and the planner's answer is
        // asserted inside the cell builder.
        assert_eq!(cells.len(), 9);
        let plans: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.plan.as_str()).collect();
        assert!(plans.contains("index_point"), "{plans:?}");
        assert!(plans.contains("rule_scan"), "{plans:?}");
        assert!(plans.contains("ext_traverse"), "{plans:?}");
        // Every physical operator is timed somewhere in the grid, even
        // where the planner (correctly) avoids it.
        let timed: std::collections::BTreeSet<&str> = cells
            .iter()
            .flat_map(|c| c.ops.iter().map(|(op, _)| op.as_str()))
            .collect();
        for op in [
            "index_point",
            "ext_traverse",
            "rule_scan",
            "cond_mine",
            "full_scan",
        ] {
            assert!(timed.contains(op), "{timed:?} missing {op}");
        }
        for c in &cells {
            assert!(c.plan_us > 0.0 && c.naive_us > 0.0);
            assert!(c.cost.is_finite() && c.cost >= 0.0);
            assert_ne!(
                c.plan, "full_scan",
                "planner fell back to the scan it is judged against: {} / {}",
                c.dataset, c.query
            );
        }
        let json = x17_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x17_query\""));
        assert!(json.contains("\"bench_meta\""));
        assert_eq!(json.matches("\"speedup\"").count(), cells.len());
        assert_eq!(x17_table(&cells).num_rows(), cells.len());
    }

    #[test]
    fn x18_sketch_stays_bounded_cheap_and_small_and_emits_json() {
        let cells = x18_approx_cells(Scale::Quick);
        // One cell per workload; within-bound, sampled-rebuild-exactness,
        // and sketch-actually-sampling are asserted inside the builder.
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert!(
                c.kept_samples < c.transactions,
                "{}: sketch kept the whole window",
                c.dataset
            );
            assert!(
                c.memory_fraction < 0.35,
                "{}: sketch holds {:.1}% of the window — no memory win",
                c.dataset,
                c.memory_fraction * 100.0
            );
            assert!(c.max_abs_error <= c.max_bound, "{}", c.dataset);
            assert!(
                c.speedup > 1.0,
                "{}: sketch probe ({:.1}us) slower than the equal-freshness \
                 exact window scan ({:.1}us)",
                c.dataset,
                c.sketch_us,
                c.exact_us
            );
            assert!(c.oracle_us > 0.0);
            assert!(c.sampled_rebuild_secs > 0.0 && c.exact_rebuild_secs > 0.0);
        }
        let json = x18_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x18_approx\""));
        assert!(json.contains("\"bench_meta\""));
        assert_eq!(json.matches("\"memory_fraction\"").count(), cells.len());
        assert_eq!(json.matches("\"speedup\"").count(), cells.len());
        assert_eq!(x18_table(&cells).num_rows(), cells.len());
    }

    #[test]
    fn x16_load_driver_agrees_with_the_engine_and_emits_json() {
        use std::sync::Arc;

        use plt_rules::RuleConfig;
        use plt_serve::{serve, Engine, Request, ServerConfig, ServerModel, Snapshot};

        // Bounded live smoke: a small herd on each model, every wire
        // reply asserted against the in-process answer inside the
        // driver. The full grid (and the idle ceiling) runs via
        // `experiments --exp x16`; keeping the herd small here keeps
        // the tier-1 suite fast.
        let db = datasets::sparse_small(300);
        let result = ConditionalMiner::default().mine(&db, 2);
        let plt = construct(&db, 2, ConstructOptions::conditional()).expect("construct");
        let engine = Arc::new(Engine::new(Snapshot::build(
            1,
            plt,
            &result,
            RuleConfig::default(),
        )));
        let items: Vec<Item> = result
            .iter()
            .max_by_key(|&(_, support)| support)
            .map(|(itemset, _)| itemset.items().to_vec())
            .expect("frequent family");
        let request = Request::Support { items };
        let payload = request.to_json().to_string();
        let expected = engine.handle(&request);

        let models: Vec<ServerModel> = if cfg!(target_os = "linux") {
            vec![ServerModel::Threads, ServerModel::Reactor]
        } else {
            vec![ServerModel::Threads]
        };
        let mut load = Vec::new();
        for model in models {
            let handle = serve(
                "127.0.0.1:0",
                engine.clone(),
                None,
                ServerConfig {
                    server_model: model,
                    ..ServerConfig::default()
                },
            )
            .expect("bind");
            let (elapsed, mut lat) = x16_drive_load(handle.addr(), 8, 4, &payload, &expected);
            lat.sort_unstable();
            assert_eq!(lat.len(), 32, "{model:?}: 8 clients x 4 ops");
            assert!(elapsed > 0.0);
            load.push(ServeLoadCell {
                model: model.as_str().to_string(),
                clients: 8,
                ops: lat.len(),
                elapsed_secs: elapsed,
                throughput: lat.len() as f64 / elapsed,
                p50_us: percentile_us(&lat, 0.50),
                p99_us: percentile_us(&lat, 0.99),
            });
            handle.shutdown();
        }
        for c in &load {
            assert!(c.throughput > 0.0 && c.p99_us >= c.p50_us, "{}", c.model);
        }

        let cells = ServeCells {
            idle: Some(IdleCell {
                target: 16,
                opened: 16,
                active_connections: 17,
                reactors: 1,
                nofile: 1_024,
                probe_p50_us: 1.0,
                probe_p99_us: 2.0,
            }),
            load,
        };
        let json = x16_json(&cells, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x16_async_serve\""));
        assert!(json.contains("\"bench_meta\""));
        assert!(json.contains("\"active_connections\": 17"));
        assert_eq!(json.matches("\"model\"").count(), cells.load.len());
        assert_eq!(x16_table(&cells).num_rows(), cells.load.len() + 1);
    }

    #[test]
    fn x14_kernels_agree_and_emit_json() {
        let cells = x14_simd_cells(Scale::Quick);
        // 3 datasets; cross-backend and cross-representation agreement
        // is asserted inside the cell builder itself.
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert!(c.itemsets > 0, "empty family on {}", c.dataset);
            assert!(c.arena_scalar_secs > 0.0 && c.arena_simd_secs > 0.0);
            assert!(c.eclat_tidset_secs > 0.0 && c.eclat_bitset_secs > 0.0);
            assert!(
                c.simd_calls + c.scalar_calls > 0,
                "no kernel dispatches recorded on {}",
                c.dataset
            );
            assert!(
                c.bitmap_intersections > 0,
                "bitset Eclat must join through the bitmap kernels on {}",
                c.dataset
            );
            // Without the `simd` feature every dispatch must be scalar.
            if !plt_core::kernels::simd_available() {
                assert_eq!(c.simd_calls, 0, "phantom SIMD calls on {}", c.dataset);
            }
        }
        let kernels = x14_kernel_cells(Scale::Quick);
        // 5 primitives x 2 sizes; checksums compared inside the builder.
        assert_eq!(kernels.len(), 10);
        for k in &kernels {
            assert!(k.scalar_secs > 0.0 && k.simd_secs > 0.0, "{}", k.kernel);
        }
        let json = x14_json(&cells, &kernels, Scale::Quick);
        assert!(json.contains("\"experiment\": \"x14_simd_kernels\""));
        assert!(json.contains("\"bench_meta\""));
        assert_eq!(json.matches("\"dataset\"").count(), 3);
        assert_eq!(json.matches("\"arena_speedup\"").count(), 3);
        assert_eq!(json.matches("\"bitmap_intersections\"").count(), 3);
        assert_eq!(json.matches("\"kernel\":").count(), 13); // 3 nested + 10 micro
        assert_eq!(x14_table(&cells, &kernels).num_rows(), 3 * 2 + 10);
    }

    #[test]
    fn x9_policies_agree_on_the_answer() {
        let t = x9_rank_policy(Scale::Quick);
        assert_eq!(t.num_rows(), 6);
        // |F| must match across the three policies within each dataset.
        for base in [0, 3] {
            assert_eq!(t.cell(base, 4), t.cell(base + 1, 4));
            assert_eq!(t.cell(base, 4), t.cell(base + 2, 4));
        }
    }
}
