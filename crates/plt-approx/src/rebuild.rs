//! Sampled re-mining as a fast-path snapshot rebuild.
//!
//! Toivonen's algorithm (already in `plt-baselines` as the comparative
//! baseline) is a natural serving-side rebuild accelerator: mine a
//! sample of the window at lowered support, verify through the negative
//! border in one exact counting pass, and only fall back to a full
//! exact re-mine when a border itemset turns out frequent. The result
//! is **always exact** — the sampling is a latency gamble, never a
//! correctness one — which is what makes it safe to wire into the
//! serving builder behind a mode switch.

use plt_baselines::{SamplingMiner, SamplingOutcome};
use plt_core::item::{Item, Support};
use plt_core::miner::MiningResult;

/// Configuration for the sampled rebuild path; maps onto
/// [`SamplingMiner`] with serving-appropriate defaults (a larger sample
/// and more slack than the benchmark baseline, to keep the fallback
/// rate low on drifting windows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledRebuild {
    pub sample_fraction: f64,
    pub support_slack: f64,
    pub seed: u64,
    pub max_attempts: usize,
}

impl Default for SampledRebuild {
    fn default() -> SampledRebuild {
        SampledRebuild {
            sample_fraction: 0.4,
            support_slack: 0.3,
            seed: 0x5a3b_1e5d,
            max_attempts: 2,
        }
    }
}

impl SampledRebuild {
    /// Mines `window` exactly at `min_support`, preferring the sampled
    /// path; the outcome says which path produced the (always exact)
    /// answer. Each rebuild generation should pass a fresh `generation`
    /// so successive rebuilds draw different samples.
    pub fn mine(
        &self,
        window: &[Vec<Item>],
        min_support: Support,
        generation: u64,
    ) -> (MiningResult, SamplingOutcome) {
        let miner = SamplingMiner {
            sample_fraction: self.sample_fraction,
            support_slack: self.support_slack,
            seed: self.seed.wrapping_add(generation.wrapping_mul(0x9e37_79b9)),
            max_attempts: self.max_attempts,
        };
        miner.mine_with_outcome(window, min_support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::{BruteForceMiner, Miner};

    fn window(n: usize) -> Vec<Vec<Item>> {
        (0..n as u32)
            .map(|i| {
                let mut t = vec![i % 7, 7 + (i % 4)];
                if i % 3 == 0 {
                    t.push(20);
                }
                t.sort_unstable();
                t
            })
            .collect()
    }

    #[test]
    fn sampled_rebuild_is_exact_across_generations() {
        let w = window(400);
        let expect = BruteForceMiner.mine(&w, 20).sorted();
        for generation in 0..5 {
            let (got, _) = SampledRebuild::default().mine(&w, 20, generation);
            assert_eq!(got.sorted(), expect, "generation {generation}");
        }
    }

    #[test]
    fn generations_vary_the_sample_seed() {
        let a = SampledRebuild::default();
        let w = window(200);
        // Both exact regardless; just exercise two distinct seeds.
        let (r0, o0) = a.mine(&w, 10, 0);
        let (r1, o1) = a.mine(&w, 10, 1);
        assert_eq!(r0.sorted(), r1.sorted());
        assert!(o0.attempts >= 1 || o0.fell_back);
        assert!(o1.attempts >= 1 || o1.fell_back);
    }
}
