//! LEB128 variable-length integers over the `bytes` buffer traits.
//!
//! Position values are rank deltas and cluster near 1; frequencies are
//! Zipf-ish. Both fit one byte in the overwhelmingly common case, which is
//! the entire compression argument of this crate.

use bytes::{Buf, BufMut};

/// Encodes `value` as LEB128 into `buf`.
pub fn put_u64<B: BufMut>(buf: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Encodes a `u32` (positions and ranks).
pub fn put_u32<B: BufMut>(buf: &mut B, value: u32) {
    put_u64(buf, value as u64);
}

/// Decodes a LEB128 `u64` from `buf`.
///
/// Only *minimal* encodings are accepted: a terminator byte of `0x00`
/// after a continuation byte (a trailing zero group the encoder would
/// never emit), or data bits in the tenth byte beyond bit 63, are
/// rejected as overlong. This keeps the encoding canonical — exactly one
/// byte string per value — which on-disk formats rely on for
/// deterministic, checksummable output.
///
/// # Panics
/// Panics on truncated input, on encodings longer than 10 bytes, and on
/// overlong (non-minimal) encodings — all indicate corruption of an
/// internal buffer or file, not user error.
pub fn get_u64<B: Buf>(buf: &mut B) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        assert!(buf.has_remaining(), "truncated varint");
        let byte = buf.get_u8();
        assert!(shift < 64, "varint too long");
        assert!(shift == 0 || byte != 0, "overlong varint");
        assert!(shift < 63 || byte & 0x7f <= 1, "overlong varint");
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

/// Decodes a `u32`, panicking if the stored value overflows.
pub fn get_u32<B: Buf>(buf: &mut B) -> u32 {
    let v = get_u64(buf);
    u32::try_from(v).expect("varint exceeds u32")
}

/// Number of bytes the LEB128 encoding of `value` takes.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v));
        let mut slice = buf.as_slice();
        let back = get_u64(&mut slice);
        assert!(slice.is_empty(), "residual bytes");
        back
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn boundaries_round_trip() {
        for v in [127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn u32_helpers() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 300);
        let mut slice = buf.as_slice();
        assert_eq!(get_u32(&mut slice), 300);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_input_panics() {
        let mut slice: &[u8] = &[0x80];
        get_u64(&mut slice);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn empty_buffer_decode_panics() {
        let mut slice: &[u8] = &[];
        get_u64(&mut slice);
    }

    #[test]
    fn empty_value_stream_is_zero_bytes() {
        let values: [u64; 0] = [];
        let mut buf = Vec::new();
        for &v in &values {
            put_u64(&mut buf, v);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn u64_max_takes_ten_bytes_and_round_trips() {
        assert_eq!(encoded_len(u64::MAX), 10);
        assert_eq!(roundtrip(u64::MAX), u64::MAX);
    }

    #[test]
    fn every_strict_prefix_of_a_valid_encoding_panics_as_truncated() {
        for v in [128u64, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            for cut in 0..buf.len() {
                let prefix = buf[..cut].to_vec();
                let err = std::panic::catch_unwind(move || {
                    let mut slice = prefix.as_slice();
                    get_u64(&mut slice)
                })
                .expect_err("prefix of len {cut} for {v} must not decode");
                let msg = err
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_owned)
                    .or_else(|| err.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                assert!(msg.contains("truncated"), "value {v} cut {cut}: {msg}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "varint too long")]
    fn overlong_encoding_panics() {
        // Ten continuation bytes push the shift past 63; the decoder must
        // reject rather than silently wrap.
        let mut bytes = vec![0x80u8; 10];
        bytes.push(0x00);
        let mut slice = bytes.as_slice();
        get_u64(&mut slice);
    }

    #[test]
    #[should_panic(expected = "overlong varint")]
    fn non_minimal_trailing_zero_panics() {
        // [0x80, 0x00] decodes to 0 but the minimal encoding of 0 is the
        // single byte 0x00; the padded form must be rejected.
        let mut slice: &[u8] = &[0x80, 0x00];
        get_u64(&mut slice);
    }

    #[test]
    #[should_panic(expected = "overlong varint")]
    fn non_minimal_long_padding_panics() {
        let mut slice: &[u8] = &[0xff, 0x80, 0x00];
        get_u64(&mut slice);
    }

    #[test]
    #[should_panic(expected = "overlong varint")]
    fn tenth_byte_overflow_bits_panic() {
        // Ten bytes with data bits above bit 63: the old decoder silently
        // truncated these; they must be rejected.
        let mut bytes = vec![0xffu8; 9];
        bytes.push(0x7f);
        let mut slice = bytes.as_slice();
        get_u64(&mut slice);
    }

    #[test]
    fn zero_decodes_from_its_minimal_byte() {
        let mut slice: &[u8] = &[0x00];
        assert_eq!(get_u64(&mut slice), 0);
        assert!(slice.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn get_u32_overflow_panics() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut slice = buf.as_slice();
        get_u32(&mut slice);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(roundtrip(v), v);
        }

        #[test]
        fn prop_encoded_len_matches(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            prop_assert_eq!(buf.len(), encoded_len(v));
        }

        /// Concatenated streams decode in order.
        #[test]
        fn prop_stream_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut buf = Vec::new();
            for &v in &vs {
                put_u64(&mut buf, v);
            }
            let mut slice = buf.as_slice();
            for &v in &vs {
                prop_assert_eq!(get_u64(&mut slice), v);
            }
            prop_assert!(slice.is_empty());
        }
    }
}
