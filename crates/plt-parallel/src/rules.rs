//! Parallel association-rule generation.
//!
//! Rule generation decomposes perfectly: the rules derived from one
//! frequent itemset depend only on that itemset and the (read-only)
//! support table, so the per-itemset *ap-genrules* runs fan out over the
//! Rayon pool with no coordination. On result sets with tens of thousands
//! of frequent itemsets this is the step that dominates an end-to-end
//! association-rules pipeline.

use rayon::prelude::*;

use plt_core::item::Itemset;
use plt_core::miner::MiningResult;
use plt_rules::{rules_for_itemset, Rule, RuleConfig};

/// Generates all rules meeting the confidence threshold, parallelising
/// over the frequent itemsets. Output set equals
/// [`plt_rules::generate_rules`] (order unspecified, as there).
pub fn par_generate_rules(result: &MiningResult, config: RuleConfig) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&config.min_confidence),
        "confidence is a probability"
    );
    let itemsets: Vec<(&Itemset, u64)> = result.iter().filter(|(s, _)| s.len() >= 2).collect();
    itemsets
        .par_iter()
        .map(|&(itemset, support)| rules_for_itemset(itemset, support, result, config))
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::{BruteForceMiner, Miner};
    use plt_rules::{generate_rules, sort_rules};
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<u32>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn normalised(mut rules: Vec<Rule>) -> Vec<Rule> {
        sort_rules(&mut rules);
        rules
    }

    #[test]
    fn matches_sequential_generation() {
        let result = BruteForceMiner.mine(&table1(), 2);
        for conf in [0.0, 0.5, 0.8, 1.0] {
            let config = RuleConfig {
                min_confidence: conf,
            };
            let seq = normalised(generate_rules(&result, config));
            let par = normalised(par_generate_rules(&result, config));
            assert_eq!(par.len(), seq.len(), "conf {conf}");
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.antecedent, b.antecedent);
                assert_eq!(a.consequent, b.consequent);
                assert!((a.confidence - b.confidence).abs() < 1e-12);
                assert!((a.lift - b.lift).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_result_yields_no_rules() {
        let result = BruteForceMiner.mine(&table1(), 10);
        assert!(par_generate_rules(&result, RuleConfig::default()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Parallel and sequential rule generation agree on random data.
        #[test]
        fn prop_matches_sequential(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
            conf_pct in 0u32..=100,
        ) {
            let db: Vec<Vec<u32>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let result = BruteForceMiner.mine(&db, min_support);
            let config = RuleConfig {
                min_confidence: conf_pct as f64 / 100.0,
            };
            let seq = normalised(generate_rules(&result, config));
            let par = normalised(par_generate_rules(&result, config));
            prop_assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                prop_assert_eq!(&a.antecedent, &b.antecedent);
                prop_assert_eq!(&a.consequent, &b.consequent);
            }
        }
    }
}
