//! The sharded incremental mining pipeline.
//!
//! See the crate docs for the decomposition argument. The pipeline owns
//! the transaction window, exact item counts, the live [`Plt`], the shard
//! bounds, and one [`MiningResult`] fragment per shard; applying a
//! [`Delta`] updates the structure in place, re-mines only the dirty
//! shards (in parallel, one [`ArenaPool`] per rayon worker), and merges
//! the fragments into a fresh snapshot.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use plt_core::arena::ArenaPool;
use plt_core::conditional::mine_conditional;
use plt_core::error::{PltError, Result};
use plt_core::hash::{FxHashMap, FxHashSet};
use plt_core::item::{Item, Itemset, Rank, Support};
use plt_core::miner::MiningResult;
use plt_core::plt::Plt;
use plt_core::ranking::{ItemRanking, RankPolicy};
use plt_core::CondEngine;
use plt_obs::Obs;
use rayon::prelude::*;

use crate::project::project_marked;

/// Default number of rank-range shards. Small enough that fragments stay
/// chunky (merge cost is per-itemset, not per-shard), large enough that a
/// localized delta leaves most of the tree untouched.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// Configuration for a [`ShardedPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of rank-range shards to partition the frequent ranks into.
    /// Clamped to `1..=ranking.len()` at rebuild time.
    pub shard_count: usize,
    /// Absolute minimum support (must be ≥ 1).
    pub min_support: Support,
    /// Item ordering policy for the ranking.
    pub rank_policy: RankPolicy,
    /// Conditional-mining engine used when re-mining a shard.
    pub engine: CondEngine,
    /// Optional sliding-window capacity: when set, applying an add beyond
    /// capacity evicts the oldest transaction first (counted as a removal
    /// for dirty-shard purposes). `None` means the window is unbounded.
    pub capacity: Option<usize>,
    /// When true, [`ShardedPipeline::apply`] does *not* merge the shard
    /// fragments into the snapshot after re-mining; `result()` stays
    /// empty. Set by storage layers (plt-store's `DurablePipeline`) that
    /// spill cold fragments to disk and assemble query answers per shard,
    /// where an eager merge would force every spilled shard resident.
    pub defer_merge: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shard_count: DEFAULT_SHARD_COUNT,
            min_support: 2,
            rank_policy: RankPolicy::Lexicographic,
            engine: CondEngine::Arena,
            capacity: None,
            defer_merge: false,
        }
    }
}

/// A batch of transaction-level changes to apply atomically: removals
/// first, then adds (with capacity eviction interleaved per add).
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Transactions entering the database.
    pub adds: Vec<Vec<Item>>,
    /// Transactions leaving the database. Each must currently be present
    /// (compared as an item *set*: order and duplicates are ignored).
    pub removes: Vec<Vec<Item>>,
}

impl Delta {
    /// A pure-insert delta.
    pub fn add(adds: Vec<Vec<Item>>) -> Delta {
        Delta {
            adds,
            removes: Vec::new(),
        }
    }

    /// Total number of transaction-level changes in the batch.
    pub fn len(&self) -> usize {
        self.adds.len() + self.removes.len()
    }

    /// True when the delta contains no changes.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// What one [`ShardedPipeline::apply`] call did, with phase timings.
#[derive(Debug, Clone, Default)]
pub struct RebuildReport {
    /// Number of shards the tree is currently partitioned into.
    pub total_shards: usize,
    /// How many shards the delta dirtied (and were therefore re-mined).
    pub dirty_shards: usize,
    /// True when the frequent-item set drifted: the pipeline re-ranked,
    /// rebuilt the PLT from the window and re-mined every shard.
    pub reranked: bool,
    /// Time spent updating the window, counts and PLT structure.
    pub update: Duration,
    /// Time spent projecting and re-mining the dirty shards (wall clock
    /// of the parallel section, projection included).
    pub remine: Duration,
    /// Time spent merging the fragments into the snapshot.
    pub merge: Duration,
    /// Per-shard re-mine durations, `(shard index, time)`, sorted by
    /// shard index. CPU time inside the parallel section, so the entries
    /// can sum to more than `remine` wall clock.
    pub shard_timings: Vec<(usize, Duration)>,
}

impl RebuildReport {
    /// Total rebuild wall clock (update + remine + merge).
    pub fn total(&self) -> Duration {
        self.update + self.remine + self.merge
    }
}

/// Sharded, incrementally updatable mining pipeline.
///
/// Invariants between calls:
/// - `window` holds every live transaction, normalized (sorted, deduped);
/// - `counts` is the exact item→frequency map of the window;
/// - the set of ranked items equals the set of items with
///   `counts[item] >= min_support` (enforced by the drift check);
/// - `plt` contains exactly the window's projections under that ranking;
/// - every *clean* fragment `s` equals the frequent itemsets whose last
///   (maximum) rank falls in `(bounds[s], bounds[s+1]]`.
///
/// # Errors
///
/// [`apply`](Self::apply) fails on a removal of an absent transaction
/// ([`PltError::NotPresent`]). The failure is **not** transactional:
/// changes earlier in the batch remain applied and the structure stays
/// internally consistent, but callers who need atomicity should validate
/// removals before applying.
pub struct ShardedPipeline {
    config: ShardConfig,
    window: VecDeque<Vec<Item>>,
    counts: FxHashMap<Item, Support>,
    plt: Plt,
    /// `bounds.len() == shards + 1`; shard `s` covers ranks
    /// `(bounds[s], bounds[s+1]]`.
    bounds: Vec<Rank>,
    /// One fragment per shard; `None` when the fragment has been evicted
    /// by a storage layer (spilled to disk). A dirty shard's fragment is
    /// recomputed from the PLT regardless, so eviction never loses data.
    fragments: Vec<Option<MiningResult>>,
    dirty: Vec<bool>,
    merged: MiningResult,
    last_report: RebuildReport,
}

fn normalize(transaction: &[Item]) -> Vec<Item> {
    let mut t = transaction.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

impl ShardedPipeline {
    /// Builds the pipeline over an initial batch of transactions and mines
    /// it (all shards start dirty). Rejects a zero minimum support.
    pub fn new(initial: &[Vec<Item>], config: ShardConfig) -> Result<ShardedPipeline> {
        if config.min_support == 0 {
            return Err(PltError::ZeroMinSupport);
        }
        let ranking = ItemRanking::from_frequent_items(Vec::new(), config.rank_policy);
        let plt = Plt::new(ranking, config.min_support)?;
        let mut pipeline = ShardedPipeline {
            window: VecDeque::new(),
            counts: FxHashMap::default(),
            plt,
            bounds: vec![0, 0],
            fragments: vec![None],
            dirty: vec![true],
            merged: MiningResult::new(config.min_support, 0),
            last_report: RebuildReport::default(),
            config,
        };
        // The initial build is just a big delta against the empty window:
        // the drift check sees every frequent item unranked and triggers
        // the full rank-and-rebuild path.
        pipeline.apply(Delta::add(initial.to_vec()))?;
        Ok(pipeline)
    }

    /// Applies a delta without observability. See [`apply_obs`](Self::apply_obs).
    pub fn apply(&mut self, delta: Delta) -> Result<RebuildReport> {
        self.apply_obs(delta, &mut Obs::none())
    }

    /// Applies a batch of adds/removes, re-mines the dirty shards and
    /// refreshes the merged snapshot. Returns the rebuild report (also
    /// retrievable later via [`last_report`](Self::last_report)).
    pub fn apply_obs(&mut self, delta: Delta, obs: &mut Obs) -> Result<RebuildReport> {
        let started = Instant::now();
        let mut touched: FxHashSet<Rank> = FxHashSet::default();

        for raw in &delta.removes {
            let t = normalize(raw);
            let pos = self
                .window
                .iter()
                .position(|w| *w == t)
                .ok_or(PltError::NotPresent)?;
            self.window.remove(pos);
            Self::decrement_counts(&mut self.counts, &t);
            touched.extend(self.plt.ranking().project(&t));
            self.plt.remove_transaction(&t)?;
        }
        for raw in &delta.adds {
            let t = normalize(raw);
            match self.config.capacity {
                Some(0) => continue, // degenerate window: retain nothing
                Some(cap) if self.window.len() >= cap => {
                    let old = self.window.pop_front().expect("window is non-empty");
                    Self::decrement_counts(&mut self.counts, &old);
                    touched.extend(self.plt.ranking().project(&old));
                    self.plt.remove_transaction(&old)?;
                }
                _ => {}
            }
            for &item in &t {
                *self.counts.entry(item).or_insert(0) += 1;
            }
            touched.extend(self.plt.ranking().project(&t));
            self.plt.insert_transaction(&t)?;
            self.window.push_back(t);
        }

        let reranked = self.ranking_drifted();
        if reranked {
            self.rebuild_structure()?;
        } else {
            for &r in &touched {
                let s = self.shard_of(r);
                self.dirty[s] = true;
            }
        }
        let update = started.elapsed();

        let (remine, shard_timings) = self.remine_dirty();

        let merge_started = Instant::now();
        if !self.config.defer_merge {
            self.merged = self.merge_fragments();
        }
        let merge = merge_started.elapsed();

        obs.span("shard/update", update);
        obs.span("shard/remine", remine);
        for &(_, d) in &shard_timings {
            obs.span("shard/remine/shard", d);
        }
        obs.span("shard/merge", merge);
        obs.counter("shard.rebuilds", 1);
        obs.counter("shard.shards_remined", shard_timings.len() as u64);
        if reranked {
            obs.counter("shard.reranks", 1);
        }
        obs.gauge("shard.total", self.dirty.len() as u64);

        let report = RebuildReport {
            total_shards: self.dirty.len(),
            dirty_shards: shard_timings.len(),
            reranked,
            update,
            remine,
            merge,
            shard_timings,
        };
        self.last_report = report.clone();
        Ok(report)
    }

    /// The merged mining result over the current window. Matches what a
    /// full re-mine from scratch at the same minimum support produces.
    pub fn result(&self) -> &MiningResult {
        &self.merged
    }

    /// The live PLT (rebuilt in place on every delta).
    pub fn plt(&self) -> &Plt {
        &self.plt
    }

    /// Number of transactions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.dirty.len()
    }

    /// The rank range `(lo, hi]` each shard covers.
    pub fn shard_ranges(&self) -> Vec<(Rank, Rank)> {
        self.bounds.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// The configuration the pipeline was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Report from the most recent rebuild.
    pub fn last_report(&self) -> &RebuildReport {
        &self.last_report
    }

    fn decrement_counts(counts: &mut FxHashMap<Item, Support>, transaction: &[Item]) {
        for &item in transaction {
            if let Some(c) = counts.get_mut(&item) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&item);
                }
            }
        }
    }

    /// True when the set of frequent items no longer matches the ranked
    /// set. Deliberately compares *sets*, not supports or rank order:
    /// stored supports change on every delta, and rank order does not
    /// change the mined result — only vocabulary changes invalidate the
    /// stored vectors and shard assignments.
    fn ranking_drifted(&self) -> bool {
        let min_support = self.config.min_support;
        let mut frequent = 0usize;
        for (&item, &count) in &self.counts {
            if count >= min_support {
                frequent += 1;
                if self.plt.ranking().rank(item).is_none() {
                    return true;
                }
            }
        }
        frequent != self.plt.ranking().len()
    }

    /// Re-ranks from the current counts, rebuilds the PLT from the window,
    /// recomputes shard bounds and marks every shard dirty.
    fn rebuild_structure(&mut self) -> Result<()> {
        let frequent: Vec<(Item, Support)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= self.config.min_support)
            .map(|(&item, &c)| (item, c))
            .collect();
        let ranking = ItemRanking::from_frequent_items(frequent, self.config.rank_policy);
        let mut plt = Plt::new(ranking, self.config.min_support)?;
        for t in &self.window {
            plt.insert_transaction(t)?;
        }
        self.plt = plt;

        let n = self.plt.ranking().len();
        let shards = self.config.shard_count.clamp(1, n.max(1));
        self.bounds = (0..=shards).map(|s| (s * n / shards) as Rank).collect();
        self.fragments = (0..shards).map(|_| None).collect();
        self.dirty = vec![true; shards];
        Ok(())
    }

    /// Shard index covering rank `r` (shard `s` covers `(bounds[s], bounds[s+1]]`).
    fn shard_of(&self, r: Rank) -> usize {
        match self.bounds.binary_search(&r) {
            Ok(i) => i - 1,
            Err(i) => i - 1,
        }
    }

    /// Projects the dirty rank ranges and re-mines each dirty shard in
    /// parallel. Returns the section's wall clock and per-shard timings.
    fn remine_dirty(&mut self) -> (Duration, Vec<(usize, Duration)>) {
        let dirty: Vec<usize> = (0..self.dirty.len()).filter(|&s| self.dirty[s]).collect();
        if dirty.is_empty() {
            return (Duration::ZERO, Vec::new());
        }
        let t0 = Instant::now();

        let n = self.plt.ranking().len();
        let mut marked = vec![false; n + 1];
        for &s in &dirty {
            for r in self.bounds[s] + 1..=self.bounds[s + 1] {
                marked[r as usize] = true;
            }
        }
        let slots = project_marked(&self.plt, &marked);

        let plt = &self.plt;
        let bounds = &self.bounds;
        let min_support = self.config.min_support;
        let engine = self.config.engine;
        let mined: Vec<(usize, MiningResult, Duration)> = dirty
            .par_iter()
            .fold(
                || (ArenaPool::new(), Vec::new()),
                |(mut pool, mut acc), &s| {
                    let shard_started = Instant::now();
                    let mut frag = MiningResult::new(min_support, plt.num_transactions());
                    for r in bounds[s] + 1..=bounds[s + 1] {
                        let slot = &slots[(r - 1) as usize];
                        if slot.support < min_support {
                            continue;
                        }
                        frag.insert(
                            Itemset::from_sorted(vec![plt.ranking().item(r)]),
                            slot.support,
                        );
                        if !slot.is_empty() {
                            frag.merge(match engine {
                                CondEngine::Arena => pool.mine_conditional(slot.iter(), plt, &[r]),
                                CondEngine::Map => mine_conditional(&slot.to_vectors(), plt, &[r]),
                            });
                        }
                    }
                    acc.push((s, frag, shard_started.elapsed()));
                    (pool, acc)
                },
            )
            .map(|(_, acc)| acc)
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        let mut timings = Vec::with_capacity(mined.len());
        for (s, frag, d) in mined {
            self.fragments[s] = Some(frag);
            self.dirty[s] = false;
            timings.push((s, d));
        }
        timings.sort_unstable_by_key(|&(s, _)| s);
        (t0.elapsed(), timings)
    }

    fn merge_fragments(&self) -> MiningResult {
        let mut merged = MiningResult::new(self.config.min_support, self.plt.num_transactions());
        for frag in &self.fragments {
            debug_assert!(
                frag.is_some(),
                "merging with an evicted fragment loses itemsets; \
                 evicting callers must set defer_merge"
            );
            if let Some(frag) = frag {
                merged.merge(frag.clone());
            }
        }
        merged
    }
}

/// Storage hooks: fragment eviction/restoration and crash recovery.
/// Consumed by plt-store's `DurablePipeline`; of no use to in-memory
/// callers (the pipeline manages its fragments itself).
impl ShardedPipeline {
    /// The live transaction window, oldest first. Transactions are stored
    /// normalized (sorted, deduped).
    pub fn window(&self) -> impl ExactSizeIterator<Item = &[Item]> {
        self.window.iter().map(Vec::as_slice)
    }

    /// Shard index covering rank `r` under the current bounds.
    pub fn shard_of_rank(&self, r: Rank) -> usize {
        self.shard_of(r)
    }

    /// True when shard `s`'s fragment is stale (will be re-mined on the
    /// next apply).
    pub fn is_dirty(&self, s: usize) -> bool {
        self.dirty[s]
    }

    /// Shard `s`'s fragment, `None` if evicted.
    pub fn fragment(&self, s: usize) -> Option<&MiningResult> {
        self.fragments[s].as_ref()
    }

    /// Removes shard `s`'s fragment from memory and returns it, leaving a
    /// spilled hole. Only meaningful under `defer_merge` — see
    /// [`ShardConfig::defer_merge`].
    pub fn evict_fragment(&mut self, s: usize) -> Option<MiningResult> {
        self.fragments[s].take()
    }

    /// Re-installs a previously evicted (spilled) fragment. Does not touch
    /// the dirty flag: a shard dirtied after eviction is re-mined from the
    /// PLT on the next apply regardless of what is installed here.
    pub fn restore_fragment(&mut self, s: usize, fragment: MiningResult) {
        self.fragments[s] = Some(fragment);
    }

    /// Rebuilds a pipeline from checkpointed state: the window, the exact
    /// ranking in force at checkpoint time, and per-shard fragments
    /// (`None` for shards whose fragments stayed on disk). Shards with no
    /// fragment are *not* dirty — their contents live in segment files;
    /// pass `dirty` to mark shards whose fragments were stale at the
    /// checkpoint.
    ///
    /// The PLT is reconstructed by re-projecting the window under the
    /// given ranking, which is deterministic (Lemma 4.1.2), so the
    /// rebuilt structure is byte-equivalent to the one that was
    /// checkpointed.
    pub fn restore(
        window: Vec<Vec<Item>>,
        ranking: ItemRanking,
        config: ShardConfig,
        fragments: Vec<Option<MiningResult>>,
        dirty: Vec<bool>,
    ) -> Result<ShardedPipeline> {
        if config.min_support == 0 {
            return Err(PltError::ZeroMinSupport);
        }
        let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
        let mut plt = Plt::new(ranking, config.min_support)?;
        let mut normalized: VecDeque<Vec<Item>> = VecDeque::with_capacity(window.len());
        for raw in window {
            let t = normalize(&raw);
            for &item in &t {
                *counts.entry(item).or_insert(0) += 1;
            }
            plt.insert_transaction(&t)?;
            normalized.push_back(t);
        }
        let n = plt.ranking().len();
        let shards = fragments.len().max(1);
        assert_eq!(
            dirty.len(),
            fragments.len(),
            "fragment/dirty length mismatch"
        );
        let bounds: Vec<Rank> = (0..=shards).map(|s| (s * n / shards) as Rank).collect();
        let mut pipeline = ShardedPipeline {
            window: normalized,
            counts,
            plt,
            bounds,
            fragments,
            dirty,
            merged: MiningResult::new(config.min_support, 0),
            last_report: RebuildReport::default(),
            config,
        };
        if pipeline.fragments.is_empty() {
            pipeline.fragments = vec![None];
            pipeline.dirty = vec![true];
        }
        if !config.defer_merge {
            // An eager-merge pipeline has no disk tier to serve holes
            // from: re-mine every missing fragment, then merge via a
            // no-op apply. Deferred-merge callers skip this — their
            // fragments may intentionally stay on disk.
            for s in 0..pipeline.fragments.len() {
                if pipeline.fragments[s].is_none() {
                    pipeline.dirty[s] = true;
                }
            }
            pipeline.apply(Delta::default())?;
        }
        Ok(pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::Miner;
    use plt_core::ConditionalMiner;
    use std::collections::BTreeMap;

    fn support_map(result: &MiningResult) -> BTreeMap<Vec<Item>, Support> {
        result
            .iter()
            .map(|(is, s)| (is.items().to_vec(), s))
            .collect()
    }

    fn full_mine(transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        ConditionalMiner::default().mine(transactions, min_support)
    }

    fn assert_matches_full(pipeline: &ShardedPipeline, window: &[Vec<Item>]) {
        let full = full_mine(window, pipeline.config().min_support);
        assert_eq!(
            support_map(pipeline.result()),
            support_map(&full),
            "incremental result diverged from full re-mine"
        );
        assert_eq!(
            pipeline.result().num_transactions(),
            window.len() as u64,
            "transaction count diverged"
        );
    }

    fn base() -> Vec<Vec<Item>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3, 4],
            vec![1, 3, 4],
            vec![2, 4],
            vec![1, 2, 3, 4],
        ]
    }

    #[test]
    fn initial_build_matches_full_mine() {
        let pipeline = ShardedPipeline::new(&base(), ShardConfig::default()).unwrap();
        assert_matches_full(&pipeline, &base());
    }

    #[test]
    fn zero_min_support_rejected() {
        let config = ShardConfig {
            min_support: 0,
            ..ShardConfig::default()
        };
        assert!(matches!(
            ShardedPipeline::new(&[], config),
            Err(PltError::ZeroMinSupport)
        ));
    }

    #[test]
    fn adds_update_result_exactly() {
        let mut window = base();
        let mut pipeline = ShardedPipeline::new(&window, ShardConfig::default()).unwrap();
        let delta = vec![vec![1, 4], vec![2, 3]];
        pipeline.apply(Delta::add(delta.clone())).unwrap();
        window.extend(delta);
        assert_matches_full(&pipeline, &window);
    }

    #[test]
    fn removes_update_result_exactly() {
        let window = base();
        let mut pipeline = ShardedPipeline::new(&window, ShardConfig::default()).unwrap();
        pipeline
            .apply(Delta {
                adds: vec![],
                removes: vec![vec![2, 3, 4]],
            })
            .unwrap();
        let remaining: Vec<Vec<Item>> = window
            .iter()
            .filter(|t| *t != &vec![2, 3, 4])
            .cloned()
            .collect();
        assert_matches_full(&pipeline, &remaining);
    }

    #[test]
    fn removing_absent_transaction_errors() {
        let mut pipeline = ShardedPipeline::new(&base(), ShardConfig::default()).unwrap();
        let err = pipeline
            .apply(Delta {
                adds: vec![],
                removes: vec![vec![7, 8, 9]],
            })
            .unwrap_err();
        assert!(matches!(err, PltError::NotPresent));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let config = ShardConfig {
            capacity: Some(4),
            ..ShardConfig::default()
        };
        let mut pipeline = ShardedPipeline::new(&base()[..4], config).unwrap();
        pipeline
            .apply(Delta::add(vec![vec![2, 4], vec![1, 2, 3, 4]]))
            .unwrap();
        // Window of 4: the two oldest base transactions were evicted.
        let window: Vec<Vec<Item>> = base()[2..].to_vec();
        assert_eq!(pipeline.len(), 4);
        assert_matches_full(&pipeline, &window);
    }

    #[test]
    fn vocabulary_drift_triggers_rerank() {
        let mut pipeline = ShardedPipeline::new(&base(), ShardConfig::default()).unwrap();
        // Item 9 is new; two adds push it to min_support and force a re-rank.
        let r1 = pipeline.apply(Delta::add(vec![vec![9, 1]])).unwrap();
        assert!(!r1.reranked, "one occurrence of item 9 is still infrequent");
        let r2 = pipeline.apply(Delta::add(vec![vec![9, 2]])).unwrap();
        assert!(r2.reranked, "item 9 reached min support: vocabulary drift");
        assert_eq!(r2.dirty_shards, r2.total_shards);
        let mut window = base();
        window.push(vec![1, 9]);
        window.push(vec![2, 9]);
        assert_matches_full(&pipeline, &window);
    }

    #[test]
    fn clean_shards_are_not_remined() {
        // Many distinct items so the rank space is wide; a delta touching
        // only low items must leave high-rank shards clean.
        let mut window: Vec<Vec<Item>> = Vec::new();
        for i in 0..40u32 {
            window.push(vec![i, i + 1, (i + 2) % 40]);
            window.push(vec![i, (i + 3) % 40]);
        }
        let config = ShardConfig {
            shard_count: 8,
            min_support: 2,
            ..ShardConfig::default()
        };
        let mut pipeline = ShardedPipeline::new(&window, config).unwrap();
        let report = pipeline.apply(Delta::add(vec![vec![0, 1, 2]])).unwrap();
        assert!(!report.reranked);
        assert!(
            report.dirty_shards < report.total_shards,
            "a localized delta dirtied {}/{} shards",
            report.dirty_shards,
            report.total_shards
        );
        window.push(vec![0, 1, 2]);
        assert_matches_full(&pipeline, &window);
    }

    #[test]
    fn map_engine_agrees() {
        let config = ShardConfig {
            engine: CondEngine::Map,
            shard_count: 3,
            ..ShardConfig::default()
        };
        let mut window = base();
        let mut pipeline = ShardedPipeline::new(&window, config).unwrap();
        pipeline
            .apply(Delta::add(vec![vec![1, 3], vec![2, 4]]))
            .unwrap();
        window.push(vec![1, 3]);
        window.push(vec![2, 4]);
        assert_matches_full(&pipeline, &window);
    }

    #[test]
    fn report_timings_cover_dirty_shards() {
        let mut pipeline = ShardedPipeline::new(&base(), ShardConfig::default()).unwrap();
        let report = pipeline.apply(Delta::add(vec![vec![1, 2, 4]])).unwrap();
        assert_eq!(report.shard_timings.len(), report.dirty_shards);
        for w in report.shard_timings.windows(2) {
            assert!(w[0].0 < w[1].0, "shard timings sorted by shard index");
        }
    }

    #[test]
    fn empty_delta_is_a_noop_rebuild() {
        let mut pipeline = ShardedPipeline::new(&base(), ShardConfig::default()).unwrap();
        let before = support_map(pipeline.result());
        let report = pipeline.apply(Delta::default()).unwrap();
        assert_eq!(report.dirty_shards, 0);
        assert!(!report.reranked);
        assert_eq!(support_map(pipeline.result()), before);
    }
}
