//! The immutable query index: a [`Snapshot`] of one mining generation.
//!
//! A snapshot is built once from a PLT and its [`MiningResult`], then
//! shared read-only behind an `Arc` (see [`engine`](crate::engine)). All
//! per-query work is lookup-shaped:
//!
//! * **Point lookups** key frequent itemsets by their **canonical
//!   position vector** (Lemma 4.1.2: the vector uniquely identifies the
//!   itemset), so `support(X)` is one rank translation plus one hash
//!   probe. Infrequent itemsets fall back to the exact
//!   [`SupportOracle`], which intersects posting lists over the PLT.
//! * **Extensions** use Lemma 4.1.3 in reverse: every frequent `Z` and
//!   droppable item `e` contribute an entry `key(Z \ {e}) → (e,
//!   support(Z))`, so "what extends X?" is again a single probe.
//! * **Top-k** reads a prefix of a support-sorted array.
//! * **Recommendations** scan precomputed association rules whose
//!   antecedent is contained in the query basket.

use std::collections::HashMap;

use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::MiningResult;
use plt_core::posvec::PositionVector;
use plt_core::query::{canonical_key, SupportOracle};
use plt_core::Plt;
use plt_rules::{generate_rules, sort_rules, Rule, RuleConfig};

/// Where a support answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportSource {
    /// Hash probe on the frequent-itemset index.
    Index,
    /// Exact fallback through the PLT's support oracle (itemset is
    /// infrequent or mentions unranked items).
    Oracle,
}

impl SupportSource {
    pub fn as_str(self) -> &'static str {
        match self {
            SupportSource::Index => "index",
            SupportSource::Oracle => "oracle",
        }
    }
}

/// A support answer with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportAnswer {
    pub support: Support,
    /// Whether the itemset met the mining threshold.
    pub frequent: bool,
    pub source: SupportSource,
}

/// One recommendation produced from the rule index.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Suggested item (not present in the query basket).
    pub item: Item,
    /// The rule that produced it.
    pub confidence: f64,
    pub lift: f64,
    pub support: Support,
    /// The rule antecedent that matched inside the basket.
    pub because: Itemset,
}

/// Immutable, read-optimized index over one mining generation.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic publish counter, bumped by the builder.
    generation: u64,
    plt: Plt,
    oracle: SupportOracle,
    /// Canonical position vector → support, one entry per frequent
    /// itemset (Lemma 4.1.2 makes this collision-free).
    index: HashMap<PositionVector, Support>,
    /// `key(Z \ {e}) → (e, support(Z))` for every frequent `Z` and every
    /// droppable `e` — Lemma 4.1.3's level-down subsets, inverted.
    /// Entries per key are sorted by descending support.
    extensions: HashMap<PositionVector, Vec<(Item, Support)>>,
    /// Frequent 1-extensions of the *empty* basket (i.e. frequent
    /// single items), support-descending.
    roots: Vec<(Item, Support)>,
    /// All frequent itemsets, support-descending (ties: smaller first,
    /// then lexicographic), for `top_k`.
    ranked: Vec<(Itemset, Support)>,
    /// Association rules sorted by the standard quality order.
    rules: Vec<Rule>,
    /// Optional approximate-tier sketch over the same window; when
    /// attached, the plt-query planner's `sketch_probe` operator becomes
    /// eligible for `APPROX`-tier support queries.
    sketch: Option<Box<dyn plt_query::SupportSketch>>,
}

impl Snapshot {
    /// Builds the index from a PLT and the result of mining it.
    ///
    /// `result` must come from mining `plt`'s transactions at `plt`'s
    /// threshold (the builder guarantees this); `rule_config` controls
    /// the precomputed recommendation rules.
    pub fn build(
        generation: u64,
        plt: Plt,
        result: &MiningResult,
        rule_config: RuleConfig,
    ) -> Snapshot {
        let oracle = SupportOracle::new(&plt);

        let mut index = HashMap::with_capacity(result.len());
        let mut extensions: HashMap<PositionVector, Vec<(Item, Support)>> = HashMap::new();
        let mut roots = Vec::new();
        let mut ranked = Vec::with_capacity(result.len());

        for (itemset, support) in result.iter() {
            ranked.push((itemset.clone(), support));
            let key = canonical_key(itemset.items(), &plt)
                .expect("mined itemsets are non-empty and fully ranked");
            if itemset.len() == 1 {
                roots.push((itemset.items()[0], support));
            }
            // Invert Lemma 4.1.3: each (k−1)-subset of this itemset,
            // obtained by dropping one item, gains `dropped item` as a
            // known frequent extension.
            if itemset.len() >= 2 {
                let ranks = key.ranks();
                for sub in key.level_down_subsets() {
                    let dropped_rank = dropped_rank(&ranks, &sub);
                    let item = plt.ranking().item(dropped_rank);
                    extensions.entry(sub).or_default().push((item, support));
                }
            }
            index.insert(key, support);
        }

        for exts in extensions.values_mut() {
            exts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        roots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.len().cmp(&b.0.len()))
                .then(a.0.cmp(&b.0))
        });

        let mut rules = generate_rules(result, rule_config);
        sort_rules(&mut rules);

        Snapshot {
            generation,
            plt,
            oracle,
            index,
            extensions,
            roots,
            ranked,
            rules,
            sketch: None,
        }
    }

    /// Attaches an approximate-tier sketch (builder side; the sketch
    /// must mirror the window this snapshot was mined from).
    pub fn with_sketch(mut self, sketch: Box<dyn plt_query::SupportSketch>) -> Snapshot {
        self.sketch = Some(sketch);
        self
    }

    /// The attached sketch, if any.
    pub fn sketch(&self) -> Option<&dyn plt_query::SupportSketch> {
        self.sketch.as_deref()
    }

    /// Publish generation of this snapshot.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Transactions behind this snapshot.
    pub fn num_transactions(&self) -> u64 {
        self.plt.num_transactions()
    }

    /// Mining threshold of this snapshot.
    pub fn min_support(&self) -> Support {
        self.plt.min_support()
    }

    /// Number of indexed frequent itemsets.
    pub fn num_itemsets(&self) -> usize {
        self.ranked.len()
    }

    /// Number of precomputed rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Support of an arbitrary itemset. Frequent itemsets hit the
    /// canonical-vector index; everything else (including the empty set
    /// and unranked items) is answered exactly by the oracle.
    pub fn support(&self, items: &[Item]) -> SupportAnswer {
        if let Some(key) = canonical_key(items, &self.plt) {
            if let Some(&support) = self.index.get(&key) {
                return SupportAnswer {
                    support,
                    frequent: true,
                    source: SupportSource::Index,
                };
            }
        }
        let support = self.oracle.support(items, &self.plt);
        SupportAnswer {
            support,
            frequent: support >= self.min_support() && !items.is_empty(),
            source: SupportSource::Oracle,
        }
    }

    /// The `k` highest-support frequent itemsets with at least
    /// `min_size` items.
    pub fn top_k(&self, k: usize, min_size: usize) -> Vec<(Itemset, Support)> {
        self.ranked
            .iter()
            .filter(|(s, _)| s.len() >= min_size)
            .take(k)
            .cloned()
            .collect()
    }

    /// Frequent one-item extensions of `items`: every `e` such that
    /// `items ∪ {e}` is frequent, with that union's support,
    /// support-descending, at most `k`. The empty basket extends to the
    /// frequent single items.
    pub fn extensions(&self, items: &[Item], k: usize) -> Vec<(Item, Support)> {
        if items.is_empty() {
            return self.roots.iter().take(k).copied().collect();
        }
        let Some(key) = canonical_key(items, &self.plt) else {
            return Vec::new();
        };
        match self.extensions.get(&key) {
            Some(exts) => exts.iter().take(k).copied().collect(),
            None => Vec::new(),
        }
    }

    /// Rule-backed recommendations for a basket: items whose rules fire
    /// (antecedent ⊆ basket, consequent ∌ basket items), best rule per
    /// item, sorted by confidence then lift. At most `k`.
    pub fn recommend(&self, basket: &[Item], k: usize) -> Vec<Recommendation> {
        let basket_set = Itemset::new(basket.to_vec());
        let mut best: HashMap<Item, Recommendation> = HashMap::new();
        for rule in &self.rules {
            if !rule.antecedent.is_subset_of(&basket_set) {
                continue;
            }
            for &item in rule.consequent.items() {
                if basket_set.contains(item) {
                    continue;
                }
                let candidate = Recommendation {
                    item,
                    confidence: rule.confidence,
                    lift: rule.lift,
                    support: rule.support,
                    because: rule.antecedent.clone(),
                };
                match best.get(&item) {
                    Some(cur)
                        if (cur.confidence, cur.lift, cur.support)
                            >= (candidate.confidence, candidate.lift, candidate.support) => {}
                    _ => {
                        best.insert(item, candidate);
                    }
                }
            }
        }
        let mut out: Vec<Recommendation> = best.into_values().collect();
        out.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.lift.total_cmp(&a.lift))
                .then(b.support.cmp(&a.support))
                .then(a.item.cmp(&b.item))
        });
        out.truncate(k);
        out
    }

    /// Translate a rank sequence back into caller-facing items.
    pub fn items_for_ranks(&self, ranks: &[u32]) -> Vec<Item> {
        self.plt.ranking().items_for_ranks(ranks)
    }

    /// Self-check: re-derives the support of up to `limit` indexed
    /// itemsets through the exact oracle and compares. Returns the number
    /// checked, or a description of the first disagreement. Used by the
    /// fault suite to prove a snapshot survived a chaos run intact, and
    /// available to operators as a paranoia probe.
    pub fn self_check(&self, limit: usize) -> Result<usize, String> {
        let mut checked = 0;
        for (itemset, indexed) in self.ranked.iter().take(limit) {
            let exact = self.oracle.support(itemset.items(), &self.plt);
            if exact != *indexed {
                return Err(format!(
                    "itemset {:?}: indexed support {indexed}, oracle says {exact}",
                    itemset.items()
                ));
            }
            if *indexed < self.min_support() {
                return Err(format!(
                    "itemset {:?}: indexed support {indexed} below threshold {}",
                    itemset.items(),
                    self.min_support()
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// The underlying PLT (read-only).
    pub fn plt(&self) -> &Plt {
        &self.plt
    }

    /// All frequent itemsets in canonical order (support desc, size
    /// asc, lexicographic asc).
    pub fn ranked(&self) -> &[(Itemset, Support)] {
        &self.ranked
    }

    /// All precomputed rules in standard quality order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

/// A snapshot is directly queryable by the plt-query planner/executor:
/// its canonical-key index answers point lookups, its inverted
/// Lemma 4.1.3 index answers extension traversal, and its sorted
/// itemset/rule arrays are the scan surfaces.
impl plt_query::Source for Snapshot {
    fn stats(&self) -> plt_query::SourceStats {
        plt_query::SourceStats {
            generation: self.generation,
            num_transactions: self.plt.num_transactions(),
            min_support: self.plt.min_support(),
            num_itemsets: self.ranked.len(),
            num_rules: self.rules.len(),
            num_vectors: self.plt.num_vectors(),
            num_roots: self.roots.len(),
        }
    }

    fn support_of(&self, items: &[Item]) -> (Support, bool) {
        let a = self.support(items);
        (a.support, a.frequent)
    }

    fn ranked(&self) -> &[(Itemset, Support)] {
        &self.ranked
    }

    fn extensions_of(&self, items: &[Item]) -> Vec<(Item, Support)> {
        self.extensions(items, usize::MAX)
    }

    fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn plt(&self) -> &Plt {
        &self.plt
    }

    fn sketch(&self) -> Option<&dyn plt_query::SupportSketch> {
        self.sketch.as_deref()
    }
}

/// The rank present in `superset_ranks` but missing from `sub` — the
/// item dropped by one Lemma 4.1.3 step. `sub` has exactly one rank
/// fewer than the superset.
fn dropped_rank(superset_ranks: &[u32], sub: &PositionVector) -> u32 {
    let sub_ranks = sub.ranks();
    for (i, &r) in superset_ranks.iter().enumerate() {
        if sub_ranks.get(i) != Some(&r) {
            return r;
        }
    }
    *superset_ranks.last().expect("superset is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::{ConditionalMiner, Miner};

    /// Table 1 of the paper: A=0 … F=5.
    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn snapshot(min_support: Support) -> Snapshot {
        let db = table1();
        let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, min_support);
        Snapshot::build(1, plt, &result, RuleConfig::default())
    }

    #[test]
    fn support_hits_index_for_frequent_sets() {
        let snap = snapshot(2);
        let a = snap.support(&[0, 1, 2]);
        assert_eq!(a.support, 3);
        assert!(a.frequent);
        assert_eq!(a.source, SupportSource::Index);
        // Order-free (canonical key).
        assert_eq!(snap.support(&[2, 0, 1]).support, 3);
    }

    #[test]
    fn support_falls_back_to_oracle() {
        let snap = snapshot(2);
        // {A,C,D} has support 1 < 2: infrequent, exact via oracle.
        let a = snap.support(&[0, 2, 3]);
        assert_eq!(a.support, 1);
        assert!(!a.frequent);
        assert_eq!(a.source, SupportSource::Oracle);
        // Unknown item → 0.
        assert_eq!(snap.support(&[99]).support, 0);
        // Empty set → all transactions.
        let e = snap.support(&[]);
        assert_eq!(e.support, 6);
        assert!(!e.frequent);
    }

    #[test]
    fn top_k_is_support_descending() {
        let snap = snapshot(2);
        let top = snap.top_k(3, 1);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        // B (item 1) and C (item 2) both appear in 5 transactions.
        assert_eq!(top[0].1, 5);
        // min_size filters.
        let pairs = snap.top_k(100, 2);
        assert!(pairs.iter().all(|(s, _)| s.len() >= 2));
        assert!(pairs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn extensions_agree_with_mined_supersets() {
        let snap = snapshot(2);
        let exts = snap.extensions(&[0, 1], 10);
        // {A,B} extends to C (support {A,B,C}=3) and D (support {A,B,D}=2).
        assert_eq!(exts, vec![(2, 3), (3, 2)]);
        // Empty basket: frequent single items.
        let roots = snap.extensions(&[], 2);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].1, 5);
        // Infrequent basket: nothing.
        assert!(snap.extensions(&[0, 2, 3], 10).is_empty());
    }

    #[test]
    fn extensions_cover_every_frequent_superset() {
        let db = table1();
        let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, 2);
        let snap = Snapshot::build(1, plt, &result, RuleConfig::default());
        for (itemset, support) in result.iter() {
            if itemset.len() < 2 {
                continue;
            }
            // Dropping any item e: extensions(Z \ {e}) must list (e, support(Z)).
            for &e in itemset.items() {
                let without: Vec<Item> = itemset
                    .items()
                    .iter()
                    .copied()
                    .filter(|&i| i != e)
                    .collect();
                let exts = snap.extensions(&without, usize::MAX);
                assert!(
                    exts.contains(&(e, support)),
                    "extensions({without:?}) missing ({e}, {support})"
                );
            }
        }
    }

    #[test]
    fn recommendations_respect_basket() {
        let snap = snapshot(2);
        let recs = snap.recommend(&[0], 5);
        assert!(!recs.is_empty());
        for r in &recs {
            assert_ne!(r.item, 0, "must not recommend what's in the basket");
            assert!(r.confidence >= RuleConfig::default().min_confidence);
        }
        // Sorted by confidence descending.
        assert!(recs.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn self_check_validates_the_whole_index() {
        let snap = snapshot(2);
        let checked = snap.self_check(usize::MAX).unwrap();
        assert_eq!(checked, snap.num_itemsets());
        // The limit caps work, not correctness.
        assert_eq!(snap.self_check(3).unwrap(), 3);
    }

    #[test]
    fn generation_and_sizes_are_reported() {
        let snap = snapshot(2);
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.num_transactions(), 6);
        assert_eq!(snap.min_support(), 2);
        assert!(snap.num_itemsets() > 0);
        assert!(snap.num_rules() > 0);
    }
}
