//! # plt-stream — streaming frequent-itemset substrate
//!
//! The paper pitches PLT as "a solution when large databases are being
//! mined"; the modern form of that problem is data that never stops
//! arriving. Two complementary tools:
//!
//! * [`window::SlidingWindow`] — an **exact** miner over the last `W`
//!   transactions, maintained incrementally through the PLT's
//!   insert/remove operations (no rebuild per slide). Mining the window
//!   at any instant equals batch-mining its contents.
//! * [`lossy::LossyCounter`] — an **approximate** frequency sketch over
//!   the unbounded stream (Manku & Motwani's Lossy Counting, VLDB'02)
//!   with its deterministic guarantees: no false negatives at support
//!   `s`, undercounts bounded by `εN`, memory `O((1/ε)·log(εN))`.
//!
//! The intended composition: the lossy counter watches the whole stream
//! and flags *which items* are worth exact treatment; the window gives
//! exact itemset supports over the recent past.

pub mod lossy;
pub mod window;

pub use lossy::LossyCounter;
pub use window::SlidingWindow;
