//! # plt-bench — experiment harness
//!
//! Everything needed to regenerate the paper's exhibits and the extended
//! evaluation of `DESIGN.md`:
//!
//! * [`figures`] — exact reproductions of the paper's Table 1 and
//!   Figures 1–5 (experiments E-T1, E-F1…E-F5), as renderable strings
//!   that the `experiments` binary prints and the integration tests
//!   assert on;
//! * [`datasets`] — the seeded workloads of X1..X8 (Quest sparse, dense,
//!   market baskets);
//! * [`experiments`] — each X-experiment as a function producing a
//!   [`Table`], shared between the `experiments` binary and the Criterion
//!   benches;
//! * [`Table`] — a tiny fixed-width table printer so every experiment
//!   reports "the same rows the paper would".

pub mod datasets;
pub mod experiments;
pub mod figures;

use std::time::{Duration, Instant};

/// Times a closure once, returning its result and the wall time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Times a closure over `runs` runs (after one warm-up), reporting the
/// minimum — the stablest point estimate for short CPU-bound workloads.
pub fn time_best<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(runs >= 1);
    let mut best = Duration::MAX;
    let mut result = None;
    let _ = f(); // warm-up
    for _ in 0..runs {
        let start = Instant::now();
        let r = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        result = Some(r);
    }
    (result.expect("runs >= 1"), best)
}

/// A fixed-width text table, printed like the tables in an evaluation
/// section.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a caption and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The caption.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor for tests: `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).unwrap();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                write!(out, "{cell:>w$}", w = w).unwrap();
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Provenance block stamped into every machine-readable benchmark record
/// (`BENCH_*.json`): the commit and toolchain that produced the numbers,
/// the host CPU, and whether the SIMD backend was compiled in and live at
/// run time. Returned as one hand-rolled JSON object (the workspace is
/// dependency-free by design) for the `xNN_json` emitters to splice in
/// under a `"bench_meta"` key.
pub fn bench_meta_json() -> String {
    format!(
        "{{\"git_commit\": \"{}\", \"rustc\": \"{}\", \"cpu\": \"{}\", \
         \"simd_compiled\": {}, \"simd_available\": {}}}",
        json_escape(&command_line("git", &["rev-parse", "--short=12", "HEAD"])),
        json_escape(&command_line("rustc", &["--version"])),
        json_escape(&cpu_model()),
        plt_core::kernels::simd_compiled(),
        plt_core::kernels::simd_available(),
    )
}

/// One line of a subprocess's stdout, or `"unknown"` if the tool is
/// missing, fails, or prints nothing (benchmarks may run from an
/// exported tarball with no `.git`).
fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The host CPU model from `/proc/cpuinfo`, or `"unknown"` off Linux.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Minimal JSON string escaping for the metadata fields.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Why a `--json-out` write failed: which step, on which path.
#[derive(Debug)]
pub enum JsonOutError {
    /// Creating the parent directory failed.
    CreateDir {
        dir: std::path::PathBuf,
        source: std::io::Error,
    },
    /// Writing the file itself failed.
    Write {
        path: std::path::PathBuf,
        source: std::io::Error,
    },
}

impl std::fmt::Display for JsonOutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonOutError::CreateDir { dir, source } => {
                write!(f, "cannot create directory {}: {source}", dir.display())
            }
            JsonOutError::Write { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for JsonOutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonOutError::CreateDir { source, .. } | JsonOutError::Write { source, .. } => {
                Some(source)
            }
        }
    }
}

/// Writes a machine-readable record to `path`, creating missing parent
/// directories. Never panics: unwritable paths come back as a typed
/// [`JsonOutError`] for the caller to report.
pub fn write_json_out(path: &str, json: &str) -> Result<(), JsonOutError> {
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|source| JsonOutError::CreateDir {
                dir: parent.to_path_buf(),
                source,
            })?;
        }
    }
    std::fs::write(path, json).map_err(|source| JsonOutError::Write {
        path: path.to_path_buf(),
        source,
    })
}

/// Thread counts for the X5 scaling sweep: powers of two up to the larger
/// of the host parallelism and 4, so the sweep exercises the machinery
/// even on small hosts (oversubscribed counts are reported as-is).
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    counts
}

/// Formats a duration in adaptive units for table cells.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["miner", "time"]);
        t.row(vec!["apriori".into(), "12ms".into()]);
        t.row(vec!["plt".into(), "3ms".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("miner"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 0), "plt");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn write_json_out_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("plt-bench-jsonout-{}", std::process::id()));
        let path = dir.join("a").join("b").join("out.json");
        write_json_out(path.to_str().unwrap(), "{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_out_reports_unwritable_paths_as_typed_errors() {
        // A path whose "parent directory" is a regular file: create_dir_all
        // must fail, and the failure must be the typed CreateDir variant —
        // not a panic.
        let dir = std::env::temp_dir().join(format!("plt-bench-jsonerr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("not-a-dir");
        std::fs::write(&file, "x").unwrap();
        let bad = file.join("deeper").join("out.json");
        let err = write_json_out(bad.to_str().unwrap(), "{}").unwrap_err();
        match &err {
            JsonOutError::CreateDir { dir: d, .. } => {
                assert!(d.starts_with(&file), "wrong dir in error: {}", d.display());
            }
            other => panic!("expected CreateDir, got {other:?}"),
        }
        assert!(err.to_string().contains("cannot create directory"));
        assert!(std::error::Error::source(&err).is_some());

        // Writing *to* a directory fails at the write step.
        let err = write_json_out(dir.to_str().unwrap(), "{}").unwrap_err();
        assert!(matches!(err, JsonOutError::Write { .. }), "{err:?}");
        assert!(err.to_string().contains("cannot write"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_meta_carries_provenance_fields() {
        let meta = bench_meta_json();
        for key in [
            "\"git_commit\"",
            "\"rustc\"",
            "\"cpu\"",
            "\"simd_compiled\"",
            "\"simd_available\"",
        ] {
            assert!(meta.contains(key), "missing {key} in {meta}");
        }
        // The flags must reflect the build: without the `simd` feature
        // both are necessarily false; with it, availability never
        // exceeds compilation.
        assert!(meta.starts_with('{') && meta.trim_end().ends_with('}'));
        if !plt_core::kernels::simd_compiled() {
            assert!(meta.contains("\"simd_compiled\": false"));
            assert!(meta.contains("\"simd_available\": false"));
        }
    }

    #[test]
    fn json_escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn timing_helpers_run_the_closure() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let (v, _) = time_best(3, || 7);
        assert_eq!(v, 7);
    }
}
