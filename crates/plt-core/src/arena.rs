//! Arena-backed, allocation-free conditional mining (`DESIGN.md` §6, §11).
//!
//! The map-based engine in [`crate::conditional`] is a literal rendering of
//! Algorithm 3: a `BTreeMap<Rank, FxHashMap<PositionVector, Support>>` of
//! sum-groups, with a fresh boxed-slice vector heap-allocated for every
//! prefix at every recursion level. This module is the same algorithm on a
//! flat layout that exploits what the paper actually promises — the PLT is
//! "a table-like data structure" whose cached sums make conditional
//! extraction a lookup, not a rebuild:
//!
//! * a (conditional) database is **one contiguous position buffer**
//!   (`Vec<Rank>`) plus packed per-entry columns — no per-vector
//!   allocation, no hashing;
//! * entries are stored **SoA-style** (`offsets` / `lens` / `freqs` /
//!   `sums` as four parallel arrays rather than an array of structs), so
//!   the data-parallel kernels load whole lanes of one field
//!   contiguously — the bucket-drain support accumulation is a single
//!   gathered sum over the `freqs` column;
//! * sum-groups are **dense rank-indexed buckets** (`Vec<Vec<EntryId>>`
//!   over `1..=max_rank`) instead of an ordered map — "for j = Max down
//!   to 1" is a cursor walk, and Lemma 4.1.1 guarantees every entry sits
//!   in the bucket of its last item's rank;
//! * prefix fold-back ("a new vector is constructed by removing the last
//!   position value and inserting this vector into the proper partition")
//!   is an **O(1) re-tag**: shrink `lens` by one, subtract the dropped
//!   position from the cached sum, push the entry id into the bucket of
//!   the new sum. The map engine pays an allocation plus a hash insert for
//!   the same step;
//! * the two local scans of `Conditional_Construct` run over per-depth
//!   **scratch buffers** held in a recursion-level [`ArenaPool`], so
//!   steady-state mining performs zero allocations; the scans themselves
//!   run through the [`crate::kernels`] layer — the Lemma 4.1.1 rank
//!   recovery is a prefix-sum kernel, the locally-frequent filter is a
//!   gathered compare — so they pick up the AVX2 backend when the `simd`
//!   feature and the CPU allow, with the scalar path as the
//!   always-available differential oracle.
//!
//! Equivalence with the map engine (same itemsets, same supports) is
//! enforced by the property suites here, in `tests/arena_equivalence.rs`
//! and `tests/kernel_equivalence.rs`, and by the differential
//! `CondEngine::Map` path kept on
//! [`ConditionalMiner`](crate::conditional::ConditionalMiner).

use crate::item::{Itemset, Rank, Support};
use crate::miner::MiningResult;
use crate::plt::Plt;
use crate::posvec::PositionVector;
use plt_obs::Obs;
use plt_simd::KernelStats;

/// Index of an entry within its [`Level`].
type EntryId = u32;

/// Engine counters accumulated by every arena mining call. Kept always-on
/// (plain `u64` adds are far below measurement noise) so the numbers exist
/// whether or not an observability recorder is installed; [`MineStats::record`]
/// flushes them into a recorder under the `arena.*` and `kernel.*` names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MineStats {
    /// Prefix fold-backs performed in the bucket drains (the O(1) re-tags).
    pub vectors_folded: u64,
    /// Fold-backs absorbed by an existing identical vector (frequency merge).
    pub dedup_hits: u64,
    /// Entries copied through verbatim because every local rank stayed
    /// frequent (the fast path of `Conditional_Construct`'s scan 2).
    pub copy_throughs: u64,
    /// Single-entry databases emitted via the subset shortcut.
    pub single_path_shortcuts: u64,
    /// Peak bytes held across the pool's level storage (positions, entry
    /// columns, scratch, dedup table; excludes per-bucket spine capacity).
    pub bytes_peak: u64,
    /// Kernel calls dispatched to the SIMD backend during mining.
    pub simd_calls: u64,
    /// Kernel calls dispatched to the scalar backend during mining.
    pub scalar_calls: u64,
    /// Bitset AND/ANDNOT intersections run through the kernel layer on
    /// this thread while mining (zero for the arena itself; populated
    /// when bitmap-backed baselines share the counters).
    pub bitmap_intersections: u64,
}

impl MineStats {
    /// Folds another stats block into this one (counters add, peak maxes) —
    /// used when merging per-worker pools.
    pub fn merge(&mut self, other: &MineStats) {
        self.vectors_folded += other.vectors_folded;
        self.dedup_hits += other.dedup_hits;
        self.copy_throughs += other.copy_throughs;
        self.single_path_shortcuts += other.single_path_shortcuts;
        self.bytes_peak = self.bytes_peak.max(other.bytes_peak);
        self.simd_calls += other.simd_calls;
        self.scalar_calls += other.scalar_calls;
        self.bitmap_intersections += other.bitmap_intersections;
    }

    /// Flushes the counters into an observability recorder under the
    /// `arena.*` and `kernel.*` names (`bytes_peak` as a gauge, the rest
    /// as counters).
    pub fn record(&self, obs: &mut Obs) {
        obs.counter("arena.vectors_folded", self.vectors_folded);
        obs.counter("arena.dedup_hits", self.dedup_hits);
        obs.counter("arena.copy_throughs", self.copy_throughs);
        obs.counter("arena.single_path_shortcuts", self.single_path_shortcuts);
        obs.gauge("arena.bytes_peak", self.bytes_peak);
        obs.counter("kernel.simd_calls", self.simd_calls);
        obs.counter("kernel.scalar_calls", self.scalar_calls);
        obs.counter("kernel.bitmap_intersections", self.bitmap_intersections);
    }
}

/// One recursion depth's working storage. A level is built by its parent
/// (or from the PLT at depth 0), mined to exhaustion, and then reused by
/// the next sibling conditional database at the same depth.
///
/// Entry storage is SoA: the packed `(offset, len, freq, sum)` of the old
/// layout lives in four parallel columns indexed by [`EntryId`], so the
/// kernels gather one field across many entries from contiguous memory.
#[derive(Debug, Default)]
struct Level {
    /// Contiguous position storage for every entry of this level.
    positions: Vec<Rank>,
    /// Column: start of each entry's positions in `positions`.
    offsets: Vec<u32>,
    /// Column: current number of live positions (fold-back shrinks this).
    lens: Vec<u32>,
    /// Column: transactions supporting each vector. Contiguous so the
    /// bucket-drain support accumulation is one gathered-sum kernel call.
    freqs: Vec<Support>,
    /// Column: cached sum of each entry's live positions.
    sums: Vec<Rank>,
    /// `buckets[s]` holds the ids of entries whose *current* sum is `s`
    /// (index 0 unused). Entries move strictly downwards as they shrink,
    /// so a bucket is complete by the time the descending cursor reaches
    /// it and never needs tombstones.
    buckets: Vec<Vec<EntryId>>,
    /// Highest sum that may own a non-empty bucket.
    max_sum: Rank,
    /// Scratch: local rank frequencies (scan 1 of Conditional_Construct),
    /// indexed by rank; reset in O(|touched|) via `touched`.
    counts: Vec<Support>,
    /// Scratch: ranks with a non-zero `counts` cell.
    touched: Vec<Rank>,
    /// Scratch: locally frequent ranks of the entry being re-encoded.
    kept: Vec<Rank>,
    /// Scratch: decoded (prefix-summed) ranks of the window being scanned.
    ranks: Vec<Rank>,
    /// Scratch: re-deltaed positions of the entry being appended.
    enc: Vec<Rank>,
    /// Scratch: ids of the entries forming the conditional database of
    /// the bucket currently being peeled.
    cond: Vec<EntryId>,
    /// Drain-scoped dedup table: open-addressed `(version, id)` slots
    /// keyed by entry-content hash. Bumping `dedup_version` invalidates
    /// every slot, so the per-drain reset is O(1).
    dedup: Vec<(u32, EntryId)>,
    /// Version stamp marking which slots are live.
    dedup_version: u32,
    /// Live slots in `dedup`.
    dedup_len: usize,
}

/// FNV-1a over the rank sequence decoded from a delta window. Hashing the
/// prefix sums (not the raw deltas) keeps the hash a pure function of the
/// itemset, whichever encoding the caller holds.
fn hash_window(window: &[Rank]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut acc: Rank = 0;
    for &p in window {
        acc += p;
        h ^= acc as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Level {
    /// Grows the dense per-rank tables to cover ranks `1..=max_rank`.
    fn ensure_rank_capacity(&mut self, max_rank: usize) {
        if self.buckets.len() < max_rank + 1 {
            self.buckets.resize_with(max_rank + 1, Vec::new);
        }
        if self.counts.len() < max_rank + 1 {
            self.counts.resize(max_rank + 1, 0);
        }
    }

    /// Clears entry storage for a fresh conditional database. Buckets are
    /// already empty: mining drains every bucket it fills.
    fn reset(&mut self) {
        self.positions.clear();
        self.offsets.clear();
        self.lens.clear();
        self.freqs.clear();
        self.sums.clear();
        self.max_sum = 0;
        debug_assert!(self.buckets.iter().all(Vec::is_empty));
        debug_assert!(self.counts.iter().all(|&c| c == 0));
    }

    /// Number of live entries.
    fn num_entries(&self) -> usize {
        self.offsets.len()
    }

    /// Appends an entry encoding the strictly increasing rank sequence
    /// `ranks` (re-deltaed per Definition 4.1.2 through the encode
    /// kernel). If the ranks equal those of the previously appended
    /// entry, the frequencies merge instead — a free partial dedup that
    /// catches runs of identical prefixes.
    fn push_ranks(&mut self, ranks: &[Rank], freq: Support) {
        debug_assert!(!ranks.is_empty());
        let sum = *ranks.last().expect("non-empty ranks");
        if let Some(last) = self.num_entries().checked_sub(1) {
            if self.sums[last] == sum && self.lens[last] as usize == ranks.len() {
                let start = self.offsets[last] as usize;
                let prev = &self.positions[start..start + ranks.len()];
                let mut acc = 0;
                if prev.iter().zip(ranks).all(|(&p, &r)| {
                    acc += p;
                    acc == r
                }) {
                    self.freqs[last] += freq;
                    return;
                }
            }
        }
        let offset = self.positions.len() as u32;
        plt_simd::delta_encode_into(ranks, &mut self.enc);
        self.positions.extend_from_slice(&self.enc);
        let id = self.num_entries() as EntryId;
        self.offsets.push(offset);
        self.lens.push(ranks.len() as u32);
        self.freqs.push(freq);
        self.sums.push(sum);
        self.buckets[sum as usize].push(id);
        self.max_sum = self.max_sum.max(sum);
    }

    /// Invalidates every dedup slot for the next drain, in O(1).
    fn dedup_reset(&mut self) {
        self.dedup_len = 0;
        self.dedup_version = self.dedup_version.wrapping_add(1);
        if self.dedup_version == 0 {
            // u32 wraparound: scrub once so stale stamps cannot alias.
            self.dedup.fill((0, 0));
            self.dedup_version = 1;
        }
    }

    /// Grows the dedup table to absorb `n` more inserts below 75% load,
    /// rehashing any live slots.
    fn dedup_reserve(&mut self, n: usize) {
        let need = (self.dedup_len + n) * 4 / 3 + 1;
        if self.dedup.len() >= need {
            return;
        }
        let cap = need.next_power_of_two().max(16);
        let old = std::mem::replace(&mut self.dedup, vec![(0, 0); cap]);
        let mask = cap - 1;
        for (v, id) in old {
            if v == self.dedup_version {
                let o = self.offsets[id as usize] as usize;
                let l = self.lens[id as usize] as usize;
                let h = hash_window(&self.positions[o..o + l]);
                let mut i = h as usize & mask;
                while self.dedup[i].0 == self.dedup_version {
                    i = (i + 1) & mask;
                }
                self.dedup[i] = (self.dedup_version, id);
            }
        }
    }

    /// Looks up a live entry with the same content as entry `id`,
    /// recording `id` in the table if there is none. Returns the
    /// already-present duplicate on a hit.
    fn dedup_entry(&mut self, id: EntryId) -> Option<EntryId> {
        debug_assert!(!self.dedup.is_empty());
        let mask = self.dedup.len() - 1;
        let eo = self.offsets[id as usize] as usize;
        let el = self.lens[id as usize] as usize;
        let esum = self.sums[id as usize];
        let h = hash_window(&self.positions[eo..eo + el]);
        let mut i = h as usize & mask;
        loop {
            let (v, other) = self.dedup[i];
            if v != self.dedup_version {
                self.dedup[i] = (self.dedup_version, id);
                self.dedup_len += 1;
                return None;
            }
            let ou = other as usize;
            if self.lens[ou] as usize == el && self.sums[ou] == esum {
                let oo = self.offsets[ou] as usize;
                if self.positions[oo..oo + el] == self.positions[eo..eo + el] {
                    return Some(other);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Appends an entry from raw positions (already delta-encoded), used
    /// when feeding straight from PLT partition storage.
    fn push_positions(&mut self, positions: &[Rank], freq: Support, sum: Rank) {
        debug_assert!(!positions.is_empty());
        debug_assert_eq!(positions.iter().sum::<Rank>(), sum);
        let offset = self.positions.len() as u32;
        self.positions.extend_from_slice(positions);
        let id = self.num_entries() as EntryId;
        self.offsets.push(offset);
        self.lens.push(positions.len() as u32);
        self.freqs.push(freq);
        self.sums.push(sum);
        self.buckets[sum as usize].push(id);
        self.max_sum = self.max_sum.max(sum);
    }
}

/// Reusable per-depth arena storage for the conditional miner.
///
/// One pool serves any number of successive mining calls; each call
/// reuses the levels (and their buckets, scratch arrays and position
/// buffers) grown by earlier calls, so a warmed pool mines without
/// allocating. The parallel miner keeps one pool per worker.
///
/// # Examples
///
/// ```
/// use plt_core::arena::ArenaPool;
/// use plt_core::construct::{construct, ConstructOptions};
///
/// let db = vec![vec![1, 2], vec![1, 2], vec![2, 3]];
/// let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
/// let mut pool = ArenaPool::new();
/// let result = pool.mine_plt(&plt);
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// assert_eq!(result.support(&[2]), Some(3));
/// ```
#[derive(Debug, Default)]
pub struct ArenaPool {
    levels: Vec<Level>,
    /// Rank capacity the levels are currently sized for.
    max_rank: usize,
    /// Engine counters accumulated across mining calls on this pool.
    stats: MineStats,
}

impl ArenaPool {
    /// An empty pool; storage is grown on first use and retained.
    pub fn new() -> ArenaPool {
        ArenaPool::default()
    }

    /// Sizes the pool for ranks `1..=max_rank` and returns a reset depth-0
    /// level ready to be filled.
    fn prepare(&mut self, max_rank: usize) -> &mut Level {
        self.max_rank = max_rank;
        if self.levels.is_empty() {
            self.levels.push(Level::default());
        }
        let level = &mut self.levels[0];
        level.ensure_rank_capacity(max_rank);
        level.reset();
        level
    }

    /// Makes sure `levels[depth]` exists and covers the pool's rank range.
    fn ensure_level(&mut self, depth: usize) {
        while self.levels.len() <= depth {
            self.levels.push(Level::default());
        }
        self.levels[depth].ensure_rank_capacity(self.max_rank);
    }

    /// Mines an already-constructed PLT (built without prefix insertion),
    /// feeding the arena straight from the partition storage — no
    /// per-vector clone, no intermediate map.
    pub fn mine_plt(&mut self, plt: &Plt) -> MiningResult {
        let kernels_before = KernelStats::snapshot_thread();
        let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
        let level = self.prepare(plt.ranking().len());
        for (v, e) in plt.iter() {
            level.push_positions(v.positions(), e.freq, e.sum);
        }
        let mut suffix = Vec::new();
        mine_or_shortcut(self, 0, plt, &mut suffix, &mut result);
        self.note_bytes_peak();
        self.note_kernel_stats(kernels_before);
        result
    }

    /// Engine counters accumulated so far on this pool.
    pub fn stats(&self) -> &MineStats {
        &self.stats
    }

    /// Takes the accumulated counters, resetting them to zero — the
    /// per-worker handoff used by the parallel miner's reduce step.
    pub fn take_stats(&mut self) -> MineStats {
        std::mem::take(&mut self.stats)
    }

    /// Folds the current level storage footprint into `stats.bytes_peak`.
    /// O(levels) with constant work per level, so it runs once per mining
    /// call; the per-bucket spine vectors are deliberately excluded.
    fn note_bytes_peak(&mut self) {
        let mut bytes = 0u64;
        for level in &self.levels {
            bytes += (level.positions.capacity() * std::mem::size_of::<Rank>()
                + level.offsets.capacity() * std::mem::size_of::<u32>()
                + level.lens.capacity() * std::mem::size_of::<u32>()
                + level.freqs.capacity() * std::mem::size_of::<Support>()
                + level.sums.capacity() * std::mem::size_of::<Rank>()
                + level.buckets.capacity() * std::mem::size_of::<Vec<EntryId>>()
                + level.counts.capacity() * std::mem::size_of::<Support>()
                + level.touched.capacity() * std::mem::size_of::<Rank>()
                + level.kept.capacity() * std::mem::size_of::<Rank>()
                + level.ranks.capacity() * std::mem::size_of::<Rank>()
                + level.enc.capacity() * std::mem::size_of::<Rank>()
                + level.cond.capacity() * std::mem::size_of::<EntryId>()
                + level.dedup.capacity() * std::mem::size_of::<(u32, EntryId)>())
                as u64;
        }
        self.stats.bytes_peak = self.stats.bytes_peak.max(bytes);
    }

    /// Folds the kernel-dispatch counters spent since `before` (on this
    /// thread) into the pool's stats block.
    fn note_kernel_stats(&mut self, before: KernelStats) {
        let delta = KernelStats::snapshot_thread().since(&before);
        self.stats.simd_calls += delta.simd_calls;
        self.stats.scalar_calls += delta.scalar_calls;
        self.stats.bitmap_intersections += delta.bitmap_intersections;
    }

    /// Mines a conditional database under a fixed suffix of global ranks —
    /// the arena counterpart of
    /// [`mine_conditional`](crate::conditional::mine_conditional). The
    /// database is given as `(positions, frequency)` windows so callers
    /// holding flat storage (the parallel projections) feed it without
    /// materialising vectors; it is locally re-filtered against the
    /// minimum support before mining, exactly like the map path. The
    /// suffix's own support is *not* emitted.
    pub fn mine_conditional<'a, I>(
        &mut self,
        conditional: I,
        plt: &Plt,
        suffix: &[Rank],
    ) -> MiningResult
    where
        I: Iterator<Item = (&'a [Rank], Support)> + Clone,
    {
        let kernels_before = KernelStats::snapshot_thread();
        let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
        let min_support = plt.min_support();
        let level = self.prepare(plt.ranking().len());

        // Scan 1 (local): rank frequencies within the conditional
        // database. The Lemma 4.1.1 rank recovery runs through the
        // prefix-sum kernel; the scatter-add over `counts` stays scalar
        // (its writes are data-dependent).
        for (positions, freq) in conditional.clone() {
            plt_simd::prefix_sum_into(positions, &mut level.ranks);
            for &r in &level.ranks {
                if level.counts[r as usize] == 0 {
                    level.touched.push(r);
                }
                level.counts[r as usize] += freq;
            }
        }

        // Scan 2 (local): filter infrequent ranks (gathered-compare
        // kernel) and re-encode survivors.
        for (positions, freq) in conditional {
            plt_simd::prefix_sum_into(positions, &mut level.ranks);
            // Taken out so `push_ranks` can borrow the level mutably.
            let mut kept = std::mem::take(&mut level.kept);
            plt_simd::filter_ge_into(&level.counts, &level.ranks, min_support, &mut kept);
            if !kept.is_empty() {
                level.push_ranks(&kept, freq);
            }
            level.kept = kept;
        }
        for &r in &level.touched {
            level.counts[r as usize] = 0;
        }
        level.touched.clear();

        let mut sfx = suffix.to_vec();
        mine_or_shortcut(self, 0, plt, &mut sfx, &mut result);
        self.note_bytes_peak();
        self.note_kernel_stats(kernels_before);
        result
    }
}

/// Dispatches `levels[depth]` to the single-path shortcut when it holds
/// exactly one entry, and to the full recursive peel otherwise.
fn mine_or_shortcut(
    pool: &mut ArenaPool,
    depth: usize,
    plt: &Plt,
    suffix: &mut Vec<Rank>,
    result: &mut MiningResult,
) {
    let level = &pool.levels[depth];
    if level.num_entries() == 1 && level.lens[0] <= MAX_SINGLE_PATH {
        pool.stats.single_path_shortcuts += 1;
        emit_single_path(&mut pool.levels[depth], plt, suffix, result);
    } else {
        mine_level(pool, depth, plt, suffix, result);
    }
}

/// Longest vector the single-path shortcut enumerates directly (2^len
/// itemsets); longer chains fall back to the recursive peel, which visits
/// the same family without materialising a mask loop.
const MAX_SINGLE_PATH: u32 = 30;

/// The single-path shortcut: a one-entry database supports every
/// non-empty subset of its vector with the entry's own frequency, so the
/// whole subtree is emitted with direct inserts — no drains, no child
/// construction. The counterpart of FP-growth's single-path optimisation,
/// justified here by Lemma 4.1.3 (every subset arises from the one
/// vector).
fn emit_single_path(
    level: &mut Level,
    plt: &Plt,
    suffix: &mut Vec<Rank>,
    result: &mut MiningResult,
) {
    debug_assert_eq!(level.num_entries(), 1);
    let freq = level.freqs[0];
    // The entry is parked in its bucket; consume it so the level resets
    // clean for the next sibling.
    level.buckets[level.sums[0] as usize].clear();
    let off = level.offsets[0] as usize;
    let len = level.lens[0] as usize;
    plt_simd::prefix_sum_into(&level.positions[off..off + len], &mut level.kept);
    let k = level.kept.len();
    let base = suffix.len();
    for mask in 1u64..(1u64 << k) {
        for (i, &r) in level.kept.iter().enumerate() {
            if mask & (1 << i) != 0 {
                suffix.push(r);
            }
        }
        let items = plt.ranking().items_for_ranks(suffix);
        result.insert(Itemset::from_sorted(items), freq);
        suffix.truncate(base);
    }
}

/// The recursive core — the paper's `Mining(PLT, itemset)` over the arena
/// representation. `pool.levels[depth]` is the (conditional) PLT being
/// peeled; deeper levels are constructed on demand and reused across
/// siblings.
fn mine_level(
    pool: &mut ArenaPool,
    depth: usize,
    plt: &Plt,
    suffix: &mut Vec<Rank>,
    result: &mut MiningResult,
) {
    let min_support = plt.min_support();
    // "For j = Max down to 1": walk the dense buckets with a cursor.
    let mut cursor = pool.levels[depth].max_sum;
    while cursor >= 1 {
        let j = cursor;
        cursor -= 1;
        let level = &mut pool.levels[depth];
        if level.buckets[j as usize].is_empty() {
            continue;
        }
        // Peel bucket j: its entries are exactly the vectors whose last
        // item has rank j (Lemma 4.1.1). The extension's support is a
        // branchless gathered sum over the contiguous `freqs` column —
        // the SoA payoff — computed before the fold loop mutates
        // anything (folding only merges frequencies *into* entries after
        // their original value was already counted, so the pre-fold sum
        // equals the old accumulate-as-you-drain total).
        let mut ids = std::mem::take(&mut level.buckets[j as usize]);
        let support: Support = plt_simd::sum_gather(&level.freqs, &ids);
        // Fold each prefix back with an O(1) re-tag and collect the
        // survivors as CD_j. Folding merges duplicate prefixes as it
        // goes: distinct vectors `[P, x]` and `[P, y]` both fold to `P`,
        // and on dense data those duplicates compound through the
        // recursion. The map engine merges them in its hash insert; the
        // drain-scoped dedup table restores the same invariant (each
        // bucket holds distinct vectors) at the same O(len)-per-entry
        // cost, without allocating.
        let mut folded: u64 = 0;
        let mut dedup_hits: u64 = 0;
        level.dedup_reset();
        level.dedup_reserve(ids.len());
        level.cond.clear();
        for &id in &ids {
            let idu = id as usize;
            debug_assert_eq!(level.sums[idu], j);
            if level.lens[idu] > 1 {
                let last = level.positions[(level.offsets[idu] + level.lens[idu] - 1) as usize];
                level.lens[idu] -= 1;
                level.sums[idu] -= last;
                folded += 1;
                match level.dedup_entry(id) {
                    Some(other) => {
                        dedup_hits += 1;
                        level.freqs[other as usize] += level.freqs[idu];
                    }
                    None => {
                        let sum = level.sums[idu];
                        level.buckets[sum as usize].push(id);
                        level.cond.push(id);
                    }
                }
            }
        }
        ids.clear();
        level.buckets[j as usize] = ids; // hand the capacity back
        pool.stats.vectors_folded += folded;
        pool.stats.dedup_hits += dedup_hits;

        if support < min_support {
            // "If the new extension is no longer frequent, there is no
            // need for a new conditional database."
            continue;
        }

        suffix.push(j);
        let items = plt.ranking().items_for_ranks(suffix);
        result.insert(Itemset::from_sorted(items), support);

        // CPLT = PLT_Construction(CD_j, min_sup): the two-scan local
        // construction, writing into the next depth's reusable level.
        pool.ensure_level(depth + 1);
        let (parents, children) = pool.levels.split_at_mut(depth + 1);
        if construct_child(
            &mut parents[depth],
            &mut children[0],
            min_support,
            &mut pool.stats,
        ) {
            mine_or_shortcut(pool, depth + 1, plt, suffix, result);
        }
        suffix.pop();
    }
}

/// Builds `child` from the conditional entry ids staged in `parent.cond`
/// (scan 1: count ranks; scan 2: filter and re-encode). Returns whether
/// the child holds any entries. All work runs over the levels' scratch
/// buffers; nothing is allocated once capacities are warm. Both scans
/// route their vectorizable halves through the kernel layer: rank
/// recovery is the prefix-sum kernel, the all-locally-frequent test and
/// the survivor filter are gathered compares.
fn construct_child(
    parent: &mut Level,
    child: &mut Level,
    min_support: Support,
    stats: &mut MineStats,
) -> bool {
    child.reset();
    // Scan 1 (local): rank frequencies within CD_j. The prefix of entry
    // `id` is its *current* (already shrunk) position window.
    for &id in &parent.cond {
        let idu = id as usize;
        let o = parent.offsets[idu] as usize;
        let l = parent.lens[idu] as usize;
        let freq = parent.freqs[idu];
        plt_simd::prefix_sum_into(&parent.positions[o..o + l], &mut parent.ranks);
        for &r in &parent.ranks {
            if parent.counts[r as usize] == 0 {
                parent.touched.push(r);
            }
            parent.counts[r as usize] += freq;
        }
    }
    // Scan 2 (local): drop locally infrequent ranks, re-delta the rest.
    // When every touched rank stays frequent — the common case on dense
    // data — the filter is the identity, and each entry copies through as
    // a raw slice with no per-position branching. Entries in `cond` are
    // distinct (the drain merged duplicates), so the copy needs no
    // dedup.
    let all_frequent =
        plt_simd::count_ge(&parent.counts, &parent.touched, min_support) == parent.touched.len();
    if all_frequent {
        stats.copy_throughs += parent.cond.len() as u64;
        for &id in &parent.cond {
            let idu = id as usize;
            let o = parent.offsets[idu] as usize;
            let l = parent.lens[idu] as usize;
            child.push_positions(
                &parent.positions[o..o + l],
                parent.freqs[idu],
                parent.sums[idu],
            );
        }
    } else {
        for &id in &parent.cond {
            let idu = id as usize;
            let o = parent.offsets[idu] as usize;
            let l = parent.lens[idu] as usize;
            plt_simd::prefix_sum_into(&parent.positions[o..o + l], &mut parent.ranks);
            plt_simd::filter_ge_into(&parent.counts, &parent.ranks, min_support, &mut parent.kept);
            if !parent.kept.is_empty() {
                child.push_ranks(&parent.kept, parent.freqs[idu]);
            }
        }
    }
    // O(touched) reset keeps the counts array clean for the next sibling.
    for &r in &parent.touched {
        parent.counts[r as usize] = 0;
    }
    parent.touched.clear();
    child.num_entries() > 0
}

/// One-shot arena mining of a PLT with a throwaway pool. Callers mining
/// repeatedly (servers, the parallel workers) should hold an
/// [`ArenaPool`] instead to amortise the storage.
pub fn mine_plt_arena(plt: &Plt) -> MiningResult {
    ArenaPool::new().mine_plt(plt)
}

/// One-shot arena mining of a materialised conditional database — the
/// drop-in counterpart of [`crate::conditional::mine_conditional`].
pub fn mine_conditional_arena(
    conditional: &[(PositionVector, Support)],
    plt: &Plt,
    suffix: &[Rank],
) -> MiningResult {
    ArenaPool::new().mine_conditional(
        conditional.iter().map(|(v, f)| (v.positions(), *f)),
        plt,
        suffix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditional::{mine_conditional, CondEngine, ConditionalMiner};
    use crate::construct::{construct, ConstructOptions};
    use crate::item::Item;
    use crate::miner::{BruteForceMiner, Mine, Miner};
    use crate::ranking::RankPolicy;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn build(db: &[Vec<Item>], min_sup: Support) -> Plt {
        construct(db, min_sup, ConstructOptions::conditional()).unwrap()
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = mine_plt_arena(&build(&table1(), 2));
        assert_eq!(got.sorted(), expect.sorted());
        got.check_anti_monotone().unwrap();
    }

    #[test]
    fn matches_map_engine_on_table1() {
        let plt = build(&table1(), 2);
        let map = ConditionalMiner::with_engine(CondEngine::Map).mine_plt(&plt);
        let arena = mine_plt_arena(&plt);
        assert_eq!(arena.sorted(), map.sorted());
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let mut pool = ArenaPool::new();
        let plt1 = build(&table1(), 2);
        let first = pool.mine_plt(&plt1);
        // A different database and threshold on the same warmed pool.
        let db2: Vec<Vec<Item>> = vec![vec![1, 2, 3]; 5];
        let plt2 = build(&db2, 3);
        let second = pool.mine_plt(&plt2);
        assert_eq!(second.support(&[1, 2, 3]), Some(5));
        assert_eq!(second.len(), 7);
        // And the original answer again, unchanged.
        assert_eq!(pool.mine_plt(&plt1).sorted(), first.sorted());
    }

    #[test]
    fn conditional_matches_map_conditional() {
        let plt = build(&table1(), 2);
        let (_, cd, _) = crate::conditional::extract_conditional(&plt, 4);
        let map = mine_conditional(&cd, &plt, &[4]);
        let arena = mine_conditional_arena(&cd, &plt, &[4]);
        assert_eq!(arena.sorted(), map.sorted());
    }

    #[test]
    fn empty_plt_mines_empty() {
        let db: Vec<Vec<Item>> = vec![];
        let plt = build(&db, 1);
        assert!(mine_plt_arena(&plt).is_empty());
    }

    #[test]
    fn stats_accumulate_and_take_resets() {
        let mut pool = ArenaPool::new();
        let plt = build(&table1(), 2);
        pool.mine_plt(&plt);
        let stats = *pool.stats();
        assert!(stats.vectors_folded > 0, "{stats:?}");
        assert!(stats.bytes_peak > 0, "{stats:?}");
        // Every kernel call during the mine landed on exactly one backend.
        assert!(stats.simd_calls + stats.scalar_calls > 0, "{stats:?}");
        // Taking hands the counters over and resets the pool's block.
        let taken = pool.take_stats();
        assert_eq!(taken, stats);
        assert_eq!(*pool.stats(), MineStats::default());
        // Merge adds counters and maxes the peak.
        let mut merged = taken;
        merged.merge(&taken);
        assert_eq!(merged.vectors_folded, 2 * taken.vectors_folded);
        assert_eq!(merged.scalar_calls, 2 * taken.scalar_calls);
        assert_eq!(merged.bytes_peak, taken.bytes_peak);
        // Recording flushes under the arena.* and kernel.* names.
        let mut rec = plt_obs::MetricsRecorder::new();
        taken.record(&mut Obs::new(&mut rec));
        assert_eq!(
            rec.counter_value("arena.vectors_folded"),
            taken.vectors_folded
        );
        assert_eq!(
            rec.counter_value("kernel.simd_calls") + rec.counter_value("kernel.scalar_calls"),
            taken.simd_calls + taken.scalar_calls
        );
        assert_eq!(rec.gauge_value("arena.bytes_peak"), taken.bytes_peak);
    }

    #[test]
    fn single_path_shortcut_is_counted() {
        let db = vec![vec![1, 2, 3]; 5];
        let plt = build(&db, 3);
        let mut pool = ArenaPool::new();
        pool.mine_plt(&plt);
        assert!(pool.stats().single_path_shortcuts >= 1);
    }

    #[test]
    fn consecutive_duplicate_prefixes_merge() {
        // Five identical transactions: the root level holds one entry and
        // every conditional database is a single merged entry.
        let db = vec![vec![1, 2, 3]; 5];
        let plt = build(&db, 3);
        let r = mine_plt_arena(&plt);
        assert_eq!(r.support(&[1, 2, 3]), Some(5));
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn forced_backends_agree() {
        // The same pool, mined under each forced backend, must produce
        // identical answers — the in-crate rendering of the differential
        // suite in tests/kernel_equivalence.rs.
        let plt = build(&table1(), 2);
        plt_simd::set_thread_backend(Some(plt_simd::Backend::Scalar));
        let scalar = mine_plt_arena(&plt);
        plt_simd::set_thread_backend(Some(plt_simd::Backend::Simd));
        let simd = mine_plt_arena(&plt);
        plt_simd::set_thread_backend(None);
        assert_eq!(scalar.sorted(), simd.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arena mining agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let plt = build(&db, min_support);
            let got = mine_plt_arena(&plt);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }

        /// A single reused pool gives the same answers as fresh pools.
        #[test]
        fn prop_pool_reuse_is_stateless(
            dbs in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::btree_set(0u32..10, 1..6),
                    1..20,
                ),
                1..4,
            ),
        ) {
            let mut pool = ArenaPool::new();
            for db in dbs {
                let db: Vec<Vec<Item>> = db.into_iter()
                    .map(|t| t.into_iter().collect())
                    .collect();
                let plt = build(&db, 2);
                let reused = pool.mine_plt(&plt);
                let fresh = mine_plt_arena(&plt);
                prop_assert_eq!(reused.sorted(), fresh.sorted());
            }
        }

        /// Arena conditional mining agrees with the map path per item, for
        /// every rank policy.
        #[test]
        fn prop_conditional_matches_map(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            for policy in [RankPolicy::Lexicographic, RankPolicy::FrequencyDescending] {
                let plt = construct(&db, min_support, ConstructOptions {
                    rank_policy: policy,
                    with_prefixes: false,
                }).unwrap();
                for j in 1..=plt.ranking().len() as Rank {
                    let (_, cd, _) = crate::conditional::extract_conditional(&plt, j);
                    let map = mine_conditional(&cd, &plt, &[j]);
                    let arena = mine_conditional_arena(&cd, &plt, &[j]);
                    prop_assert_eq!(arena.sorted(), map.sorted());
                }
            }
        }
    }
}
