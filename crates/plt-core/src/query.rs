//! Ad-hoc support queries over a PLT — the "self-contained structure"
//! angle (§6: "there is no need for any other data structure during the
//! mining process").
//!
//! Mining enumerates *all* frequent itemsets; many applications instead
//! ask for the support of a handful of specific itemsets (rule engines,
//! dashboards, what-if queries). [`SupportOracle`] answers those directly
//! from the PLT:
//!
//! * an **inverted index** maps each rank to the stored vectors whose
//!   itemset contains it;
//! * a query intersects the posting lists of its ranks — rarest rank
//!   first, merge-intersect, early exit — and sums the frequencies of the
//!   surviving vectors.
//!
//! Complexity per query: `O(Σ shortest-posting-lengths)`, independent of
//! the number of frequent itemsets (unlike a
//! [`MiningResult`](crate::miner::MiningResult) lookup, which needs the
//! itemset to have been mined and kept).

use crate::item::{Item, Rank, Support};
use crate::plt::Plt;
use crate::posvec::PositionVector;

/// An immutable support-query index over a PLT snapshot.
///
/// # Examples
///
/// ```
/// use plt_core::construct::{construct, ConstructOptions};
/// use plt_core::SupportOracle;
///
/// let db = vec![vec![1, 2], vec![1, 2, 3], vec![2, 3]];
/// let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
/// let oracle = SupportOracle::new(&plt);
/// assert_eq!(oracle.support(&[2], &plt), 3);
/// assert_eq!(oracle.support(&[1, 3], &plt), 1);
/// assert_eq!(oracle.support(&[9], &plt), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SupportOracle {
    /// Distinct vectors with frequencies, in arbitrary but fixed order.
    vectors: Vec<(PositionVector, Support)>,
    /// `postings[rank − 1]` = sorted indices into `vectors` whose itemset
    /// contains `rank`.
    postings: Vec<Vec<u32>>,
    /// Total frequency (support of the empty itemset).
    total: Support,
    num_ranks: usize,
}

impl SupportOracle {
    /// Builds the oracle from a PLT. `O(total positions)` once.
    pub fn new(plt: &Plt) -> SupportOracle {
        let num_ranks = plt.ranking().len();
        let mut vectors = Vec::with_capacity(plt.num_vectors());
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); num_ranks];
        let mut total = 0;
        for (v, e) in plt.iter() {
            let idx = vectors.len() as u32;
            for r in v.ranks_iter() {
                postings[(r - 1) as usize].push(idx);
            }
            total += e.freq;
            vectors.push((v.clone(), e.freq));
        }
        SupportOracle {
            vectors,
            postings,
            total,
            num_ranks,
        }
    }

    /// Number of indexed vectors.
    pub fn num_vectors(&self) -> usize {
        self.vectors.len()
    }

    /// Support of an itemset of *ranks* (strictly increasing not
    /// required; duplicates tolerated). Ranks outside `1..=n` yield 0.
    pub fn support_of_ranks(&self, ranks: &[Rank]) -> Support {
        if ranks.is_empty() {
            return self.total;
        }
        if ranks.iter().any(|&r| r == 0 || r as usize > self.num_ranks) {
            return 0;
        }
        let mut ranks: Vec<Rank> = ranks.to_vec();
        ranks.sort_unstable();
        ranks.dedup();
        // Rarest-first intersection keeps intermediate lists short.
        ranks.sort_by_key(|&r| self.postings[(r - 1) as usize].len());
        let mut current: Vec<u32> = self.postings[(ranks[0] - 1) as usize].clone();
        for &r in &ranks[1..] {
            if current.is_empty() {
                return 0;
            }
            current = intersect(&current, &self.postings[(r - 1) as usize]);
        }
        current.iter().map(|&i| self.vectors[i as usize].1).sum()
    }

    /// Support of an itemset of *items*, translated through a ranking.
    /// Items without a rank (infrequent at construction) yield 0.
    pub fn support(&self, items: &[Item], plt: &Plt) -> Support {
        let mut ranks = Vec::with_capacity(items.len());
        for &item in items {
            match plt.ranking().rank(item) {
                Some(r) => ranks.push(r),
                None => return 0,
            }
        }
        self.support_of_ranks(&ranks)
    }
}

/// The canonical lookup key for `items` in `plt`'s rank space — the
/// itemset's unique [`PositionVector`] (Lemma 4.1.2) under the PLT's
/// ranking. `None` when the itemset is empty or mentions an item the
/// ranking never saw as frequent. Index layers (e.g. a serving snapshot)
/// key mined results by this vector so that lookups are a single hash
/// probe instead of a set comparison.
pub fn canonical_key(items: &[Item], plt: &Plt) -> Option<PositionVector> {
    PositionVector::canonical_for(items, plt.ranking())
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, ConstructOptions};
    use crate::miner::{BruteForceMiner, Miner};
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn answers_match_hand_derived_supports() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let oracle = SupportOracle::new(&plt);
        assert_eq!(oracle.num_vectors(), 5);
        assert_eq!(oracle.support(&[0], &plt), 4);
        assert_eq!(oracle.support(&[1], &plt), 5);
        assert_eq!(oracle.support(&[0, 1], &plt), 4);
        assert_eq!(oracle.support(&[0, 2, 3], &plt), 1);
        assert_eq!(oracle.support(&[0, 1, 2, 3], &plt), 1);
        assert_eq!(oracle.support(&[], &plt), 6);
        assert_eq!(oracle.support(&[4], &plt), 0); // unranked (infrequent)
        assert_eq!(oracle.support(&[0, 9], &plt), 0); // unknown item
    }

    #[test]
    fn rank_queries_handle_edge_ranks() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let oracle = SupportOracle::new(&plt);
        assert_eq!(oracle.support_of_ranks(&[0]), 0); // rank 0 invalid
        assert_eq!(oracle.support_of_ranks(&[5]), 0); // beyond n
        assert_eq!(oracle.support_of_ranks(&[2, 2]), 5); // dup tolerated
        assert_eq!(oracle.support_of_ranks(&[4, 1]), 2); // order-free (AD)
    }

    #[test]
    fn canonical_key_identifies_itemsets() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        // Same set, any presentation order → same key (Lemma 4.1.2).
        let k1 = canonical_key(&[0, 1, 2], &plt).unwrap();
        let k2 = canonical_key(&[2, 0, 1], &plt).unwrap();
        assert_eq!(k1, k2);
        // Different sets → different keys.
        let k3 = canonical_key(&[0, 1], &plt).unwrap();
        assert_ne!(k1, k3);
        // Unranked or empty → no key.
        assert_eq!(canonical_key(&[4], &plt), None); // infrequent at build
        assert_eq!(canonical_key(&[], &plt), None);
        // Round-trip: the key's ranks name exactly the queried items.
        let items = plt.ranking().items_for_ranks(&k1.ranks());
        let mut items = items;
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_linear_scan_lookup() {
        let plt = construct(&table1(), 1, ConstructOptions::conditional()).unwrap();
        let oracle = SupportOracle::new(&plt);
        for items in [
            vec![0],
            vec![4],
            vec![5],
            vec![0, 4],
            vec![2, 3, 5],
            vec![0, 1, 2, 3],
        ] {
            assert_eq!(
                oracle.support(&items, &plt),
                plt.itemset_support(&items),
                "{items:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Oracle answers equal brute-force counting for every frequent
        /// and infrequent query on random databases.
        #[test]
        fn prop_oracle_matches_counting(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..30,
            ),
            queries in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..5),
                1..15,
            ),
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
            let oracle = SupportOracle::new(&plt);
            let truth = BruteForceMiner.mine(&db, 1);
            for q in queries {
                let q: Vec<Item> = q.into_iter().collect();
                let expect = truth.support(&q).unwrap_or(0);
                prop_assert_eq!(oracle.support(&q, &plt), expect, "{:?}", q);
            }
        }
    }
}
