//! Differential proof for the query layer: every physical operator the
//! planner can choose — canonical-key point lookup, extension-index
//! traversal, rule-index scan, on-demand conditional mining — and the
//! planner's own choice all return rows **identical** to the naive
//! full-scan oracle ([`NaiveExecutor`]), including top-k tie-break
//! order, across a ≥256-case property sweep over skewed and duplicated
//! datasets crossed with several support thresholds.
//!
//! Operators are driven individually through the test-only plan
//! override hook (`run_forced`); the vendored proptest shim does not
//! shrink, so failures are reported with the full database, the
//! threshold, and the query expression — everything needed to replay
//! the case by hand.

use std::collections::BTreeSet;

use plt::core::construct::{construct, ConstructOptions};
use plt::core::{ConditionalMiner, Miner};
use plt::query::{applicable_ops, parse, run, run_forced, MemSource, NaiveExecutor};
use plt::rules::RuleConfig;
use proptest::prelude::*;

/// Tiny deterministic generator (xorshift64*) so each proptest case —
/// which only draws primitives — can expand into a whole workload.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Builds a transaction database. `shape` 0 is uniform-sparse; 1 and 2
/// add the adversarial structure the sweep is about: a triangular item
/// skew (low-numbered items dominate, so supports collide and tie-break
/// order actually matters) and, for shapes 1-2, verbatim duplicated
/// transactions (one third of rows replay an earlier one).
fn gen_db(rng: &mut Rng, shape: u8, n_tx: usize, n_items: u32) -> Vec<Vec<u32>> {
    let mut db: Vec<Vec<u32>> = Vec::with_capacity(n_tx);
    for t in 0..n_tx {
        if shape != 0 && t > 0 && rng.below(3) == 0 {
            let i = rng.below(t as u64) as usize;
            db.push(db[i].clone());
            continue;
        }
        let len = 1 + rng.below(n_items as u64) as usize;
        let mut tx = BTreeSet::new();
        for _ in 0..len {
            let item = if shape == 0 {
                rng.below(n_items as u64) as u32
            } else {
                // Triangular skew: item i drawn with weight n_items - i.
                let total = (n_items as u64 * (n_items as u64 + 1)) / 2;
                let r = rng.below(total);
                let mut acc = 0;
                let mut pick = n_items - 1;
                for i in 0..n_items {
                    acc += (n_items - i) as u64;
                    if r < acc {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            tx.insert(item);
        }
        db.push(tx.into_iter().collect());
    }
    db
}

fn join(items: &BTreeSet<u32>) -> String {
    items
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// One expression of every query kind (plus filtered variants), with
/// items drawn from a domain slightly wider than the vocabulary so
/// out-of-vocabulary probes are exercised too.
fn gen_queries(rng: &mut Rng, n_items: u32) -> Vec<String> {
    let item = |rng: &mut Rng| rng.below(n_items as u64 + 2) as u32;
    let mut qs = Vec::new();

    let mut probe = BTreeSet::new();
    for _ in 0..1 + rng.below(3) {
        probe.insert(item(rng));
    }
    qs.push(format!("SUPPORT OF {{{}}}", join(&probe)));

    let k = 1 + rng.below(12);
    let a = item(rng);
    qs.push(format!("TOP {k}"));
    qs.push(format!(
        "TOP {k} WHERE support >= {} AND size >= 2",
        1 + rng.below(4)
    ));
    qs.push(format!("TOP {k} WHERE support >= 0.{}", 1 + rng.below(8)));
    qs.push(format!(
        "TOP {k} WHERE contains {{{a}}} OR prefix LIKE {{{a}, *}}"
    ));
    qs.push(format!("TOP {k} WHERE NOT contains {{{a}}}"));

    let c = rng.below(10) as f64 / 10.0;
    qs.push("RULES".to_string());
    qs.push(format!("RULES WHERE confidence >= {c:.1} TOP {k}"));
    qs.push(format!("RULES WHERE confidence > {c:.1} AND lift >= 1.0"));
    // OR blocks the confidence-bound early stop; the scan must notice.
    qs.push(format!("RULES WHERE support >= 2 OR confidence >= {c:.1}"));

    let b = item(rng);
    qs.push(format!("MINE COND {{{b}}}"));
    qs.push(format!("MINE COND {{{b}}} TOP {k}"));
    if a != b {
        let cond = BTreeSet::from([a, b]);
        qs.push(format!("MINE COND {{{}}} TOP {k}", join(&cond)));
    }
    qs
}

/// Runs `expr` through the oracle, the planner, and every applicable
/// forced operator; `Err` carries a replayable description of the first
/// disagreement.
fn check_all_plans(src: &MemSource, expr: &str) -> Result<(), String> {
    let q = parse(expr)
        .map_err(|e| format!("`{expr}` failed to parse: {e}"))?
        .normalize();
    let ops = applicable_ops(&q);

    // `MINE COND` over an item the ranking has never seen is rejected
    // at plan time with a typed error — by design identically for the
    // planner and for every forced operator.
    let planned = run(expr, src, &mut plt::obs::Obs::none());
    if let Err(e) = &planned {
        let msg = e.to_string();
        if !msg.starts_with("query: ") {
            return Err(format!("planner error on `{expr}` is not typed: {msg}"));
        }
        for &op in ops {
            match run_forced(expr, src, op) {
                Err(forced) if forced.to_string() == msg => {}
                Err(forced) => {
                    return Err(format!(
                        "{} errors differently on `{expr}`: {forced} vs {msg}",
                        op.as_str()
                    ));
                }
                Ok(_) => {
                    return Err(format!(
                        "{} succeeded on `{expr}` where the planner errored: {msg}",
                        op.as_str()
                    ));
                }
            }
        }
        return Ok(());
    }

    let oracle = NaiveExecutor::run(src, &q);
    let (chosen, prov) = planned.unwrap();
    if chosen != oracle {
        return Err(format!(
            "planner choice {} disagrees with oracle on `{expr}`\n  got: {chosen:?}\n want: {oracle:?}",
            prov.plan.op.as_str()
        ));
    }
    if !ops.contains(&prov.plan.op) {
        return Err(format!(
            "planner chose {} for `{expr}`, not in applicable set {:?}",
            prov.plan.op.as_str(),
            ops
        ));
    }

    for &op in ops {
        let (rows, forced_prov) =
            run_forced(expr, src, op).map_err(|e| format!("{} on `{expr}`: {e}", op.as_str()))?;
        if forced_prov.plan.op != op {
            return Err(format!(
                "force hook ignored: asked {} got {}",
                op.as_str(),
                forced_prov.plan.op.as_str()
            ));
        }
        if rows != oracle {
            return Err(format!(
                "{} disagrees with oracle on `{expr}`\n  got: {rows:?}\n want: {oracle:?}",
                op.as_str()
            ));
        }
    }
    Ok(())
}

fn build_source(db: &[Vec<u32>], min_support: u64) -> MemSource {
    let plt = construct(db, min_support, ConstructOptions::conditional()).unwrap();
    let result = ConditionalMiner::default().mine(db, min_support);
    MemSource::build(1, plt, &result, RuleConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_plan_and_the_planner_agree_with_the_naive_oracle(
        seed in any::<u64>(),
        shape in 0u8..3,
        n_tx in 4usize..48,
        n_items in 3u32..9,
    ) {
        let mut rng = Rng::new(seed);
        let db = gen_db(&mut rng, shape, n_tx, n_items);
        let n = db.len() as u64;
        // Threshold sweep: everything frequent, a mid band, and a high
        // cut where little (sometimes nothing) survives.
        for min_support in [1, 2, (n / 4).max(3)] {
            let src = build_source(&db, min_support);
            for expr in gen_queries(&mut rng, n_items) {
                if let Err(msg) = check_all_plans(&src, &expr) {
                    prop_assert!(
                        false,
                        "shape={shape} min_support={min_support} db={db:?}\n{msg}"
                    );
                }
            }
        }
    }
}

/// Degenerate generation: nothing mined at all. Every operator must
/// agree on the empty answers rather than panic on missing indexes.
#[test]
fn all_plans_agree_when_nothing_is_frequent() {
    let db = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
    let src = build_source(&db, 2);
    for expr in [
        "SUPPORT OF {0, 1}",
        "SUPPORT OF {7}",
        "TOP 5",
        "TOP 3 WHERE size >= 2",
        "RULES",
        "RULES WHERE confidence >= 0.5 TOP 2",
        "MINE COND {0}",
        "MINE COND {0, 1} TOP 4",
    ] {
        check_all_plans(&src, expr).unwrap();
    }
}

/// Tie-break regression pinned by hand: equal supports must order by
/// size then lexicographically, and a TOP k cutting through the tie
/// must keep the same prefix under every operator.
#[test]
fn top_k_tie_breaks_identically_across_plans() {
    // Four transactions where {0}, {1}, {0,1}, {2} all tie at support 2.
    let db = vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 4]];
    let src = build_source(&db, 2);
    for k in 1..=6 {
        check_all_plans(&src, &format!("TOP {k}")).unwrap();
        check_all_plans(&src, &format!("MINE COND {{0}} TOP {k}")).unwrap();
    }
}
